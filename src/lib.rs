//! # ham-aurora-repro
//!
//! Reproduction of *"Heterogeneous Active Messages for Offloading on the
//! NEC SX-Aurora TSUBASA"* (Noack, Focht, Steinke; IPDPSW/HCW 2019):
//! the HAM-Offload framework with its two SX-Aurora messaging protocols,
//! running against a fully simulated Aurora platform.
//!
//! This facade crate re-exports the whole stack and provides one-call
//! constructors for the common setups. See `README.md` for the tour,
//! `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! ```
//! use ham::{ham_kernel, f2f};
//! use ham_aurora_repro::{dma_offload, NodeId};
//!
//! ham_kernel! {
//!     pub fn triple(_ctx, x: u64) -> u64 { x * 3 }
//! }
//!
//! // One VE, DMA-based protocol (the paper's fast path).
//! let offload = dma_offload(1, |b| { b.register::<triple>(); });
//! assert_eq!(offload.sync(NodeId(1), f2f!(triple, 14)).unwrap(), 42);
//! offload.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use aurora_mem as mem;
pub use aurora_pcie as pcie;
pub use aurora_sim_core as sim_core;
pub use aurora_ve as ve;
pub use aurora_workloads as workloads;
pub use ham;
pub use ham_backend_dma as backend_dma;
pub use ham_backend_tcp as backend_tcp;
pub use ham_backend_veo as backend_veo;
pub use ham_offload as offload;
pub use veo_api as veo;
pub use veos_sim as veos;

pub mod fault_scenario;

pub use aurora_sim_core::{FaultEvent, FaultKind, FaultPlan, FaultSite};
pub use aurora_sim_core::{
    HealthEvent, HealthEventKind, HealthRegistry, MetricsSnapshot, NodeMetricsSnapshot, SloReport,
    SloSpec, TargetState,
};
pub use ham_backend_tcp::{Announce, TargetSpec};
pub use ham_offload::chan::{BatchConfig, RecoveryPolicy};
pub use ham_offload::sched::{
    HealthReport, PoolFuture, PoolMetricsSnapshot, ProbeConfig, SchedPolicy, TargetHealth,
    TargetPool,
};
pub use ham_offload::{BufferPtr, Future, NodeId, Offload, OffloadError};

use ham_backend_dma::DmaBackend;
use ham_backend_veo::{ProtocolConfig, VeoBackend};
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

/// Default simulated memory sizes for the convenience constructors.
fn default_machine(ves: u8) -> Arc<AuroraMachine> {
    let cfg = MachineConfig {
        hbm_bytes: 64 << 20,
        vh_bytes: 128 << 20,
        ..Default::default()
    };
    if ves <= 4 {
        AuroraMachine::small(ves.max(1), cfg)
    } else {
        AuroraMachine::a300_8(cfg)
    }
}

/// An [`Offload`] runtime over the **DMA-based** protocol (paper §IV) on
/// a default simulated machine with `ves` Vector Engines.
pub fn dma_offload(
    ves: u8,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    let machine = default_machine(ves);
    let targets: Vec<u8> = (0..ves.max(1).min(machine.ves().len() as u8)).collect();
    Offload::new(DmaBackend::spawn(
        machine,
        0,
        &targets,
        ProtocolConfig::default(),
        registrar,
    ))
}

/// An [`Offload`] runtime over the **VEO-based** protocol (paper §III).
pub fn veo_offload(
    ves: u8,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    let machine = default_machine(ves);
    let targets: Vec<u8> = (0..ves.max(1).min(machine.ves().len() as u8)).collect();
    Offload::new(VeoBackend::spawn(
        machine,
        0,
        &targets,
        ProtocolConfig::default(),
        registrar,
    ))
}

/// [`dma_offload`] with small-message batching: consecutive `post()`s to
/// a target coalesce into one wire frame, up to `max_msgs` per frame.
/// Deep pipelines pay one DMA transaction and one flag poll per *batch*
/// instead of per message; single-shot `sync` latency is unchanged.
pub fn dma_offload_batched(
    ves: u8,
    batch: BatchConfig,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    let machine = default_machine(ves);
    let targets: Vec<u8> = (0..ves.max(1).min(machine.ves().len() as u8)).collect();
    Offload::new(DmaBackend::spawn(
        machine,
        0,
        &targets,
        ProtocolConfig::default().with_batch(batch),
        registrar,
    ))
}

/// [`veo_offload`] with small-message batching. See
/// [`dma_offload_batched`].
pub fn veo_offload_batched(
    ves: u8,
    batch: BatchConfig,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    let machine = default_machine(ves);
    let targets: Vec<u8> = (0..ves.max(1).min(machine.ves().len() as u8)).collect();
    Offload::new(VeoBackend::spawn(
        machine,
        0,
        &targets,
        ProtocolConfig::default().with_batch(batch),
        registrar,
    ))
}

/// [`dma_offload`] under a deterministic [`FaultPlan`] and an optional
/// retry/timeout [`RecoveryPolicy`].
///
/// The plan is armed on every VE's PCIe link (TLP drops, duplications,
/// delay spikes and user-DMA stalls draw from it) and consulted by the
/// backend for frame drops and VE-process kills. Pass
/// [`FaultPlan::none`] and `None` to get exactly [`dma_offload`]
/// behaviour.
pub fn dma_offload_with_faults(
    ves: u8,
    plan: Arc<FaultPlan>,
    policy: Option<RecoveryPolicy>,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    let machine = default_machine(ves);
    let targets: Vec<u8> = (0..ves.max(1).min(machine.ves().len() as u8)).collect();
    Offload::new(DmaBackend::spawn_with_faults(
        machine,
        0,
        &targets,
        ProtocolConfig::default(),
        plan,
        policy,
        registrar,
    ))
}

/// [`dma_offload_with_faults`] with small-message batching — the
/// combination the device runtime's fault tests need: batch carriers
/// engage the worker lanes while the plan injects kills.
pub fn dma_offload_batched_with_faults(
    ves: u8,
    batch: BatchConfig,
    plan: Arc<FaultPlan>,
    policy: Option<RecoveryPolicy>,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    let machine = default_machine(ves);
    let targets: Vec<u8> = (0..ves.max(1).min(machine.ves().len() as u8)).collect();
    Offload::new(DmaBackend::spawn_with_faults(
        machine,
        0,
        &targets,
        ProtocolConfig::default().with_batch(batch),
        plan,
        policy,
        registrar,
    ))
}

/// [`veo_offload`] under a deterministic [`FaultPlan`] and an optional
/// retry/timeout [`RecoveryPolicy`]. See [`dma_offload_with_faults`].
pub fn veo_offload_with_faults(
    ves: u8,
    plan: Arc<FaultPlan>,
    policy: Option<RecoveryPolicy>,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    let machine = default_machine(ves);
    let targets: Vec<u8> = (0..ves.max(1).min(machine.ves().len() as u8)).collect();
    Offload::new(VeoBackend::spawn_with_faults(
        machine,
        0,
        &targets,
        ProtocolConfig::default(),
        plan,
        policy,
        registrar,
    ))
}

/// [`tcp_offload`] under a deterministic [`FaultPlan`].
///
/// This keeps the *point-to-point* lifecycle: TCP is a push transport
/// with no polling-based retry, so peer death is detected by the reader
/// thread's EOF and **permanently evicts** the channel with
/// [`OffloadError::TargetLost`]. For the cluster lifecycle — where a
/// disconnect degrades the target and a bounded-backoff reconnect
/// resumes the session — use [`tcp_offload_cluster`].
pub fn tcp_offload_with_faults(
    targets: u16,
    plan: Arc<FaultPlan>,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    Offload::new(ham_backend_tcp::TcpBackend::spawn_with_faults(
        targets,
        ham_backend_tcp::TcpBackend::DEFAULT_MEM,
        plan,
        registrar,
    ))
}

/// An [`Offload`] runtime over a **TCP cluster** of targets described by
/// `specs` (target `i` gets node id `i + 1`), with session resume on
/// reconnect.
///
/// Each target announces its capabilities (worker lanes, credit limit,
/// memory) and its dedup watermark on every accepted connection. A
/// disconnect *degrades* the target instead of evicting it; a
/// per-target link supervisor reconnects with bounded backoff (at most
/// `policy.max_retries` attempts per disconnect) and replays exactly
/// the in-flight frames the re-announced watermark proves unexecuted.
/// Work the watermark cannot clear fails with
/// [`OffloadError::TargetLost`] rather than risking double execution.
pub fn tcp_offload_cluster(
    specs: &[TargetSpec],
    policy: RecoveryPolicy,
    plan: Arc<FaultPlan>,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    Offload::new(ham_backend_tcp::TcpBackend::spawn_cluster(
        specs, policy, plan, registrar,
    ))
}

/// [`tcp_offload_cluster`] with an address book of vacant *reserve*
/// slots for dynamic membership. Returns the backend handle alongside
/// the runtime so callers can activate a reserve slot later with
/// [`ham_backend_tcp::TcpBackend::join_target`] (and then admit it to a
/// running [`sched::TargetPool`] via
/// [`sched::TargetPool::add_target`]).
pub fn tcp_offload_cluster_reserve(
    active: &[TargetSpec],
    reserve: &[TargetSpec],
    policy: RecoveryPolicy,
    plan: Arc<FaultPlan>,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> (Offload, Arc<ham_backend_tcp::TcpBackend>) {
    let backend = ham_backend_tcp::TcpBackend::spawn_cluster_with_reserve(
        active, reserve, policy, plan, registrar,
    );
    (Offload::new(backend.clone()), backend)
}

/// An [`Offload`] runtime over the in-process reference backend (no
/// Aurora modelling; fastest wall-clock).
pub fn local_offload(
    targets: u16,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    Offload::new(ham_offload::local::LocalBackend::spawn(targets, registrar))
}

/// An [`Offload`] runtime over real loopback TCP sockets — the paper's
/// "most generic backend" (§I-A), favouring interoperability over
/// performance.
pub fn tcp_offload(
    targets: u16,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    Offload::new(ham_backend_tcp::TcpBackend::spawn(targets, registrar))
}

/// [`tcp_offload`] with small-message batching. See
/// [`dma_offload_batched`].
pub fn tcp_offload_batched(
    targets: u16,
    batch: BatchConfig,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    Offload::new(ham_backend_tcp::TcpBackend::spawn_batched(
        targets, batch, registrar,
    ))
}

/// [`local_offload`] with small-message batching. See
/// [`dma_offload_batched`].
pub fn local_offload_batched(
    targets: u16,
    batch: BatchConfig,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    Offload::new(ham_offload::local::LocalBackend::spawn_batched(
        targets, batch, registrar,
    ))
}

/// [`dma_offload_batched`] with the **self-tuning dataplane** armed:
/// batching up to `max_msgs` per frame, staged age hard-bounded to
/// `slo_micros` of virtual time, and the adaptive watermark controller
/// ([`ham_offload::chan::adaptive`]) tuning the effective watermarks
/// per channel from the observed flush-latency histogram. Equivalent to
/// passing [`BatchConfig::adaptive_up_to`] to the batched constructor.
pub fn dma_offload_adaptive(
    ves: u8,
    max_msgs: usize,
    slo_micros: u64,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    dma_offload_batched(
        ves,
        BatchConfig::adaptive_up_to(max_msgs, slo_micros),
        registrar,
    )
}

/// [`veo_offload_batched`] with the self-tuning dataplane armed. See
/// [`dma_offload_adaptive`].
pub fn veo_offload_adaptive(
    ves: u8,
    max_msgs: usize,
    slo_micros: u64,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    veo_offload_batched(
        ves,
        BatchConfig::adaptive_up_to(max_msgs, slo_micros),
        registrar,
    )
}

/// [`tcp_offload_batched`] with the self-tuning dataplane armed. See
/// [`dma_offload_adaptive`].
pub fn tcp_offload_adaptive(
    targets: u16,
    max_msgs: usize,
    slo_micros: u64,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    tcp_offload_batched(
        targets,
        BatchConfig::adaptive_up_to(max_msgs, slo_micros),
        registrar,
    )
}

/// [`local_offload_batched`] with the self-tuning dataplane armed. See
/// [`dma_offload_adaptive`].
pub fn local_offload_adaptive(
    targets: u16,
    max_msgs: usize,
    slo_micros: u64,
    registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
) -> Offload {
    local_offload_batched(
        targets,
        BatchConfig::adaptive_up_to(max_msgs, slo_micros),
        registrar,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham::f2f;

    ham::ham_kernel! {
        pub fn ping(ctx) -> u16 { ctx.node }
    }

    #[test]
    fn all_three_constructors_work() {
        for o in [
            local_offload(1, |b| {
                b.register::<ping>();
            }),
            veo_offload(1, |b| {
                b.register::<ping>();
            }),
            dma_offload(1, |b| {
                b.register::<ping>();
            }),
        ] {
            assert_eq!(o.sync(NodeId(1), f2f!(ping)).unwrap(), 1);
            o.shutdown();
        }
    }

    #[test]
    fn eight_ve_machine() {
        let o = dma_offload(8, |b| {
            b.register::<ping>();
        });
        assert_eq!(o.num_nodes(), 9);
        for n in 1..=8 {
            assert_eq!(o.sync(NodeId(n), f2f!(ping)).unwrap(), n);
        }
        o.shutdown();
    }
}
