//! Reproducible fault-injection scenarios.
//!
//! A [`Scenario`] turns "kill VE 1 after the second wave, drop 1% of
//! TLPs, seed 42" into three lines of test code:
//!
//! ```
//! use ham_aurora_repro::fault_scenario::{BackendKind, Scenario};
//!
//! let report = Scenario::new(BackendKind::Dma, 2, 42)
//!     .kill_after_wave(1, 1)
//!     .assert_deterministic();
//! assert_eq!(report.leaked, 0);
//! ```
//!
//! The harness drives traffic in **waves**: each wave posts a batch of
//! asynchronous offloads to every target, optionally kills one target
//! while that wave is still in flight, then collects every future in
//! posting order. Collecting in a fixed order (rather than
//! completion order) makes the per-offload outcome list comparable
//! across runs for serial scenarios, and the semantic fault timeline
//! ([`FaultPlan::semantic_events`]) comparable for all of them.
//!
//! After the last wave the harness checks for leaked
//! `PendingTable` entries (`in_flight` must be zero everywhere — a
//! dead target's entries must have been failed, not forgotten) and
//! snapshots the backend's recovery counters.

use crate::{
    dma_offload_with_faults, tcp_offload_with_faults, veo_offload_with_faults, FaultPlan, NodeId,
    Offload, OffloadError, RecoveryPolicy,
};
use aurora_sim_core::{FaultEvent, SimTime};
use ham::f2f;
use std::sync::Arc;

ham::ham_kernel! {
    /// The scenario probe kernel: mixes the payload with the serving
    /// node so a completed result proves both delivery and placement.
    pub fn scenario_probe(ctx, x: u64) -> u64 {
        x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((ctx.node as u64) << 48)
    }
}

/// What [`scenario_probe`] returns for payload `x` served on `node`.
pub fn probe_expected(x: u64, node: u16) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((node as u64) << 48)
}

/// Which transport a scenario drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// The VEO-based protocol (paper §III).
    Veo,
    /// The DMA-based protocol (paper §IV).
    Dma,
    /// Loopback TCP sockets (paper §I-A).
    Tcp,
}

impl BackendKind {
    /// Every fault-capable backend, for matrix tests.
    pub const ALL: [BackendKind; 3] = [BackendKind::Veo, BackendKind::Dma, BackendKind::Tcp];

    /// Short name for labelling assertions and reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Veo => "veo",
            BackendKind::Dma => "dma",
            BackendKind::Tcp => "tcp",
        }
    }
}

/// One reproducible fault-injection scenario. Build it up, then
/// [`Scenario::run`] it (or [`Scenario::assert_deterministic`] to run
/// it twice and pin the failure timeline).
#[derive(Clone, Debug)]
pub struct Scenario {
    backend: BackendKind,
    targets: u16,
    seed: u64,
    tlp_drop: f64,
    tlp_dup: f64,
    delay_spike: Option<(f64, SimTime)>,
    dma_stall: Option<(f64, SimTime)>,
    dma_partial: f64,
    policy: Option<RecoveryPolicy>,
    waves: usize,
    per_wave: usize,
    kill: Option<(u16, usize)>,
}

impl Scenario {
    /// A fault-free scenario: `targets` targets on `backend`, faults
    /// seeded with `seed`, 4 waves of 4 offloads per target.
    pub fn new(backend: BackendKind, targets: u16, seed: u64) -> Self {
        Scenario {
            backend,
            targets: targets.max(1),
            seed,
            tlp_drop: 0.0,
            tlp_dup: 0.0,
            delay_spike: None,
            dma_stall: None,
            dma_partial: 0.0,
            policy: None,
            waves: 4,
            per_wave: 4,
            kill: None,
        }
    }

    /// Probability that a posted frame is dropped by the link.
    pub fn tlp_drop(mut self, rate: f64) -> Self {
        self.tlp_drop = rate;
        self
    }

    /// Probability that a link transfer's TLPs are replayed.
    pub fn tlp_dup(mut self, rate: f64) -> Self {
        self.tlp_dup = rate;
        self
    }

    /// Probability (and size) of a link latency spike.
    pub fn delay_spike(mut self, rate: f64, by: SimTime) -> Self {
        self.delay_spike = Some((rate, by));
        self
    }

    /// Probability (and length) of a user-DMA engine stall.
    pub fn dma_stall(mut self, rate: f64, by: SimTime) -> Self {
        self.dma_stall = Some((rate, by));
        self
    }

    /// Probability of a partial DMA transfer (retransmitted).
    pub fn dma_partial(mut self, rate: f64) -> Self {
        self.dma_partial = rate;
        self
    }

    /// Arm the channel core's deadline/retry policy (VEO and DMA only;
    /// TCP is a push transport and ignores it).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Traffic shape: `waves` waves of `per_wave` offloads per target.
    pub fn waves(mut self, waves: usize, per_wave: usize) -> Self {
        self.waves = waves.max(1);
        self.per_wave = per_wave.max(1);
        self
    }

    /// Kill target `node` while wave `wave` (0-based) is in flight —
    /// after its offloads are posted, before they are collected.
    pub fn kill_after_wave(mut self, node: u16, wave: usize) -> Self {
        self.kill = Some((node, wave));
        self
    }

    fn plan(&self) -> Arc<FaultPlan> {
        let mut b = FaultPlan::builder(self.seed)
            .tlp_drop(self.tlp_drop)
            .tlp_dup(self.tlp_dup)
            .dma_partial(self.dma_partial);
        if let Some((rate, by)) = self.delay_spike {
            b = b.delay_spike(rate, by);
        }
        if let Some((rate, by)) = self.dma_stall {
            b = b.dma_stall(rate, by);
        }
        b.build()
    }

    fn spawn(&self, plan: Arc<FaultPlan>) -> Offload {
        let reg = |b: &mut ham::RegistryBuilder| {
            b.register::<scenario_probe>();
        };
        match self.backend {
            BackendKind::Veo => veo_offload_with_faults(self.targets as u8, plan, self.policy, reg),
            BackendKind::Dma => dma_offload_with_faults(self.targets as u8, plan, self.policy, reg),
            BackendKind::Tcp => tcp_offload_with_faults(self.targets, plan, reg),
        }
    }

    /// Run the scenario once and report what happened.
    pub fn run(&self) -> ScenarioReport {
        let plan = self.plan();
        let o = self.spawn(Arc::clone(&plan));
        let nodes: Vec<NodeId> = (1..=self.targets).map(NodeId).collect();
        let mut report = ScenarioReport::default();

        for wave in 0..self.waves {
            // Post the whole wave before collecting anything, so a kill
            // lands while these offloads are genuinely in flight.
            let mut batch: Vec<(NodeId, u64, Option<crate::Future<u64>>)> = Vec::new();
            for &node in &nodes {
                for i in 0..self.per_wave {
                    let x = (wave * self.per_wave + i) as u64;
                    match o.async_(node, f2f!(scenario_probe, x)) {
                        Ok(f) => batch.push((node, x, Some(f))),
                        Err(e) => {
                            report.refused += 1;
                            report
                                .outcomes
                                .push(format!("w{wave} t{} refused: {e}", node.0));
                            batch.push((node, x, None));
                        }
                    }
                }
            }
            if let Some((node, at)) = self.kill {
                if at == wave {
                    o.kill_target(NodeId(node)).expect("kill_target");
                }
            }
            for (node, x, fut) in batch {
                let Some(fut) = fut else { continue };
                let tag = match fut.get() {
                    Ok(v) if v == probe_expected(x, node.0) => {
                        report.ok += 1;
                        "ok".to_string()
                    }
                    Ok(v) => {
                        report.failed += 1;
                        format!("bad value {v:#x}")
                    }
                    Err(OffloadError::TargetLost(n)) => {
                        report.lost += 1;
                        format!("lost({})", n.0)
                    }
                    Err(OffloadError::Timeout) => {
                        report.timed_out += 1;
                        "timeout".to_string()
                    }
                    Err(e) => {
                        report.failed += 1;
                        format!("err: {e}")
                    }
                };
                report.outcomes.push(format!("w{wave} t{} {tag}", node.0));
            }
        }

        report.leaked = nodes
            .iter()
            .map(|&n| o.in_flight(n).unwrap_or(0))
            .sum::<usize>();
        let m = o.backend().metrics().snapshot();
        report.resends = m.resends;
        report.retry_timeouts = m.timeouts;
        report.evictions = m.evictions;
        report.timeline = render_timeline(&plan.semantic_events());
        o.shutdown();
        report
    }

    /// Run the scenario **twice** and assert both runs injected the
    /// same semantic fault timeline (drops, kills, disconnects — see
    /// [`FaultPlan::semantic_events`]). Returns the first run's report.
    pub fn assert_deterministic(&self) -> ScenarioReport {
        let first = self.run();
        let second = self.run();
        assert_eq!(
            first.timeline,
            second.timeline,
            "{} seed {} must replay the same failure timeline",
            self.backend.name(),
            self.seed,
        );
        first
    }
}

/// Render semantic fault events for comparison: site, actor and kind,
/// but **not** the virtual timestamp — virtual time is advanced by a
/// wall-clock-raced poll loop, so `at` is the one field that may vary
/// between replays of the same plan.
fn render_timeline(events: &[FaultEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| format!("{:?}/{} {:?}", e.site, e.actor, e.kind))
        .collect()
}

/// What one [`Scenario::run`] observed.
#[derive(Clone, Debug, Default)]
pub struct ScenarioReport {
    /// Offloads that completed with the correct result.
    pub ok: usize,
    /// Offloads that failed with [`OffloadError::TargetLost`].
    pub lost: usize,
    /// Offloads that failed with [`OffloadError::Timeout`].
    pub timed_out: usize,
    /// Offloads the runtime refused to post (evicted target).
    pub refused: usize,
    /// Offloads that failed any other way (or returned a wrong value).
    pub failed: usize,
    /// Per-offload outcome lines, in posting order.
    pub outcomes: Vec<String>,
    /// Semantic fault timeline (site/actor/kind, no timestamps).
    pub timeline: Vec<String>,
    /// `PendingTable` entries still in flight after every future was
    /// collected — must be zero, or the recovery path leaked.
    pub leaked: usize,
    /// Frames re-sent by the recovery policy.
    pub resends: u64,
    /// Offloads that exhausted their retries.
    pub retry_timeouts: u64,
    /// Targets evicted.
    pub evictions: u64,
}

impl ScenarioReport {
    /// Total offloads accounted for (posted or refused).
    pub fn total(&self) -> usize {
        self.ok + self.lost + self.timed_out + self.refused + self.failed
    }
}
