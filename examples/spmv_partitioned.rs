//! Sparse matrix–vector product partitioned across Vector Engines.
//!
//! A CSR matrix is split by block rows; each VE holds its row slice (and
//! the full `x`), computing its part of `y = A·x` in parallel. The
//! gather back to the host uses `get` on per-VE result buffers — the
//! distributed-offload usage the paper's `copy`/multi-node API serves.
//!
//! Run with: `cargo run --example spmv_partitioned`

use aurora_workloads::kernels::spmv_csr;
use ham::f2f;
use ham_aurora_repro::{dma_offload, NodeId};

/// Build a banded test matrix in CSR: 3 diagonals (−1, 0, +1).
fn banded_csr(n: usize) -> (Vec<u64>, Vec<u64>, Vec<f64>) {
    let mut row_ptr = vec![0u64];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for i in 0..n {
        for d in [-1i64, 0, 1] {
            let j = i as i64 + d;
            if (0..n as i64).contains(&j) {
                col_idx.push(j as u64);
                values.push(if d == 0 { 2.0 } else { -1.0 });
            }
        }
        row_ptr.push(col_idx.len() as u64);
    }
    (row_ptr, col_idx, values)
}

fn main() {
    let n = 4096usize;
    let ves = 4u8;
    let rows_per_ve = n / ves as usize;
    let (row_ptr, col_idx, values) = banded_csr(n);
    let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();

    let o = dma_offload(ves, aurora_workloads::register_all);

    // Distribute row slices; every VE gets the full x (each VE only reads the
    // columns its rows touch, but the band structure keeps that local).
    let mut futures = Vec::new();
    let mut result_bufs = Vec::new();
    for v in 0..ves as usize {
        let t = NodeId(v as u16 + 1);
        let lo = row_ptr[v * rows_per_ve];
        let hi = row_ptr[(v + 1) * rows_per_ve];
        // Rebase this slice's row_ptr to its own nnz range.
        let local_rp: Vec<u64> = row_ptr[v * rows_per_ve..=(v + 1) * rows_per_ve]
            .iter()
            .map(|p| p - lo)
            .collect();
        let local_ci = &col_idx[lo as usize..hi as usize];
        let local_va = &values[lo as usize..hi as usize];

        let d_rp = o.allocate::<u64>(t, local_rp.len() as u64).unwrap();
        let d_ci = o.allocate::<u64>(t, local_ci.len() as u64).unwrap();
        let d_va = o.allocate::<f64>(t, local_va.len() as u64).unwrap();
        let d_x = o.allocate::<f64>(t, n as u64).unwrap();
        let d_y = o.allocate::<f64>(t, rows_per_ve as u64).unwrap();
        o.put(&local_rp, d_rp).unwrap();
        o.put(local_ci, d_ci).unwrap();
        o.put(local_va, d_va).unwrap();
        o.put(&x, d_x).unwrap();

        let fut = o
            .async_(
                t,
                f2f!(
                    spmv_csr,
                    d_rp.addr(),
                    d_ci.addr(),
                    d_va.addr(),
                    d_x.addr(),
                    d_y.addr(),
                    rows_per_ve as u64,
                    hi - lo
                ),
            )
            .unwrap();
        futures.push(fut);
        result_bufs.push((t, d_y));
    }

    // Gather.
    let mut y = vec![0.0f64; n];
    let mut checksum = 0.0;
    for (v, fut) in futures.into_iter().enumerate() {
        checksum += fut.get().unwrap();
        let (_, d_y) = result_bufs[v];
        o.get(d_y, &mut y[v * rows_per_ve..(v + 1) * rows_per_ve])
            .unwrap();
    }

    // Host reference.
    let mut y_ref = vec![0.0f64; n];
    for i in 0..n {
        for k in row_ptr[i] as usize..row_ptr[i + 1] as usize {
            y_ref[i] += values[k] * x[col_idx[k] as usize];
        }
    }
    let max_err = y
        .iter()
        .zip(&y_ref)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "y = A·x, {n}x{n} tridiagonal, {} nnz, {ves} VEs x {rows_per_ve} rows",
        values.len()
    );
    println!("checksum {checksum:.3}, max |error| vs host = {max_err:e}");
    println!("virtual time: {}", o.backend().host_clock().now());
    assert_eq!(max_err, 0.0, "bit-exact partitioned SpMV");
    o.shutdown();
    println!("ok");
}
