//! Offloaded matrix multiplication with communication/computation
//! overlap — the workload pattern that motivates low offload overhead
//! (§V-A: lower overhead makes finer-grained offloads feasible).
//!
//! A large DGEMM is tiled by block rows; each block row's `C` tile is
//! computed on the VE while the host prepares/validates other tiles.
//!
//! Run with: `cargo run --example matmul_overlap`

use aurora_workloads::generators::{random_matrix, reference_dgemm};
use aurora_workloads::kernels::dgemm;
use ham::f2f;
use ham_aurora_repro::{dma_offload, NodeId};

fn main() {
    let (m, k, n) = (64usize, 48, 32);
    let tiles = 4usize; // block rows of A/C
    let rows_per_tile = m / tiles;

    let a = random_matrix(1, m, k);
    let b = random_matrix(2, k, n);

    let offload = dma_offload(1, |builder| {
        aurora_workloads::register_all(builder);
    });
    let target = NodeId(1);

    // B stays resident on the target across all tiles.
    let b_dev = offload
        .allocate::<f64>(target, (k * n) as u64)
        .expect("alloc B");
    offload.put(&b, b_dev).expect("put B");

    // Per-tile device buffers.
    let a_dev = offload
        .allocate::<f64>(target, (rows_per_tile * k) as u64)
        .expect("alloc A tile");
    let c_dev = offload
        .allocate::<f64>(target, (rows_per_tile * n) as u64)
        .expect("alloc C tile");

    let mut c = vec![0.0f64; m * n];
    let t0 = offload.backend().host_clock().now();
    for t in 0..tiles {
        let rows = &a[t * rows_per_tile * k..(t + 1) * rows_per_tile * k];
        offload.put(rows, a_dev).expect("put A tile");
        // Asynchronous offload: the host could stream the next tile's
        // data while this one computes.
        let fut = offload
            .async_(
                target,
                f2f!(
                    dgemm,
                    a_dev.addr(),
                    b_dev.addr(),
                    c_dev.addr(),
                    rows_per_tile as u64,
                    k as u64,
                    n as u64
                ),
            )
            .expect("offload dgemm");
        // Host-side work in parallel: verify the previous tile.
        let checksum = fut.get().expect("dgemm result");
        offload
            .get(
                c_dev,
                &mut c[t * rows_per_tile * n..(t + 1) * rows_per_tile * n],
            )
            .expect("get C tile");
        println!("tile {t}: checksum {checksum:.6}");
    }
    let elapsed = offload.backend().host_clock().now() - t0;

    let reference = reference_dgemm(&a, &b, m, k, n);
    let max_err = c
        .iter()
        .zip(&reference)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    println!("C = A({m}x{k}) * B({k}x{n}), {tiles} offloaded tiles");
    println!("max |error| vs host reference = {max_err:e}");
    println!("virtual time for the tiled offload pipeline: {elapsed}");
    assert!(max_err < 1e-9);

    offload.shutdown();
    println!("ok");
}
