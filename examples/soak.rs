//! Soak gate: sustained pooled offloads under rolling faults, checked
//! against an [`SloSpec`].
//!
//! Drives waves of asynchronous offloads through a [`TargetPool`] on
//! each requested backend while a seeded fault plan drops frames and a
//! rolling kill takes one target down mid-run. After every run the
//! backend's metric registers (always on — the same per-target
//! histograms the scheduler's `WeightedByLatency` policy reads) and the
//! health event log are evaluated against the SLO spec; any violation
//! makes the process exit nonzero, so CI can use this binary as a gate.
//!
//! ```sh
//! cargo run --release --example soak                 # full: ≥10⁵ offloads
//! cargo run --release --example soak -- --offloads 10000 --backends dma --seeds 7
//! ```

use ham::f2f;
use ham_aurora_repro::fault_scenario::{probe_expected, scenario_probe, BackendKind};
use ham_aurora_repro::sim_core::SimTime;
use ham_aurora_repro::{
    dma_offload_with_faults, tcp_offload_batched, tcp_offload_cluster, tcp_offload_cluster_reserve,
    veo_offload_with_faults, BatchConfig, FaultPlan, NodeId, Offload, OffloadError, PoolFuture,
    RecoveryPolicy, SchedPolicy, SloSpec, TargetSpec,
};

/// Targets per pool; one is killed mid-run, so survivors keep serving.
const TARGETS: u16 = 4;
/// Offloads posted per target per wave. Deliberately not a multiple of
/// the TCP batch watermark, so the kill always catches a partial batch
/// still staged on the victim — the failover path the SLO's
/// `max_failover` objective measures.
const PER_TARGET_PER_WAVE: usize = 30;
/// TCP batch watermark (see above).
const TCP_BATCH: usize = 8;

/// The SLO each backend must hold. The polled DMA protocol and TCP
/// complete in tens of µs of virtual time even 8 deep; the VEO
/// protocol's per-call overhead (~ms, paper §III) plus credit-depth
/// queueing puts its median around 20 ms, so its spec scales
/// accordingly — still tight enough to catch retry storms or a wedged
/// target.
fn spec_for(kind: BackendKind) -> SloSpec {
    match kind {
        BackendKind::Veo => SloSpec {
            p50_completion: SimTime::from_ms(50),
            p99_completion: SimTime::from_ms(200),
            ..Default::default()
        },
        _ => SloSpec::default(),
    }
}

struct Config {
    /// Offloads per (backend, seed) run.
    offloads: usize,
    backends: Vec<BackendKind>,
    seeds: Vec<u64>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        // 3 backends × 1 seed × 35 000 ≥ the 10⁵ the gate promises.
        offloads: 35_000,
        backends: vec![BackendKind::Veo, BackendKind::Dma, BackendKind::Tcp],
        seeds: vec![7],
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match a.as_str() {
            "--offloads" => cfg.offloads = val("--offloads").parse().expect("--offloads"),
            "--backends" => {
                cfg.backends = val("--backends")
                    .split(',')
                    .map(|s| match s {
                        "veo" => BackendKind::Veo,
                        "dma" => BackendKind::Dma,
                        "tcp" => BackendKind::Tcp,
                        other => panic!("unknown backend {other:?}"),
                    })
                    .collect();
            }
            "--seeds" => {
                cfg.seeds = val("--seeds")
                    .split(',')
                    .map(|s| s.parse().expect("--seeds"))
                    .collect();
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    cfg
}

fn spawn(kind: BackendKind, seed: u64) -> Offload {
    let reg = |b: &mut ham::RegistryBuilder| {
        b.register::<scenario_probe>();
    };
    // Low-rate link faults for the polled protocols, absorbed by the
    // retry policy; eviction needs retries exhausted, which at this
    // rate never happens — the rolling kill provides the eviction.
    let plan = FaultPlan::builder(seed).tlp_drop(0.002).build();
    let policy = Some(RecoveryPolicy {
        retry_after_misses: 64,
        max_retries: 4,
    });
    match kind {
        BackendKind::Veo => veo_offload_with_faults(TARGETS as u8, plan, policy, reg),
        BackendKind::Dma => dma_offload_with_faults(TARGETS as u8, plan, policy, reg),
        // TCP is a push transport: a dropped frame would hang, so it
        // soaks the other fault axis — staged batches killed mid-run
        // fail over to survivors (recording `Failover` health events).
        BackendKind::Tcp => tcp_offload_batched(TARGETS, BatchConfig::up_to(TCP_BATCH), reg),
    }
}

struct RunStats {
    ok: usize,
    lost: usize,
    refused: usize,
    failed: usize,
}

/// One (backend, seed) soak run. Returns `(stats, violations)`.
fn soak_run(kind: BackendKind, seed: u64, offloads: usize) -> (RunStats, usize) {
    let spec = spec_for(kind);
    let o = spawn(kind, seed);
    let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
    // TCP's receiver threads retire completions concurrently, which
    // would race load-based placement; the polled protocols exercise
    // the histogram-backed weighted policy.
    let policy = match kind {
        BackendKind::Tcp => SchedPolicy::RoundRobin,
        _ => SchedPolicy::WeightedByLatency,
    };
    let pool = o.pool_with(&nodes, policy).expect("pool");

    let wave_size = TARGETS as usize * PER_TARGET_PER_WAVE;
    let waves = offloads.div_ceil(wave_size);
    // Rolling kill: one target dies while an early-third wave is in
    // flight; which one rolls with the seed.
    let kill_wave = waves / 3;
    let victim = NodeId(1 + (seed % TARGETS as u64) as u16);

    let mut stats = RunStats {
        ok: 0,
        lost: 0,
        refused: 0,
        failed: 0,
    };
    let mut posted = 0usize;
    for wave in 0..waves {
        let mut futs: Vec<PoolFuture<u64>> = Vec::new();
        for i in 0..wave_size.min(offloads - posted) {
            let x = (wave * wave_size + i) as u64;
            match pool.submit(f2f!(scenario_probe, x)) {
                Ok(f) => futs.push(f),
                Err(_) => stats.refused += 1,
            }
            posted += 1;
        }
        if wave == kill_wave {
            o.kill_target(victim).expect("kill_target");
        }
        for r in pool.wait_all(futs) {
            match r {
                Ok(_) => stats.ok += 1,
                Err(OffloadError::TargetLost(_)) => stats.lost += 1,
                Err(_) => stats.failed += 1,
            }
        }
    }
    // Spot-check correctness on the survivors: a soak that "passes"
    // while returning garbage is worse than one that fails.
    for (i, &n) in pool.healthy().iter().enumerate() {
        let x = 0xC0FFEE + i as u64;
        let f = pool.submit_to(n, f2f!(scenario_probe, x)).expect("probe");
        assert_eq!(pool.get(f).expect("probe result"), probe_expected(x, n.0));
        stats.ok += 1;
        posted += 1;
    }

    let leaked: usize = nodes.iter().map(|&n| o.in_flight(n).unwrap_or(0)).sum();
    let snap = o.metrics_snapshot();
    let events = o.backend().metrics().health().events();
    let report = spec.evaluate(&snap, &events, leaked);

    println!(
        "## {} seed {seed}: {} offloads ({} ok, {} lost, {} refused, {} failed)",
        kind.name(),
        posted,
        stats.ok,
        stats.lost,
        stats.refused,
        stats.failed
    );
    print!("{}", pool.health_report().render());
    print!("{}", report.render());
    println!();

    let violations = report.violations.len();
    o.shutdown();
    (stats, violations)
}

/// TCP disconnect/reconnect churn: a cluster pool where the victim is
/// repeatedly killed mid-wave and *reconnects* instead of being lost —
/// the session-resume path under sustained load. Gated by the same
/// [`SloSpec`] (plus: reconnects must actually be recorded, and every
/// churn wave must drain without leaking pending entries).
fn tcp_churn_run(seed: u64, offloads: usize) -> (RunStats, usize) {
    let spec = SloSpec::default();
    let specs = vec![
        TargetSpec {
            credit_limit: 64,
            ..TargetSpec::default()
        };
        TARGETS as usize
    ];
    let o = tcp_offload_cluster(
        &specs,
        RecoveryPolicy::replay_only(64),
        FaultPlan::builder(seed).build(),
        |b| {
            b.register::<scenario_probe>();
        },
    );
    let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
    let pool = o.pool_with(&nodes, SchedPolicy::RoundRobin).expect("pool");

    let wave_size = TARGETS as usize * PER_TARGET_PER_WAVE;
    let waves = offloads.div_ceil(wave_size).max(4);
    // Churn: a rotating victim dies every few waves and its link
    // supervisor brings it back; no wave may strand work.
    let churn_every = (waves / 4).max(1);

    let mut stats = RunStats {
        ok: 0,
        lost: 0,
        refused: 0,
        failed: 0,
    };
    let mut posted = 0usize;
    for wave in 0..waves {
        let mut futs: Vec<PoolFuture<u64>> = Vec::new();
        for i in 0..wave_size.min(offloads.saturating_sub(posted)).max(1) {
            let x = (wave * wave_size + i) as u64;
            match pool.submit(f2f!(scenario_probe, x)) {
                Ok(f) => futs.push(f),
                Err(_) => stats.refused += 1,
            }
            posted += 1;
        }
        if wave % churn_every == churn_every - 1 {
            let victim = NodeId(1 + ((seed + wave as u64) % TARGETS as u64) as u16);
            let _ = o.kill_target(victim);
        }
        for r in pool.wait_all(futs) {
            match r {
                Ok(_) => stats.ok += 1,
                Err(OffloadError::TargetLost(_)) => stats.lost += 1,
                Err(_) => stats.failed += 1,
            }
        }
    }

    let leaked: usize = nodes.iter().map(|&n| o.in_flight(n).unwrap_or(0)).sum();
    let snap = o.metrics_snapshot();
    let events = o.backend().metrics().health().events();
    let mut report = spec.evaluate(&snap, &events, leaked);
    if snap.reconnects == 0 {
        report
            .violations
            .push("churn phase recorded no reconnects".into());
    }

    println!(
        "## tcp-churn seed {seed}: {posted} offloads ({} ok, {} lost, {} refused, {} failed), \
         {} reconnects / {} attempts, {} replayed frames",
        stats.ok,
        stats.lost,
        stats.refused,
        stats.failed,
        snap.reconnects,
        snap.reconnect_attempts,
        snap.replayed_frames,
    );
    print!("{}", pool.health_report().render());
    print!("{}", report.render());
    println!();

    let violations = report.violations.len();
    o.shutdown();
    (stats, violations)
}

/// Membership churn: a cluster pool that grows and shrinks under load
/// while the background prober sweeps it. A reserve target joins
/// mid-run through the discovery handshake and starts serving; members
/// are then retired (their staged work is reclaimed and fails over)
/// and re-admitted on a rolling schedule. Gated by the same [`SloSpec`]
/// plus: the join must be recorded, the prober must have answered
/// rounds, and no wave may strand work.
fn membership_churn_run(seed: u64, offloads: usize) -> (RunStats, usize) {
    let spec = SloSpec::default();
    let spec_t = TargetSpec {
        credit_limit: 64,
        ..TargetSpec::default()
    };
    let active = vec![spec_t; TARGETS as usize - 1];
    let (o, be) = tcp_offload_cluster_reserve(
        &active,
        &[spec_t],
        RecoveryPolicy::replay_only(64),
        FaultPlan::builder(seed).build(),
        |b| {
            b.register::<scenario_probe>();
        },
    );
    let nodes: Vec<NodeId> = (1..=TARGETS).map(NodeId).collect();
    let pool = o
        .pool_with(&nodes[..TARGETS as usize - 1], SchedPolicy::RoundRobin)
        .expect("pool");
    pool.start_prober(be.probe_config());
    let joiner = NodeId(TARGETS);

    let wave_size = TARGETS as usize * PER_TARGET_PER_WAVE;
    let waves = offloads.div_ceil(wave_size).max(6);
    let join_wave = waves / 3;
    let churn_every = (waves / 4).max(2);

    let mut stats = RunStats {
        ok: 0,
        lost: 0,
        refused: 0,
        failed: 0,
    };
    let mut posted = 0usize;
    let mut retired: Option<NodeId> = None;
    for wave in 0..waves {
        let mut futs: Vec<PoolFuture<u64>> = Vec::new();
        for i in 0..wave_size.min(offloads.saturating_sub(posted)).max(1) {
            let x = (wave * wave_size + i) as u64;
            match pool.submit(f2f!(scenario_probe, x)) {
                Ok(f) => futs.push(f),
                Err(_) => stats.refused += 1,
            }
            posted += 1;
        }
        if wave == join_wave {
            // The reserve slot runs its discovery handshake and is
            // admitted mid-wave: work already in flight is untouched,
            // the joiner serves from the next placement on.
            be.join_target(joiner).expect("join_target");
            pool.add_target(joiner).expect("add_target");
        }
        if let Some(n) = retired.take() {
            // Re-admit last wave's retiree: it is alive (retirement
            // drains, it does not kill), so admission is immediate.
            let _ = pool.add_target(n);
        } else if wave > join_wave && wave % churn_every == 0 && pool.len() > 2 {
            // Retire a rotating member mid-wave: its staged members are
            // reclaimed (provably unsent) and fail over to the rest.
            let n = NodeId(1 + ((seed + wave as u64) % TARGETS as u64) as u16);
            if pool.remove_target(n).is_ok() {
                retired = Some(n);
            }
        }
        for r in pool.wait_all(futs) {
            match r {
                Ok(_) => stats.ok += 1,
                Err(OffloadError::TargetLost(_)) => stats.lost += 1,
                Err(_) => stats.failed += 1,
            }
        }
    }
    let rounds = pool.stop_prober().unwrap_or(0);

    let leaked: usize = nodes.iter().map(|&n| o.in_flight(n).unwrap_or(0)).sum();
    let snap = o.metrics_snapshot();
    let events = o.backend().metrics().health().events();
    let mut report = spec.evaluate(&snap, &events, leaked);
    if snap.member_joins == 0 {
        report
            .violations
            .push("membership phase recorded no joins".into());
    }
    if snap.probes == 0 || rounds == 0 {
        report
            .violations
            .push("membership phase recorded no answered probe rounds".into());
    }

    println!(
        "## membership-churn seed {seed}: {posted} offloads ({} ok, {} lost, {} refused, \
         {} failed), {} joins / {} leaves, {} probe rounds ({} ok / {} miss)",
        stats.ok,
        stats.lost,
        stats.refused,
        stats.failed,
        snap.member_joins,
        snap.member_leaves,
        rounds,
        snap.probes,
        snap.probe_misses,
    );
    print!("{}", pool.health_report().render());
    print!("{}", report.render());
    println!();

    let violations = report.violations.len();
    o.shutdown();
    (stats, violations)
}

fn main() {
    // A killed VE process exits by panicking with "fault injection:
    // VE process N killed" when reaped at shutdown — that panic is the
    // modeled kill, not a bug; keep it out of the soak output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("fault injection:"));
        if !expected {
            default_hook(info);
        }
    }));

    let cfg = parse_args();
    let mut total = 0usize;
    let mut total_violations = 0usize;
    for &kind in &cfg.backends {
        for &seed in &cfg.seeds {
            let (stats, violations) = soak_run(kind, seed, cfg.offloads);
            total += stats.ok + stats.lost + stats.refused + stats.failed;
            total_violations += violations;
        }
    }
    // The cluster-TCP churn phases ride along whenever TCP is soaked:
    // disconnect/reconnect churn, then membership churn with the
    // background prober running.
    if cfg.backends.contains(&BackendKind::Tcp) {
        for &seed in &cfg.seeds {
            let (stats, violations) = tcp_churn_run(seed, cfg.offloads / 4);
            total += stats.ok + stats.lost + stats.refused + stats.failed;
            total_violations += violations;
        }
        for &seed in &cfg.seeds {
            let (stats, violations) = membership_churn_run(seed, cfg.offloads / 4);
            total += stats.ok + stats.lost + stats.refused + stats.failed;
            total_violations += violations;
        }
    }
    println!("soak: {total} offloads, {total_violations} SLO violations");
    if total_violations > 0 {
        std::process::exit(1);
    }
}
