//! Fault sweep: offload survival vs. injected PCIe TLP loss.
//!
//! Sweeps the seeded fault injector's frame-drop rate on the DMA
//! backend with the recovery policy armed (retry after 64 cold sweeps,
//! 4 re-sends) and prints, per rate, how a 32-offload serial workload
//! fares: completions, timeouts, `TargetLost` failures, posts refused
//! after an eviction, and the recovery work (re-sends) it took. Same
//! seed ⇒ same table, bit for bit.
//!
//! ```sh
//! cargo run --release --example fault_sweep
//! ```

use ham_aurora_repro::fault_scenario::{BackendKind, Scenario};
use ham_aurora_repro::RecoveryPolicy;

fn main() {
    // Past the retry budget the host evicts the target and, at
    // shutdown, reaps the wedged VE process — which exits by panicking
    // with "fault injection: VE process N killed". That panic is the
    // modeled kill, not a bug; keep it out of the sweep output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let expected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("fault injection:"));
        if !expected {
            default_hook(info);
        }
    }));

    let policy = RecoveryPolicy {
        retry_after_misses: 64,
        max_retries: 4,
    };
    println!("## Fault sweep — DMA backend, 32 serial offloads, seed 7");
    println!(
        "{:>9} {:>5} {:>9} {:>5} {:>8} {:>8} {:>10}",
        "drop rate", "ok", "timed out", "lost", "refused", "re-sends", "evictions"
    );
    for rate in [0.0, 0.01, 0.05, 0.10, 0.25, 0.50, 1.0] {
        let r = Scenario::new(BackendKind::Dma, 1, 7)
            .tlp_drop(rate)
            .recovery(policy)
            .waves(8, 4)
            .run();
        assert_eq!(r.leaked, 0, "pending entries leaked at rate {rate}");
        assert_eq!(r.total(), 32, "unaccounted offloads at rate {rate}");
        println!(
            "{:>9.2} {:>5} {:>9} {:>5} {:>8} {:>8} {:>10}",
            rate, r.ok, r.timed_out, r.lost, r.refused, r.resends, r.evictions
        );
    }
}
