//! Monte-Carlo π across all eight VEs of an A300-8 — remote-style
//! fan-out with one future per engine (Table II's async API at scale).
//!
//! Run with: `cargo run --example monte_carlo_multi_ve`

use aurora_workloads::kernels::monte_carlo_pi;
use ham::f2f;
use ham_aurora_repro::{dma_offload, NodeId};

fn main() {
    const SAMPLES_PER_VE: u64 = 100_000;
    let ves = 8u8;

    let offload = dma_offload(ves, |b| {
        aurora_workloads::register_all(b);
    });
    println!("application spans {} nodes:", offload.num_nodes());
    for n in 0..offload.num_nodes() {
        println!(
            "  {}",
            offload.get_node_descriptor(NodeId(n)).expect("descriptor")
        );
    }

    // Fan out: one independent estimator per VE, distinct seeds.
    let futures: Vec<_> = (1..=ves as u16)
        .map(|n| {
            offload
                .async_(
                    NodeId(n),
                    f2f!(monte_carlo_pi, 0xA300 + n as u64, SAMPLES_PER_VE),
                )
                .expect("offload")
        })
        .collect();

    // Gather with one call: wait_all drains every channel's completion
    // queue until all eight futures have settled, then returns results
    // in submission order.
    let estimates: Vec<f64> = offload
        .wait_all(futures)
        .into_iter()
        .map(|r| r.expect("pi"))
        .collect();
    for (i, pi) in estimates.iter().enumerate() {
        println!("VE{i}: pi ~ {pi:.6}");
    }
    let pi = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let err = (pi - std::f64::consts::PI).abs();
    println!(
        "\ncombined over {} samples: pi ~ {pi:.6} (|error| = {err:.6})",
        SAMPLES_PER_VE * ves as u64
    );
    println!("virtual time: {}", offload.backend().host_clock().now());
    assert!(err < 0.01);
    offload.shutdown();
    println!("ok");
}
