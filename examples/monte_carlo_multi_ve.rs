//! Monte-Carlo π across all eight VEs of an A300-8 — remote-style
//! fan-out, but with placement owned by the runtime: the estimator
//! tasks go through a [`TargetPool`], which spreads them over the VEs
//! by load instead of the application hand-assigning one future per
//! engine (Table II's async API at scale, plus the scheduler on top).
//!
//! Run with: `cargo run --example monte_carlo_multi_ve`

use aurora_workloads::kernels::monte_carlo_pi;
use ham::f2f;
use ham_aurora_repro::{dma_offload, NodeId};

fn main() {
    const SAMPLES_PER_TASK: u64 = 50_000;
    const TASKS: usize = 32;
    let ves = 8u8;

    let offload = dma_offload(ves, |b| {
        aurora_workloads::register_all(b);
    });
    println!("application spans {} nodes:", offload.num_nodes());
    for n in 0..offload.num_nodes() {
        println!(
            "  {}",
            offload.get_node_descriptor(NodeId(n)).expect("descriptor")
        );
    }

    // The pool owns placement: least-loaded VE wins each submit, and
    // credit-based admission blocks the loop instead of overfilling any
    // one channel. The application never names a VE.
    let nodes: Vec<NodeId> = (1..=ves as u16).map(NodeId).collect();
    let pool = offload.pool(&nodes).expect("pool");
    println!("pool: {pool:?}");

    // Fan out: independent estimators with distinct seeds.
    let futures: Vec<_> = (0..TASKS)
        .map(|i| {
            pool.submit(f2f!(monte_carlo_pi, 0xA300 + i as u64, SAMPLES_PER_TASK))
                .expect("submit")
        })
        .collect();
    let mut per_ve = vec![0usize; ves as usize + 1];
    for f in &futures {
        per_ve[f.target().0 as usize] += 1;
    }

    // Gather with one call: wait_all drains every involved channel until
    // all estimators have settled, then returns results in submission
    // order.
    let estimates: Vec<f64> = pool
        .wait_all(futures)
        .into_iter()
        .map(|r| r.expect("pi"))
        .collect();
    for (n, count) in per_ve.iter().enumerate().skip(1) {
        println!("VE{n}: {count} estimator tasks");
    }
    let pi = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let err = (pi - std::f64::consts::PI).abs();
    println!(
        "\ncombined over {} samples: pi ~ {pi:.6} (|error| = {err:.6})",
        SAMPLES_PER_TASK * TASKS as u64
    );
    println!("virtual time: {}", offload.backend().host_clock().now());
    assert!(err < 0.01);
    assert_eq!(per_ve.iter().sum::<usize>(), TASKS);
    offload.shutdown();
    println!("ok");
}
