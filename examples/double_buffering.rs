//! Double-buffered streaming: overlap host→VE transfers with VE compute
//! — the "heterogeneous streaming" pattern of the related work
//! (hStreams, \[13\]) that low offload overhead makes worthwhile.
//!
//! A long stream of data tiles is reduced on the VE. With one device
//! buffer the timeline is strictly `put; kernel; put; kernel; …`; with
//! two buffers the next tile's `put` overlaps the current kernel. The
//! virtual timeline shows the overlap win directly.
//!
//! Run with: `cargo run --example double_buffering`

use ham::f2f;
use ham_aurora_repro::{dma_offload, Future, NodeId, Offload};

ham::ham_kernel! {
    /// Reduce a tile after a numerically heavy per-element pipeline
    /// (modeled: `passes` sweeps of 2 flops/element), so kernel time is
    /// comparable to the tile's transfer time — the regime where
    /// double buffering pays.
    pub fn heavy_reduce(ctx, addr: u64, n: u64, passes: u64) -> f64 {
        let x = ctx.mem.read_f64s(addr, n as usize).expect("read tile");
        ctx.charge_flops(2 * n * passes);
        x.iter().sum()
    }
}

/// Modeled pipeline depth: ~100 us of VE compute per tile.
const PASSES: u64 = 1600;

const TILE: usize = 1 << 15; // 32k doubles = 256 KiB per tile
const TILES: usize = 12;

fn make_tile(i: usize) -> Vec<f64> {
    (0..TILE).map(|j| ((i * TILE + j) % 97) as f64).collect()
}

fn single_buffered(o: &Offload) -> (f64, aurora_sim_core::SimTime) {
    let t = NodeId(1);
    let dev = o.allocate::<f64>(t, TILE as u64).unwrap();
    let t0 = o.backend().host_clock().now();
    let mut total = 0.0;
    for i in 0..TILES {
        o.put(&make_tile(i), dev).unwrap();
        total += o
            .sync(t, f2f!(heavy_reduce, dev.addr(), TILE as u64, PASSES))
            .unwrap();
    }
    let elapsed = o.backend().host_clock().now() - t0;
    o.free(dev).unwrap();
    (total, elapsed)
}

fn double_buffered(o: &Offload) -> (f64, aurora_sim_core::SimTime) {
    let t = NodeId(1);
    let bufs = [
        o.allocate::<f64>(t, TILE as u64).unwrap(),
        o.allocate::<f64>(t, TILE as u64).unwrap(),
    ];
    let t0 = o.backend().host_clock().now();
    let mut total = 0.0;
    let mut in_flight: Option<Future<f64>> = None;
    for i in 0..TILES {
        let dev = bufs[i % 2];
        // Stream the next tile while the previous kernel is (virtually)
        // still running on the other buffer.
        o.put(&make_tile(i), dev).unwrap();
        let fut = o
            .async_(t, f2f!(heavy_reduce, dev.addr(), TILE as u64, PASSES))
            .unwrap();
        if let Some(prev) = in_flight.replace(fut) {
            total += prev.get().unwrap();
        }
    }
    total += in_flight.expect("last tile").get().unwrap();
    let elapsed = o.backend().host_clock().now() - t0;
    for b in bufs {
        o.free(b).unwrap();
    }
    (total, elapsed)
}

fn main() {
    let o = dma_offload(1, |b| {
        b.register::<heavy_reduce>();
    });

    let reference: f64 = (0..TILES).map(|i| make_tile(i).iter().sum::<f64>()).sum();
    let (sum1, t1) = single_buffered(&o);
    let (sum2, t2) = double_buffered(&o);

    assert!((sum1 - reference).abs() < 1e-6);
    assert!((sum2 - reference).abs() < 1e-6);

    println!("{TILES} tiles x {TILE} doubles, reduced on the VE:");
    println!("  single-buffered : {t1}");
    println!("  double-buffered : {t2}");
    println!(
        "  overlap win     : {:.1} % less virtual time",
        100.0 * (1.0 - t2.as_ns_f64() / t1.as_ns_f64())
    );
    assert!(t2 < t1, "double buffering must not be slower");
    o.shutdown();
    println!("ok");
}
