//! Reverse offloading, two ways:
//!
//! 1. the platform's native path (§I-B): the VE runs no operating
//!    system; every system call is executed by the host-side
//!    pseudo-process "in the user's context and under Linux" at the
//!    ~85 µs cost of the VEOS software path — also why chatty syscall
//!    traffic (e.g. a TCP/IP backend, §III-A) would be expensive;
//! 2. this reproduction's extension: **reverse active messages** over
//!    the paper's own DMA protocol (`ctx.vhcall(...)`), which makes a
//!    VE→VH call cost microseconds.
//!
//! Run with: `cargo run --example reverse_offload`

use aurora_sim_core::Clock;
use ham::f2f;
use ham_aurora_repro::{NodeId, Offload};
use ham_backend_dma::DmaBackend;
use ham_backend_veo::ProtocolConfig;
use std::sync::Arc;
use veo_api::{ArgsStack, KernelLibrary, VeoProc};
use veos_sim::syscall::{PseudoProcess, Syscall, SyscallResult, SYSCALL_ROUND_TRIP};
use veos_sim::{AuroraMachine, MachineConfig};

ham::ham_kernel! {
    /// Runs on the VH when a VE kernel reverse-offloads to it.
    pub fn host_lookup(_ctx, query: String) -> String {
        format!("host says: '{query}' resolved")
    }
}

ham::ham_kernel! {
    /// Runs on the VE; calls back into the host mid-kernel.
    pub fn ve_kernel_with_vhcall(ctx, query: String) -> String {
        ctx.vhcall(f2f!(host_lookup, query)).expect("vhcall")
    }
}

fn main() {
    let machine = AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 8 << 20,
            vh_bytes: 8 << 20,
            ..Default::default()
        },
    );
    let host_clock = Clock::new();
    let proc = VeoProc::create(Arc::clone(&machine), 0, 0, host_clock.clone());
    let pseudo = Arc::new(PseudoProcess::new(proc.process().pid(), host_clock));

    // A "native VE program": greets via reverse-offloaded write(2),
    // then measures how expensive its syscalls were.
    let pp = Arc::clone(&pseudo);
    proc.load_library(KernelLibrary::new().with("ve_main", move |ve, args| {
        let n_writes = args.get_u64(0);
        let t0 = ve.proc.clock().now();
        for i in 0..n_writes {
            let line = format!("hello from the VE, line {i}\n");
            pp.serve(
                ve.proc.clock(),
                Syscall::Write {
                    fd: 1,
                    data: line.into_bytes(),
                },
            );
        }
        match pp.serve(ve.proc.clock(), Syscall::GetPid) {
            SyscallResult::Pid(pid) => {
                let elapsed = ve.proc.clock().now() - t0;
                println!(
                    "[VE] pid {pid}: {n_writes} write(2) calls took {elapsed} of virtual time"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        n_writes
    }));

    let ctx = proc.open_context();
    let sym = proc.get_sym("ve_main").expect("symbol");
    let req = ctx
        .call_async(&sym, ArgsStack::new().push_u64(5))
        .expect("call");
    let written = ctx.wait_result(req).expect("result");
    ctx.close();

    println!("\n[VH] captured output of the VE process:");
    for (fd, bytes) in pseudo.captured_output() {
        if fd == 1 {
            print!("  {}", String::from_utf8_lossy(&bytes));
        }
    }
    println!(
        "\n[VH] each reverse-offloaded syscall costs {} — the reason the\n\
         paper rules out a TCP/IP backend on this platform (§III-A).",
        SYSCALL_ROUND_TRIP
    );
    assert_eq!(written, 5);

    // --- Part 2: reverse *active messages* over the DMA protocol -----
    println!("\n--- VHcall as heterogeneous active messages ---");
    let m2 = AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    );
    let offload = Offload::new(DmaBackend::spawn(
        m2,
        0,
        &[0],
        ProtocolConfig {
            reverse: true,
            ..Default::default()
        },
        |b| {
            b.register::<host_lookup>();
            b.register::<ve_kernel_with_vhcall>();
        },
    ));
    // Warm up, then time a forward offload whose kernel makes one
    // reverse call (forward ~6 µs + reverse ~6 µs).
    for _ in 0..10 {
        offload
            .sync(NodeId(1), f2f!(ve_kernel_with_vhcall, "warmup".into()))
            .unwrap();
    }
    let t0 = offload.backend().host_clock().now();
    let reply = offload
        .sync(
            NodeId(1),
            f2f!(ve_kernel_with_vhcall, "lattice size".into()),
        )
        .unwrap();
    let cost = offload.backend().host_clock().now() - t0;
    println!("[VE] kernel received from the host: {reply:?}");
    println!(
        "[VH] forward offload + reverse vhcall round trip: {cost}\n\
         vs ~{} for a single syscall-style VHcall — the DMA protocol\n\
         makes even *reverse* offloads fine-grained.",
        SYSCALL_ROUND_TRIP
    );
    assert!(reply.contains("resolved"));
    offload.shutdown();
    println!("ok");
}
