//! Host/VE load balancing over batches of dense kernels — the usage
//! pattern of Malý et al. [10], who used HAM-Offload to balance FETI
//! domain-decomposition dense-matrix batches between the host CPU and
//! coprocessors.
//!
//! A queue of dense-batch tasks is served greedily: every VE holds one
//! in-flight offload; free VEs are refilled first; while every VE is
//! busy the host consumes a task itself; then `wait_any` blocks until
//! the next VE completion, which drains the whole channel with one flag
//! sweep and frees that VE's slot for refilling.
//!
//! Run with: `cargo run --example feti_load_balance`

use aurora_workloads::generators::random_matrix;
use aurora_workloads::kernels::dense_batch;
use ham::f2f;
use ham_aurora_repro::{dma_offload, Future, NodeId};

const DIM: usize = 8; // small dense blocks, FETI-style
const PER_BATCH: u64 = 4; // blocks per offloaded batch
const TASKS: usize = 24;

fn host_dense_batch(a: &[f64], b: &[f64], count: u64, dim: usize) -> f64 {
    let mut checksum = 0.0;
    for i in 0..count as usize {
        let (a, b) = (&a[i * dim * dim..], &b[i * dim * dim..]);
        for r in 0..dim {
            for c in 0..dim {
                let mut v = 0.0;
                for t in 0..dim {
                    v += a[r * dim + t] * b[t * dim + c];
                }
                checksum += v;
            }
        }
    }
    checksum
}

fn main() {
    let ves = 2u8;
    let offload = dma_offload(ves, |b| {
        aurora_workloads::register_all(b);
    });

    // Generate all task inputs up front (deterministic).
    let inputs: Vec<(Vec<f64>, Vec<f64>)> = (0..TASKS)
        .map(|i| {
            (
                random_matrix(100 + i as u64, PER_BATCH as usize * DIM, DIM),
                random_matrix(200 + i as u64, PER_BATCH as usize * DIM, DIM),
            )
        })
        .collect();

    // One resident buffer pair per VE.
    let elems = (PER_BATCH as usize * DIM * DIM) as u64;
    let buffers: Vec<_> = (1..=ves as u16)
        .map(|n| {
            let node = NodeId(n);
            (
                node,
                offload.allocate::<f64>(node, elems).expect("alloc a"),
                offload.allocate::<f64>(node, elems).expect("alloc b"),
            )
        })
        .collect();

    let mut results = [0.0f64; TASKS];
    let mut next_task = 0usize;
    let mut host_done = 0usize;
    let mut ve_done = 0usize;

    // In-flight futures, with parallel task/slot tags (swap_remove keeps
    // the three vectors in lock-step).
    let mut futs: Vec<Future<f64>> = Vec::new();
    let mut task_of: Vec<usize> = Vec::new();
    let mut slot_of: Vec<usize> = Vec::new();
    let mut free_slots: Vec<usize> = (0..ves as usize).collect();

    while !futs.is_empty() || next_task < TASKS {
        // Refill every idle VE from the queue.
        while next_task < TASKS {
            let Some(slot) = free_slots.pop() else { break };
            let (node, a_dev, b_dev) = buffers[slot];
            let (a, b) = &inputs[next_task];
            offload.put(a, a_dev).expect("put a");
            offload.put(b, b_dev).expect("put b");
            let fut = offload
                .async_(
                    node,
                    f2f!(
                        dense_batch,
                        a_dev.addr(),
                        b_dev.addr(),
                        PER_BATCH,
                        DIM as u64
                    ),
                )
                .expect("offload batch");
            futs.push(fut);
            task_of.push(next_task);
            slot_of.push(slot);
            next_task += 1;
        }
        // Every VE is busy and work remains: the host takes one task.
        if next_task < TASKS {
            let (a, b) = &inputs[next_task];
            results[next_task] = host_dense_batch(a, b, PER_BATCH, DIM);
            host_done += 1;
            next_task += 1;
        }
        // Block until the next VE completion, whichever VE it is.
        if let Some(i) = offload.wait_any(&mut futs) {
            let task = task_of.swap_remove(i);
            free_slots.push(slot_of.swap_remove(i));
            results[task] = futs.swap_remove(i).get().expect("batch result");
            ve_done += 1;
        }
    }

    // Validate every result against the host reference.
    for (i, (a, b)) in inputs.iter().enumerate() {
        let reference = host_dense_batch(a, b, PER_BATCH, DIM);
        assert!(
            (results[i] - reference).abs() < 1e-9,
            "task {i}: {} vs {reference}",
            results[i]
        );
    }

    println!("{TASKS} dense batches: {ve_done} on {ves} VEs, {host_done} on the host");
    println!("virtual time: {}", offload.backend().host_clock().now());
    offload.shutdown();
    println!("ok");
}
