//! Host/VE load balancing over batches of dense kernels — the usage
//! pattern of Malý et al. [10], who used HAM-Offload to balance FETI
//! domain-decomposition dense-matrix batches between the host CPU and
//! coprocessors.
//!
//! Placement is split between the runtime and the application: the
//! [`TargetPool`] picks the least-loaded VE (`try_pick`), the
//! application stages that task's matrices into the VE's resident
//! buffers and pins the kernel there with `submit_to` — an affinity
//! submission, since the data now lives on that VE. When no VE can take
//! more work (`try_pick` says every candidate is saturated, or the
//! chosen VE is out of resident buffers), the host consumes a task
//! itself instead of blocking; `wait_any` then drains completions and
//! frees buffer pairs for refilling.
//!
//! Run with: `cargo run --example feti_load_balance`

use aurora_workloads::generators::random_matrix;
use aurora_workloads::kernels::dense_batch;
use ham::f2f;
use ham_aurora_repro::{dma_offload, NodeId, PoolFuture};

const DIM: usize = 8; // small dense blocks, FETI-style
const PER_BATCH: u64 = 4; // blocks per offloaded batch
const TASKS: usize = 24;
const PAIRS_PER_VE: usize = 2; // resident buffer pairs (offloads in flight) per VE

fn host_dense_batch(a: &[f64], b: &[f64], count: u64, dim: usize) -> f64 {
    let mut checksum = 0.0;
    for i in 0..count as usize {
        let (a, b) = (&a[i * dim * dim..], &b[i * dim * dim..]);
        for r in 0..dim {
            for c in 0..dim {
                let mut v = 0.0;
                for t in 0..dim {
                    v += a[r * dim + t] * b[t * dim + c];
                }
                checksum += v;
            }
        }
    }
    checksum
}

fn main() {
    let ves = 2u8;
    let offload = dma_offload(ves, |b| {
        aurora_workloads::register_all(b);
    });
    let nodes: Vec<NodeId> = (1..=ves as u16).map(NodeId).collect();
    let pool = offload.pool(&nodes).expect("pool");

    // Generate all task inputs up front (deterministic).
    let inputs: Vec<(Vec<f64>, Vec<f64>)> = (0..TASKS)
        .map(|i| {
            (
                random_matrix(100 + i as u64, PER_BATCH as usize * DIM, DIM),
                random_matrix(200 + i as u64, PER_BATCH as usize * DIM, DIM),
            )
        })
        .collect();

    // Resident buffer pairs per VE — the unit of VE concurrency here.
    let elems = (PER_BATCH as usize * DIM * DIM) as u64;
    let mut free: Vec<Vec<_>> = (0..=ves as usize).map(|_| Vec::new()).collect();
    for &node in &nodes {
        for _ in 0..PAIRS_PER_VE {
            free[node.0 as usize].push((
                offload.allocate::<f64>(node, elems).expect("alloc a"),
                offload.allocate::<f64>(node, elems).expect("alloc b"),
            ));
        }
    }

    let mut results = [0.0f64; TASKS];
    let mut next_task = 0usize;
    let mut host_done = 0usize;
    let mut ve_done = 0usize;

    // In-flight futures with parallel task/buffer tags (swap_remove
    // keeps the vectors in lock-step).
    let mut futs: Vec<PoolFuture<f64>> = Vec::new();
    let mut task_of: Vec<usize> = Vec::new();
    let mut pair_of: Vec<(NodeId, _)> = Vec::new();

    while !futs.is_empty() || next_task < TASKS {
        // Refill: the pool names the least-loaded VE; the task's data is
        // staged there, so the kernel is pinned with submit_to.
        while next_task < TASKS {
            match pool.try_pick().expect("healthy pool") {
                Some(node) if !free[node.0 as usize].is_empty() => {
                    let (a_dev, b_dev) = free[node.0 as usize].pop().expect("free pair");
                    let (a, b) = &inputs[next_task];
                    offload.put(a, a_dev).expect("put a");
                    offload.put(b, b_dev).expect("put b");
                    let fut = pool
                        .submit_to(
                            node,
                            f2f!(
                                dense_batch,
                                a_dev.addr(),
                                b_dev.addr(),
                                PER_BATCH,
                                DIM as u64
                            ),
                        )
                        .expect("offload batch");
                    futs.push(fut);
                    task_of.push(next_task);
                    pair_of.push((node, (a_dev, b_dev)));
                    next_task += 1;
                }
                // try_pick returned None (every VE at its credit limit)
                // or the least-loaded VE is out of resident buffers —
                // in either case no VE can take more work right now.
                _ => break,
            }
        }
        // Every VE is saturated and work remains: the host takes a task.
        if next_task < TASKS {
            let (a, b) = &inputs[next_task];
            results[next_task] = host_dense_batch(a, b, PER_BATCH, DIM);
            host_done += 1;
            next_task += 1;
        }
        // Block until the next VE completion, whichever VE it is.
        if let Some(i) = pool.wait_any(&mut futs) {
            let task = task_of.swap_remove(i);
            let (node, pair) = pair_of.swap_remove(i);
            free[node.0 as usize].push(pair);
            results[task] = pool.get(futs.swap_remove(i)).expect("batch result");
            ve_done += 1;
        }
    }

    // Validate every result against the host reference.
    for (i, (a, b)) in inputs.iter().enumerate() {
        let reference = host_dense_batch(a, b, PER_BATCH, DIM);
        assert!(
            (results[i] - reference).abs() < 1e-9,
            "task {i}: {} vs {reference}",
            results[i]
        );
    }
    assert_eq!(host_done + ve_done, TASKS);

    println!("{TASKS} dense batches: {ve_done} on {ves} VEs, {host_done} on the host");
    println!("virtual time: {}", offload.backend().host_clock().now());
    offload.shutdown();
    println!("ok");
}
