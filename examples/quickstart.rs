//! Quickstart: the paper's Fig. 2 example, ported line for line.
//!
//! Computes the inner product of two vectors on a (simulated) Vector
//! Engine: allocate target memory, `put` the data, offload the kernel
//! asynchronously, overlap host work, synchronise on the future.
//!
//! Run with: `cargo run --example quickstart`

use ham::f2f;
use ham_aurora_repro::{dma_offload, NodeId};

// In HAM-Offload the kernel is ordinary application code; ham_kernel!
// plays the role the C++ template machinery plays in the paper.
ham::ham_kernel! {
    /// inner product of vector a and b
    pub fn inner_prod(ctx, a: u64, b: u64, n: u64) -> f64 {
        let x = ctx.mem.read_f64s(a, n as usize).expect("read a");
        let y = ctx.mem.read_f64s(b, n as usize).expect("read b");
        x.iter().zip(&y).map(|(p, q)| p * q).sum()
    }
}

fn main() {
    // Host memory.
    const N: usize = 1024;
    let a: Vec<f64> = (0..N).map(|i| (i as f64).sin()).collect();
    let b: Vec<f64> = (0..N).map(|i| (i as f64).cos()).collect();

    // The runtime: one VE, the paper's fast DMA-based protocol.
    let offload = dma_offload(1, |builder| {
        builder.register::<inner_prod>();
    });

    // Target memory.
    let target = NodeId(1);
    let a_target = offload
        .allocate::<f64>(target, N as u64)
        .expect("allocate a");
    let b_target = offload
        .allocate::<f64>(target, N as u64)
        .expect("allocate b");

    // Transfer memory.
    offload.put(&a, a_target).expect("put a");
    offload.put(&b, b_target).expect("put b");

    // Async offload, returns a Future<f64>.
    let result = offload
        .async_(
            target,
            f2f!(inner_prod, a_target.addr(), b_target.addr(), N as u64),
        )
        .expect("offload");

    // Do something in parallel on the host.
    let host_reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();

    // Sync on the result future.
    let c = result.get().expect("result");

    println!("offloaded inner product = {c:.9}");
    println!("host reference          = {host_reference:.9}");
    assert!((c - host_reference).abs() < 1e-9);
    println!(
        "virtual time spent: {}",
        offload.backend().host_clock().now()
    );

    offload.free(a_target).expect("free a");
    offload.free(b_target).expect("free b");
    offload.shutdown();
    println!("ok");
}
