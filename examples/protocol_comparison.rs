//! Side-by-side protocol comparison: the Fig. 9 experiment as a demo.
//!
//! Measures the empty-offload cost of (a) a native VEO call, (b)
//! HAM-Offload over the VEO backend, (c) HAM-Offload over the DMA
//! backend, and prints the factors the paper headlines.
//!
//! Run with: `cargo run --example protocol_comparison`

use aurora_bench::harness::{
    benchmark_machine, mean_empty_offload_us, mean_native_veo_call_us, BenchConfig,
};
use aurora_workloads::kernels::register_all;
use ham_aurora_repro::offload::Offload;
use ham_backend_dma::DmaBackend;
use ham_backend_veo::{ProtocolConfig, VeoBackend};

fn main() {
    let cfg = BenchConfig::quick();

    let m = benchmark_machine(&cfg);
    let veo_native = mean_native_veo_call_us(&m, &cfg);

    let m = benchmark_machine(&cfg);
    let o = Offload::new(VeoBackend::spawn(
        m,
        0,
        &[0],
        ProtocolConfig::default(),
        register_all,
    ));
    let ham_veo = mean_empty_offload_us(&o, &cfg);
    o.shutdown();

    let m = benchmark_machine(&cfg);
    let o = Offload::new(DmaBackend::spawn(
        m,
        0,
        &[0],
        ProtocolConfig::default(),
        register_all,
    ));
    let ham_dma = mean_empty_offload_us(&o, &cfg);
    o.shutdown();

    println!("Function offload cost, VH to local VE (paper Fig. 9):\n");
    println!("  {:<28} {:>10}   paper", "method", "cost");
    println!("  {:<28} {:>8.1} us   79.9 us", "VEO (native)", veo_native);
    println!("  {:<28} {:>8.1} us  432 us", "HAM-Offload (VEO)", ham_veo);
    println!(
        "  {:<28} {:>8.1} us    6.1 us",
        "HAM-Offload (DMA)", ham_dma
    );
    println!();
    println!(
        "  DMA protocol is {:.1}x faster than a native VEO offload (paper: 13.1x)",
        veo_native / ham_dma
    );
    println!(
        "  and {:.1}x faster than the VEO-backend messaging (paper: 70.8x).",
        ham_veo / ham_dma
    );
}
