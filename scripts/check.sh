#!/usr/bin/env bash
# The repo's gate: tier-1 build + tests, then lints. CI runs exactly this.
# Only workspace crates (crates/* + the facade) are linted/formatted; the
# vendored stand-ins under vendor/ are plain dependencies and stay exempt.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== examples build =="
cargo build --release --examples

echo "== pipelined-offloads smoke (writes BENCH_pipelined.json) =="
cargo bench -q -p aurora-bench --bench pipelined_offloads -- --smoke

echo "== batching gate: depth-64 batched must beat unbatched =="
# The bench records the depth-64 comparison in BENCH_pipelined.json and
# already asserts the bound internally; this re-checks the artifact so a
# stale or hand-edited file cannot pass the gate.
grep -q '"batch_faster": true' BENCH_pipelined.json || {
    echo "FAIL: BENCH_pipelined.json does not show batch_faster=true" >&2
    cat BENCH_pipelined.json >&2 || true
    exit 1
}

echo "== scheduler-scaling smoke (writes BENCH_sched.json) =="
cargo bench -q -p aurora-bench --bench scheduler_scaling -- --smoke

echo "== scheduler gate: 4-target pool must be >=3x a single target =="
grep -q '"pool_faster_3x": true' BENCH_sched.json || {
    echo "FAIL: BENCH_sched.json does not show pool_faster_3x=true" >&2
    cat BENCH_sched.json >&2 || true
    exit 1
}

echo "== device-lanes smoke (writes BENCH_lanes.json) =="
cargo bench -q -p aurora-bench --bench device_lanes -- --smoke

echo "== lane gate: 8 worker lanes must be >=2x the serial engine =="
grep -q '"lanes8_faster_2x": true' BENCH_lanes.json || {
    echo "FAIL: BENCH_lanes.json does not show lanes8_faster_2x=true" >&2
    cat BENCH_lanes.json >&2 || true
    exit 1
}

echo "== mixed-traffic smoke (writes BENCH_adaptive.json) =="
cargo bench -q -p aurora-bench --bench mixed_traffic -- --smoke

echo "== adaptive gate: probe p99 >=2x better than static depth-64, frame cut kept =="
grep -q '"adaptive_p99_2x": true' BENCH_adaptive.json || {
    echo "FAIL: BENCH_adaptive.json does not show adaptive_p99_2x=true" >&2
    cat BENCH_adaptive.json >&2 || true
    exit 1
}
grep -q '"frame_cut_3x": true' BENCH_adaptive.json || {
    echo "FAIL: BENCH_adaptive.json does not show frame_cut_3x=true" >&2
    cat BENCH_adaptive.json >&2 || true
    exit 1
}

echo "== telemetry-overhead smoke (writes BENCH_telemetry.json) =="
cargo bench -q -p aurora-bench --bench telemetry_overhead -- --smoke

echo "== telemetry gate: always-on histogram path must cost <5% of an offload =="
grep -q '"hist_overhead_lt_5pct": true' BENCH_telemetry.json || {
    echo "FAIL: BENCH_telemetry.json does not show hist_overhead_lt_5pct=true" >&2
    cat BENCH_telemetry.json >&2 || true
    exit 1
}
grep -q '"ctrl_overhead_lt_5pct": true' BENCH_telemetry.json || {
    echo "FAIL: BENCH_telemetry.json does not show ctrl_overhead_lt_5pct=true" >&2
    cat BENCH_telemetry.json >&2 || true
    exit 1
}

echo "== fault matrix (8 seeds x {veo,dma,tcp}, hang = failure) =="
./scripts/fault_matrix.sh

echo "== soak gate (scaled down: all backends x 4 seeds, SLO-checked) =="
./scripts/soak.sh

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "All checks passed."
