# Re-plot the Fig. 10 panels from repro_fig10's CSV output.
#
#   cargo run --release -p aurora-bench --bin repro_fig10 > fig10.csv
#   gnuplot -e "csv='fig10.csv'" scripts/plot_fig10.gp
#
# Produces fig10.png with the four panels of the paper: {VH=>VE, VE=>VH}
# x {small sizes <=1 KiB, full range}.

if (!exists("csv")) csv = "fig10.csv"

set datafile separator ","
set terminal pngcairo size 1400,1000 font ",11"
set output "fig10.png"
set multiplot layout 2,2 title "Fig. 10 — transfer bandwidth between VH and VE (reproduction)"

set logscale xy
set xlabel "transfer size [byte]"
set ylabel "bandwidth [GiB/s]"
set key bottom right
set grid

series_w_veo = "VH=>VE VEO Read/Write"
series_w_dma = "VH=>VE VE User DMA"
series_w_shm = "VH=>VE VE SHM/LHM"
series_r_veo = "VE=>VH VEO Read/Write"
series_r_dma = "VE=>VH VE User DMA"
series_r_shm = "VE=>VH VE SHM/LHM"

filter(s) = sprintf("< awk -F, '$1==\"%s\"' %s", s, csv)

# Panel 1: VH=>VE, small sizes.
set title "VH => VE (<= 1 KiB)"
set xrange [8:1024]
plot filter(series_w_veo) using 2:3 with linespoints title "VEO Write", \
     filter(series_w_dma) using 2:3 with linespoints title "VE User DMA", \
     filter(series_w_shm) using 2:3 with linespoints title "VE LHM"

# Panel 2: VH=>VE, full range.
set title "VH => VE (full range)"
set xrange [8:268435456]
replot

# Panel 3: VE=>VH, small sizes.
set title "VE => VH (<= 1 KiB)"
set xrange [8:1024]
plot filter(series_r_veo) using 2:3 with linespoints title "VEO Read", \
     filter(series_r_dma) using 2:3 with linespoints title "VE User DMA", \
     filter(series_r_shm) using 2:3 with linespoints title "VE SHM"

# Panel 4: VE=>VH, full range.
set title "VE => VH (full range)"
set xrange [8:268435456]
replot

unset multiplot
