#!/usr/bin/env bash
# The fault-injection acceptance matrix, one scenario test at a time,
# each under a hard wall-clock timeout: a fault-recovery bug's natural
# failure mode is a *hang* (a wait that never settles, a shutdown that
# never joins), which a plain `cargo test` run would sit in until the
# CI job dies. Here a hung scenario kills only its own test, with a
# name attached.
#
# The scenarios themselves (tests/fault_scenarios.rs) cover every
# fault-capable backend {veo, dma, tcp} × 8 fixed seeds, each run twice
# to assert the seeded failure timeline replays. The pool scenarios
# (tests/pool_scenarios.rs) add the multi-target scheduler on top:
# kill 1 of 4 pooled targets mid-wave on each backend and require every
# offload to complete on a survivor or surface `TargetLost`. The
# reconnect scenarios (tests/reconnect_scenarios.rs) exercise the
# cluster-TCP session-resume path: mid-batch disconnects, double
# disconnects, blackouts that exhaust (or nearly exhaust) the reconnect
# budget, and the discovery handshake, asserting exactly-once-or-lost
# outcomes and zero leaked pending entries throughout. The membership
# churn scenarios (also tests/pool_scenarios.rs) add dynamic pool
# rosters: a reserve target joining mid-flight, a member retired with
# staged work, a flapping link deprioritized by the background prober,
# and the bounded all-degraded placement wait.
set -euo pipefail
cd "$(dirname "$0")/.."

PER_TEST_TIMEOUT="${PER_TEST_TIMEOUT:-120}"

# Build the test binaries up front so the timeout below measures the
# scenarios, not the compiler.
cargo test -q --test fault_scenarios --no-run
cargo test -q --test pool_scenarios --no-run
cargo test -q --test reconnect_scenarios --no-run

tests=(
  kill_one_of_two_targets_veo
  kill_one_of_two_targets_dma
  kill_one_of_two_targets_tcp
  drops_recovered_by_retries_veo
  drops_recovered_by_retries_dma
  total_loss_times_out_veo
  total_loss_times_out_dma
  timing_faults_change_no_outcome_veo
  timing_faults_change_no_outcome_dma
  zero_plan_is_inert_everywhere
)

pool_tests=(
  pool_kill_one_of_four_veo
  pool_kill_one_of_four_dma
  pool_kill_one_of_four_tcp
  staged_batch_offloads_fail_over_to_survivors
  killing_every_target_empties_the_pool
  kill_target_latches_eviction_before_returning
  membership_add_target_mid_flight_matrix
  membership_remove_target_reclaims_staged_work
  flapping_target_probed_deprioritized_then_heals
  all_degraded_cluster_submit_is_bounded_under_permanent_outage
  all_degraded_cluster_heals_and_unblocks_placement
)

for t in "${tests[@]}"; do
  echo "-- fault scenario: $t"
  if ! timeout --kill-after=10 "$PER_TEST_TIMEOUT" \
      cargo test -q --test fault_scenarios -- --exact "$t"; then
    echo "FAULT MATRIX FAILURE: '$t' failed or hung (> ${PER_TEST_TIMEOUT}s)" >&2
    exit 1
  fi
done

reconnect_tests=(
  mid_batch_disconnect_matrix
  disconnect_during_staged_accumulator_matrix
  double_disconnect_matrix
  reconnect_after_timeout_matrix
  replayed_timelines_are_deterministic
  eviction_waits_for_the_reconnect_budget
  discovery_announces_per_host_capabilities
)

for t in "${pool_tests[@]}"; do
  echo "-- pool scenario: $t"
  if ! timeout --kill-after=10 "$PER_TEST_TIMEOUT" \
      cargo test -q --test pool_scenarios -- --exact "$t"; then
    echo "FAULT MATRIX FAILURE: '$t' failed or hung (> ${PER_TEST_TIMEOUT}s)" >&2
    exit 1
  fi
done

for t in "${reconnect_tests[@]}"; do
  echo "-- reconnect scenario: $t"
  if ! timeout --kill-after=10 "$PER_TEST_TIMEOUT" \
      cargo test -q --test reconnect_scenarios -- --exact "$t"; then
    echo "FAULT MATRIX FAILURE: '$t' failed or hung (> ${PER_TEST_TIMEOUT}s)" >&2
    exit 1
  fi
done

echo "Fault matrix passed: ${#tests[@]} channel + ${#pool_tests[@]} pool + ${#reconnect_tests[@]} reconnect scenarios, 3 backends, 8 seeds."
