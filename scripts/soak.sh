#!/usr/bin/env bash
# The scaled-down soak gate: every backend x 4 seeds, 10^4 pooled
# offloads each (12 x 10^4 >= the 10^5 the full example drives in one
# go), under a rolling kill and the SLO spec. Each run sits under a
# hard wall-clock timeout: a soak bug's natural failure mode is a hang
# (a wave that never collects), which would otherwise stall CI until
# the job dies. The example exits nonzero on any SLO violation.
#
# The tcp runs additionally drive the disconnect/reconnect churn phase
# (examples/soak.rs `tcp_churn_run`): a cluster pool whose links are
# killed on a rolling schedule, gated on the same SloSpec plus the
# requirement that at least one session resume actually happened — and
# the membership churn phase (`membership_churn_run`): a reserve target
# joins mid-run, members are retired and re-admitted under load, and
# the background prober must record answered rounds, all on the same
# SLO gate.
#
# Full-size run (no arguments, ~10^5 offloads in one process):
#   cargo run --release --example soak
set -euo pipefail
cd "$(dirname "$0")/.."

PER_RUN_TIMEOUT="${PER_RUN_TIMEOUT:-300}"
OFFLOADS="${OFFLOADS:-10000}"
SEEDS=(1 2 3 4)

# Build up front so the timeout measures the soak, not the compiler.
cargo build -q --release --example soak

for backend in veo dma tcp; do
  for seed in "${SEEDS[@]}"; do
    echo "-- soak: $backend seed $seed ($OFFLOADS offloads)"
    if ! timeout --kill-after=10 "$PER_RUN_TIMEOUT" \
        cargo run -q --release --example soak -- \
        --offloads "$OFFLOADS" --backends "$backend" --seeds "$seed"; then
      echo "SOAK FAILURE: $backend seed $seed violated its SLO or hung (> ${PER_RUN_TIMEOUT}s)" >&2
      exit 1
    fi
  done
done

echo "Soak gate passed: 3 backends x ${#SEEDS[@]} seeds x $OFFLOADS offloads, all SLOs held."
