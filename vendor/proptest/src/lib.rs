//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the subset of the proptest API the workspace uses: the [`proptest!`]
//! macro (with `#![proptest_config(..)]`, `name in strategy` and
//! `name: Type` parameters), `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, [`strategy::Strategy`] implemented for
//! integer ranges and tuples, [`arbitrary::any`], and
//! [`collection::vec`].
//!
//! Differences from real proptest, deliberately accepted for a stand-in:
//! cases are generated from a deterministic per-test seed (derived from the
//! test's module path and name) and failures are **not shrunk** — the
//! failing assertion message reports the case number instead.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG and run configuration.

    /// Run configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps simulation-heavy
            // properties fast while still exercising varied inputs.
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64 generator — deterministic per seed, good 64-bit avalanche.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the generator from an arbitrary label (test name), so each
        /// property gets a distinct but reproducible stream.
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniformly random `usize` below `bound` (which must be > 0).
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking).

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Produce one random value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    //! Default strategies per type (`any::<T>()`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical random generator.
    pub trait Arbitrary: Sized {
        /// Produce one random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Uniform over bit patterns, excluding NaN/inf so equality-based
            // round-trip properties stay meaningful.
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            loop {
                let v = f32::from_bits(rng.next_u64() as u32);
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            const POOL: &[char] = &[
                'a', 'Z', '0', ' ', '_', 'λ', 'é', '中', '🚀', '\n', '\'', '"',
            ];
            POOL[rng.below(POOL.len())]
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = rng.below(12);
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Vec<T> {
            let len = rng.below(9);
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            if bool::arbitrary(rng) {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    macro_rules! tuple_arbitrary {
        ($(($($t:ident),+))*) => {$(
            impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($t::arbitrary(rng),)+)
                }
            }
        )*};
    }
    tuple_arbitrary! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Supports an optional
/// `#![proptest_config(expr)]` header and parameters written either as
/// `name in strategy` or `name: Type` (the latter uses `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expand each `fn` into a test
/// running `cases` deterministic random cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_case!(__rng, ($($params)*) $body);
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: bind one parameter, recurse.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, () $body:block) => {
        $body
    };
    ($rng:ident, ($name:ident in $strat:expr, $($rest:tt)+) $body:block) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_case!($rng, ($($rest)+) $body);
    }};
    ($rng:ident, ($name:ident : $ty:ty, $($rest:tt)+) $body:block) => {{
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_case!($rng, ($($rest)+) $body);
    }};
    ($rng:ident, ($name:ident in $strat:expr $(,)?) $body:block) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $body
    }};
    ($rng:ident, ($name:ident : $ty:ty $(,)?) $body:block) => {{
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $body
    }};
}

/// Property-scoped `assert!` (no shrinking: plain assertion).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property-scoped `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Property-scoped `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Skip the current case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::generate(&(-5i16..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro handles mixed `in`/`:` parameters and prop_assume.
        #[test]
        fn macro_smoke(
            a in 1u32..10,
            b: bool,
            xs in crate::collection::vec(any::<u8>(), 0..4),
        ) {
            prop_assume!(a != 5);
            prop_assert!((1..10u32).contains(&a));
            prop_assert_eq!(b, b);
            prop_assert!(xs.len() < 4);
        }
    }
}
