//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal wall-clock harness exposing the slice of criterion's API the
//! benches use: [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is
//! warmed up and then sampled until ~100 ms of wall-clock has accumulated;
//! the mean time per iteration is printed. There is no statistical
//! analysis, plotting, or baseline comparison — enough to observe relative
//! cost and to keep bench targets compiling and runnable.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units for reporting throughput alongside time per iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: populate caches, fault in lazily-built state.
        for _ in 0..3 {
            black_box(routine());
        }
        let mut iters = 0u64;
        let budget = Duration::from_millis(100);
        let start = Instant::now();
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget || iters >= 100_000 {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

fn run_one(full_name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.total / (b.iters as u32)
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let gib = n as f64 / per_iter.as_secs_f64() / (1u64 << 30) as f64;
            format!("   {gib:.3} GiB/s")
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let melem = n as f64 / per_iter.as_secs_f64() / 1e6;
            format!("   {melem:.3} Melem/s")
        }
        _ => String::new(),
    };
    println!(
        "{full_name:<50} {per_iter:>12.3?}/iter   ({} iters){rate}",
        b.iters
    );
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    /// Accepted for API compatibility; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accepted for API compatibility; nothing to summarize.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement is time-budgeted here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Report throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut f);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<N: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a callable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness-less bench binary is invoked
            // with test flags; a plain run executes every group.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Bytes(8));
        g.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
