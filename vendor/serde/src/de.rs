//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error construction hook for deserializers.
pub trait Error: Sized {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;

    /// A sequence or map had the wrong number of items.
    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {expected}"))
    }
}

/// A data structure deserializable from any serde data format.
pub trait Deserialize<'de>: Sized {
    /// Deserialize `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Shorthand for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point; the stateless case is
/// `PhantomData<T>`.
pub trait DeserializeSeed<'de>: Sized {
    /// The produced value.
    type Value;
    /// Deserialize the value using `self`'s state.
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D: Deserializer<'de>>(self, deserializer: D) -> Result<T, D::Error> {
        T::deserialize(deserializer)
    }
}

/// A data format that can deserialize any serde data structure.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Self-describing formats dispatch on the input; binary formats error.
    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `bool`.
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i8`.
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i16`.
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i32`.
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i64`.
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `i128`.
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        let _ = visitor;
        Err(Error::custom("i128 is not supported"))
    }
    /// Deserialize a `u8`.
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u16`.
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u32`.
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u64`.
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `u128`.
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        let _ = visitor;
        Err(Error::custom("u128 is not supported"))
    }
    /// Deserialize an `f32`.
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `f64`.
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a `char`.
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a borrowed or transient string slice.
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned string.
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize borrowed or transient bytes.
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an owned byte buffer.
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize an `Option`.
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize `()`.
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a unit struct.
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a newtype struct.
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a variable-length sequence.
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a fixed-length tuple.
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a tuple struct.
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a map.
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct.
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize an enum.
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct-field or enum-variant identifier.
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Skip over a value of any type.
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    /// Hint for formats with human-readable and binary representations.
    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Dispatch target the deserializer drives with the decoded value.
pub trait Visitor<'de>: Sized {
    /// The produced value.
    type Value;

    /// Describe what this visitor expects, for error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    /// Input contained a `bool`.
    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "bool")))
    }
    /// Input contained an `i8`.
    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an `i16`.
    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an `i32`.
    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }
    /// Input contained an `i64`.
    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "integer")))
    }
    /// Input contained an `i128`.
    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "i128")))
    }
    /// Input contained a `u8`.
    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a `u16`.
    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a `u32`.
    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }
    /// Input contained a `u64`.
    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "unsigned integer")))
    }
    /// Input contained a `u128`.
    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "u128")))
    }
    /// Input contained an `f32`.
    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }
    /// Input contained an `f64`.
    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "float")))
    }
    /// Input contained a `char`.
    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "char")))
    }
    /// Input contained a transient string slice.
    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "string")))
    }
    /// Input contained a string borrowed from the input buffer.
    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }
    /// Input contained an owned string.
    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }
    /// Input contained transient bytes.
    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        Err(Error::custom(Unexpected(&self, "bytes")))
    }
    /// Input contained bytes borrowed from the input buffer.
    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }
    /// Input contained an owned byte buffer.
    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }
    /// Input contained `None`.
    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(Unexpected(&self, "Option::None")))
    }
    /// Input contained `Some(..)`; deserialize the inner value.
    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(Unexpected(&self, "Option::Some")))
    }
    /// Input contained `()`.
    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(Unexpected(&self, "unit")))
    }
    /// Input contained a newtype struct; deserialize the inner value.
    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        Err(Error::custom(Unexpected(&self, "newtype struct")))
    }
    /// Input contained a sequence.
    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        Err(Error::custom(Unexpected(&self, "sequence")))
    }
    /// Input contained a map.
    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        Err(Error::custom(Unexpected(&self, "map")))
    }
    /// Input contained an enum.
    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        Err(Error::custom(Unexpected(&self, "enum")))
    }
}

/// Formats "unexpected <kind>, expected <visitor expectation>".
struct Unexpected<'a, V>(&'a V, &'static str);

impl<'de, V: Visitor<'de>> Display for Unexpected<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected {}, expected ", self.1)?;
        self.0.expecting(f)
    }
}

/// Streaming access to sequence elements.
pub trait SeqAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Deserialize the next element through a seed.
    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;
    /// Deserialize the next element.
    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }
    /// Remaining element count, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Streaming access to map entries.
pub trait MapAccess<'de> {
    /// Error type.
    type Error: Error;
    /// Deserialize the next key through a seed.
    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;
    /// Deserialize the next value through a seed.
    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize the next key.
    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }
    /// Deserialize the next value.
    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }
    /// Deserialize the next entry.
    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }
    /// Remaining entry count, when known.
    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// Access to the variant payload.
    type Variant: VariantAccess<'de, Error = Self::Error>;
    /// Deserialize the variant tag through a seed.
    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;
    /// Deserialize the variant tag.
    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    /// Error type.
    type Error: Error;
    /// The variant has no payload.
    fn unit_variant(self) -> Result<(), Self::Error>;
    /// Deserialize a newtype variant payload through a seed.
    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;
    /// Deserialize a newtype variant payload.
    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }
    /// Deserialize a tuple variant payload.
    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    /// Deserialize a struct variant payload.
    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

// ---------------------------------------------------------------------------
// IntoDeserializer: primitive values as tiny deserializers
// ---------------------------------------------------------------------------

/// Conversion of a plain value into a deserializer yielding it — used for
/// enum variant tags.
pub trait IntoDeserializer<'de, E: Error> {
    /// The deserializer produced.
    type Deserializer: Deserializer<'de, Error = E>;
    /// Wrap `self`.
    fn into_deserializer(self) -> Self::Deserializer;
}

/// Deserializer wrapping a single `u32` (an enum variant index).
pub struct U32Deserializer<E> {
    value: u32,
    marker: PhantomData<fn() -> E>,
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = U32Deserializer<E>;
    fn into_deserializer(self) -> U32Deserializer<E> {
        U32Deserializer {
            value: self,
            marker: PhantomData,
        }
    }
}

macro_rules! forward_to_visit_u32 {
    ($($method:ident)*) => {$(
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }
    )*};
}

impl<'de, E: Error> Deserializer<'de> for U32Deserializer<E> {
    type Error = E;

    forward_to_visit_u32! {
        deserialize_any deserialize_bool
        deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64 deserialize_i128
        deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64 deserialize_u128
        deserialize_f32 deserialize_f64 deserialize_char
        deserialize_str deserialize_string deserialize_bytes deserialize_byte_buf
        deserialize_option deserialize_unit deserialize_seq deserialize_map
        deserialize_identifier deserialize_ignored_any
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple<V: Visitor<'de>>(self, _len: usize, visitor: V) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _len: usize,
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, E> {
        visitor.visit_u32(self.value)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for primitive and common std types
// ---------------------------------------------------------------------------

macro_rules! primitive_deserialize {
    ($($ty:ty, $method:ident, $visit:ident, $expect:literal;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimVisitor;
                impl<'de> Visitor<'de> for PrimVisitor {
                    type Value = $ty;
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        f.write_str($expect)
                    }
                    fn $visit<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }
                }
                deserializer.$method(PrimVisitor)
            }
        }
    )*};
}

primitive_deserialize! {
    bool, deserialize_bool, visit_bool, "a bool";
    i8, deserialize_i8, visit_i8, "an i8";
    i16, deserialize_i16, visit_i16, "an i16";
    i32, deserialize_i32, visit_i32, "an i32";
    i64, deserialize_i64, visit_i64, "an i64";
    i128, deserialize_i128, visit_i128, "an i128";
    u8, deserialize_u8, visit_u8, "a u8";
    u16, deserialize_u16, visit_u16, "a u16";
    u32, deserialize_u32, visit_u32, "a u32";
    u64, deserialize_u64, visit_u64, "a u64";
    u128, deserialize_u128, visit_u128, "a u128";
    f32, deserialize_f32, visit_f32, "an f32";
    f64, deserialize_f64, visit_f64, "an f64";
    char, deserialize_char, visit_char, "a char";
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = u64::deserialize(deserializer)?;
        usize::try_from(v).map_err(|_| Error::custom("u64 overflows usize"))
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = i64::deserialize(deserializer)?;
        isize::try_from(v).map_err(|_| Error::custom("i64 overflows isize"))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;
        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;
        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T> Deserialize<'de> for PhantomData<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct PhantomVisitor<T>(PhantomData<T>);
        impl<'de, T> Visitor<'de> for PhantomVisitor<T> {
            type Value = PhantomData<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit (PhantomData)")
            }
            fn visit_unit<E: Error>(self) -> Result<PhantomData<T>, E> {
                Ok(PhantomData)
            }
        }
        deserializer.deserialize_unit_struct("PhantomData", PhantomVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
        }
        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, F: Deserialize<'de>> Deserialize<'de> for Result<T, F> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ResultVisitor<T, F>(PhantomData<(T, F)>);
        impl<'de, T: Deserialize<'de>, F: Deserialize<'de>> Visitor<'de> for ResultVisitor<T, F> {
            type Value = Result<T, F>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a Result enum")
            }
            fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
                let (tag, variant): (u32, _) = data.variant()?;
                match tag {
                    0 => variant.newtype_variant().map(Ok),
                    1 => variant.newtype_variant().map(Err),
                    other => Err(Error::custom(format_args!(
                        "invalid Result variant index {other}"
                    ))),
                }
            }
        }
        deserializer.deserialize_enum("Result", &["Ok", "Err"], ResultVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct ArrayVisitor<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for ArrayVisitor<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(item) => out.push(item),
                        None => return Err(Error::invalid_length(i, &N)),
                    }
                }
                out.try_into()
                    .map_err(|_| Error::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, ArrayVisitor(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);
        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_capacity_and_hasher(0, H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

macro_rules! tuple_deserialize {
    ($(($len:expr, $($name:ident),+),)*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);
                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);
                    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        write!(f, "a tuple of length {}", $len)
                    }
                    #[allow(non_snake_case, unused_assignments)]
                    fn visit_seq<A: SeqAccess<'de>>(
                        self,
                        mut seq: A,
                    ) -> Result<Self::Value, A::Error> {
                        let mut taken = 0usize;
                        $(
                            let $name: $name = match seq.next_element()? {
                                Some(v) => { taken += 1; v }
                                None => return Err(Error::invalid_length(taken, &$len)),
                            };
                        )+
                        Ok(($($name,)+))
                    }
                }
                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )*};
}

tuple_deserialize! {
    (1, T0),
    (2, T0, T1),
    (3, T0, T1, T2),
    (4, T0, T1, T2, T3),
    (5, T0, T1, T2, T3, T4),
    (6, T0, T1, T2, T3, T4, T5),
}
