//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the serde data model: the [`ser::Serialize`]/[`ser::Serializer`] and
//! [`de::Deserialize`]/[`de::Deserializer`] trait families with the method
//! sets and signatures the repo's codec (`ham::codec`) implements, plus
//! impls for the primitive/std types that appear in messages. The `derive`
//! feature re-exports `#[derive(Serialize, Deserialize)]` proc-macros from
//! the vendored `serde_derive`.
//!
//! Supported attributes: `#[serde(skip)]` on fields and
//! `#[serde(crate = "path")]` on containers — the two the repo uses.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
