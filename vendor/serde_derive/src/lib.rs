//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, so this proc-macro crate
//! re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes the workspace uses — named/tuple/unit structs (with simple type
//! generics) and enums with unit/newtype/tuple/struct variants — by parsing
//! the raw `TokenStream` directly (no `syn`/`quote`, which are equally
//! unfetchable). Two attributes are honoured, matching the repo's usage:
//!
//! * `#[serde(crate = "path")]` on the container: root path for generated
//!   code (default `serde`);
//! * `#[serde(skip)]` on a named field: omitted from the wire, rebuilt with
//!   `Default::default()` on deserialize.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    /// Named field identifier, or tuple index rendered as a string.
    name: String,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    /// Root path of the serde facade in generated code.
    krate: String,
    name: String,
    /// Type-parameter identifiers (`T` in `struct Foo<T>`), sans bounds.
    type_params: Vec<String>,
    /// Lifetime parameters (`'a`), rendered with the tick.
    lifetimes: Vec<String>,
    data: Data,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

/// Flatten `Delimiter::None` groups (invisible delimiters introduced by
/// `macro_rules!` fragment captures, e.g. a `$vis` or `$ty` forwarded into
/// the struct definition) so the parser sees a plain token sequence.
fn flatten(stream: TokenStream, out: &mut Vec<TokenTree>) {
    for tt in stream {
        match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::None => {
                flatten(g.stream(), out);
            }
            other => out.push(other),
        }
    }
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        let mut tokens = Vec::new();
        flatten(stream, &mut tokens);
        Cursor { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Consume leading attributes; returns (serde_skip_seen, serde_crate).
    fn eat_attributes(&mut self) -> (bool, Option<String>) {
        let mut skip = false;
        let mut krate = None;
        while self.eat_punct('#') {
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde derive: malformed attribute: {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue; // doc comments, #[allow], other derives' helpers
            }
            let args = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                _ => continue,
            };
            let args: Vec<TokenTree> = args.into_iter().collect();
            match args.first() {
                Some(TokenTree::Ident(i)) if i.to_string() == "skip" => skip = true,
                Some(TokenTree::Ident(i)) if i.to_string() == "crate" => {
                    if let Some(TokenTree::Literal(lit)) = args.get(2) {
                        let s = lit.to_string();
                        krate = Some(s.trim_matches('"').to_string());
                    }
                }
                other => panic!(
                    "serde derive: unsupported #[serde(...)] attribute: {other:?} \
                     (only `skip` and `crate = \"...\"` are supported)"
                ),
            }
        }
        (skip, krate)
    }

    /// Consume an optional `pub` / `pub(...)` visibility.
    fn eat_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    /// Parse `<...>` generic parameters (idents and lifetimes; bounds in the
    /// declaration are tolerated and stripped).
    fn eat_generics(&mut self) -> (Vec<String>, Vec<String>) {
        let mut type_params = Vec::new();
        let mut lifetimes = Vec::new();
        if !self.eat_punct('<') {
            return (type_params, lifetimes);
        }
        let mut depth = 1u32;
        let mut expecting_param = true;
        let mut pending_lifetime = false;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => expecting_param = true,
                    ':' if depth == 1 => expecting_param = false, // bounds follow
                    '\'' if depth == 1 && expecting_param => pending_lifetime = true,
                    _ => {}
                },
                Some(TokenTree::Ident(i)) => {
                    if depth == 1 && expecting_param {
                        if pending_lifetime {
                            lifetimes.push(format!("'{i}"));
                            pending_lifetime = false;
                        } else {
                            type_params.push(i.to_string());
                        }
                        expecting_param = false;
                    }
                }
                Some(_) => {}
                None => panic!("serde derive: unterminated generic parameter list"),
            }
        }
        (type_params, lifetimes)
    }

    /// Skip a field's type: everything until a top-level comma (tracking
    /// angle-bracket depth; `->` does not close a bracket).
    fn skip_type(&mut self) {
        let mut angle = 0i32;
        let mut prev_dash = false;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        return;
                    }
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' && !prev_dash {
                        angle -= 1;
                    }
                    prev_dash = c == '-';
                }
                _ => prev_dash = false,
            }
            self.pos += 1;
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (skip, _) = c.eat_attributes();
        c.eat_visibility();
        let name = c.expect_ident("field name");
        assert!(
            c.eat_punct(':'),
            "serde derive: expected `:` after field `{name}`"
        );
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(group: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    let mut index = 0usize;
    while c.peek().is_some() {
        let (skip, _) = c.eat_attributes();
        c.eat_visibility();
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field {
            name: index.to_string(),
            skip,
        });
        index += 1;
    }
    fields
}

fn parse_input(stream: TokenStream) -> Input {
    let mut c = Cursor::new(stream);
    let (_, krate) = c.eat_attributes();
    c.eat_visibility();
    let kw = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("container name");
    let (type_params, lifetimes) = c.eat_generics();

    let data = match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            Some(TokenTree::Ident(i)) if i.to_string() == "where" => {
                panic!("serde derive: `where` clauses are not supported by the vendored derive")
            }
            other => panic!("serde derive: unexpected struct body: {other:?}"),
        },
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive: unexpected enum body: {other:?}"),
            };
            let mut vc = Cursor::new(body);
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                vc.eat_attributes();
                let vname = vc.expect_ident("variant name");
                let fields = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let g = g.stream();
                        vc.pos += 1;
                        Fields::Tuple(parse_tuple_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let g = g.stream();
                        vc.pos += 1;
                        Fields::Named(parse_named_fields(g))
                    }
                    _ => Fields::Unit,
                };
                if vc.eat_punct('=') {
                    panic!("serde derive: explicit discriminants are not supported");
                }
                vc.eat_punct(',');
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Data::Enum(variants)
        }
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    };

    Input {
        krate: krate.unwrap_or_else(|| "serde".to_string()),
        name,
        type_params,
        lifetimes,
        data,
    }
}

// ---------------------------------------------------------------------------
// Shared codegen helpers
// ---------------------------------------------------------------------------

impl Input {
    /// `Name<'a, T>` — the self type.
    fn self_ty(&self) -> String {
        if self.lifetimes.is_empty() && self.type_params.is_empty() {
            self.name.clone()
        } else {
            let mut params: Vec<String> = self.lifetimes.clone();
            params.extend(self.type_params.iter().cloned());
            format!("{}<{}>", self.name, params.join(", "))
        }
    }

    /// Generic parameter list for an impl, with a trait bound applied to
    /// every type parameter; `extra` is prepended (e.g. `'de`).
    fn impl_generics(&self, extra: &str, bound: &str) -> String {
        let mut params: Vec<String> = Vec::new();
        if !extra.is_empty() {
            params.push(extra.to_string());
        }
        params.extend(self.lifetimes.iter().cloned());
        params.extend(self.type_params.iter().map(|p| format!("{p}: {bound}")));
        if params.is_empty() {
            String::new()
        } else {
            format!("<{}>", params.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

/// Derive `Serialize` for structs and enums (vendored subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let p = &input.krate;
    let name = &input.name;
    let self_ty = input.self_ty();
    let generics = input.impl_generics("", &format!("{p}::ser::Serialize"));

    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut s = format!(
                "let mut __st = {p}::ser::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                live.len()
            );
            for f in &live {
                s.push_str(&format!(
                    "{p}::ser::SerializeStruct::serialize_field(&mut __st, \"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            s.push_str(&format!("{p}::ser::SerializeStruct::end(__st)\n"));
            s
        }
        Data::Struct(Fields::Tuple(fields)) if fields.len() == 1 => format!(
            "{p}::ser::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)\n"
        ),
        Data::Struct(Fields::Tuple(fields)) => {
            let mut s = format!(
                "let mut __st = {p}::ser::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                s.push_str(&format!(
                    "{p}::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{})?;\n",
                    f.name
                ));
            }
            s.push_str(&format!("{p}::ser::SerializeTupleStruct::end(__st)\n"));
            s
        }
        Data::Struct(Fields::Unit) => {
            format!("{p}::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")\n")
        }
        Data::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => s.push_str(&format!(
                        "{name}::{vname} => {p}::ser::Serializer::serialize_unit_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    Fields::Tuple(fields) if fields.len() == 1 => s.push_str(&format!(
                        "{name}::{vname}(__f0) => {p}::ser::Serializer::serialize_newtype_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    Fields::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        s.push_str(&format!(
                            "{name}::{vname}({}) => {{\nlet mut __sv = {p}::ser::Serializer::serialize_tuple_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            binders.join(", "),
                            fields.len()
                        ));
                        for b in &binders {
                            s.push_str(&format!(
                                "{p}::ser::SerializeTupleVariant::serialize_field(&mut __sv, {b})?;\n"
                            ));
                        }
                        s.push_str(&format!(
                            "{p}::ser::SerializeTupleVariant::end(__sv)\n}}\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let names: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        s.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\nlet mut __sv = {p}::ser::Serializer::serialize_struct_variant(__serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            names.join(", "),
                            fields.len()
                        ));
                        for n in &names {
                            s.push_str(&format!(
                                "{p}::ser::SerializeStructVariant::serialize_field(&mut __sv, \"{n}\", {n})?;\n"
                            ));
                        }
                        s.push_str(&format!(
                            "{p}::ser::SerializeStructVariant::end(__sv)\n}}\n"
                        ));
                    }
                }
            }
            s.push_str("}\n");
            s
        }
    };

    let out = format!(
        "#[automatically_derived]\n\
         impl{generics} {p}::ser::Serialize for {self_ty} {{\n\
         fn serialize<__S: {p}::ser::Serializer>(&self, __serializer: __S) \
         -> core::result::Result<__S::Ok, __S::Error> {{\n{body}}}\n}}\n"
    );
    out.parse()
        .expect("serde derive: generated invalid Serialize impl")
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

/// Emit a visitor `visit_seq` body reading `fields` positionally into
/// `ctor` (e.g. `Name { a, b }` or `Name(__e0, __e1)`).
fn seq_body(p: &str, fields: &[Field], named: bool, ctor_path: &str) -> String {
    let mut s = String::from("let mut __taken = 0usize;\n");
    let mut binders = Vec::new();
    for (i, f) in fields.iter().enumerate() {
        let binder = if named {
            format!("__field_{}", f.name)
        } else {
            format!("__e{i}")
        };
        if f.skip {
            s.push_str(&format!(
                "let {binder} = core::default::Default::default();\n"
            ));
        } else {
            s.push_str(&format!(
                "let {binder} = match {p}::de::SeqAccess::next_element(&mut __seq)? {{\n\
                 Some(__v) => {{ __taken += 1; __v }}\n\
                 None => return Err({p}::de::Error::invalid_length(__taken, &\"more fields\")),\n\
                 }};\n"
            ));
        }
        binders.push((binder, f.name.clone()));
    }
    s.push_str("let _ = __taken;\n");
    if named {
        let inits: Vec<String> = binders.iter().map(|(b, n)| format!("{n}: {b}")).collect();
        s.push_str(&format!("Ok({ctor_path} {{ {} }})\n", inits.join(", ")));
    } else {
        let args: Vec<String> = binders.iter().map(|(b, _)| b.clone()).collect();
        s.push_str(&format!("Ok({ctor_path}({}))\n", args.join(", ")));
    }
    s
}

/// Derive `Deserialize` for structs and enums (vendored subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let p = &input.krate;
    let name = &input.name;
    let self_ty = input.self_ty();
    let generics = input.impl_generics("'de", &format!("{p}::de::Deserialize<'de>"));

    // Helper visitor struct, generic over the container's type params.
    let (vis_decl, vis_generics, vis_ctor, vis_ty) = if input.type_params.is_empty() {
        (
            "struct __Visitor;".to_string(),
            "<'de>".to_string(),
            "__Visitor".to_string(),
            "__Visitor".to_string(),
        )
    } else {
        let tp = input.type_params.join(", ");
        (
            format!("struct __Visitor<{tp}>(core::marker::PhantomData<fn() -> ({tp},)>);"),
            format!(
                "<'de, {}>",
                input
                    .type_params
                    .iter()
                    .map(|t| format!("{t}: {p}::de::Deserialize<'de>"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            "__Visitor(core::marker::PhantomData)".to_string(),
            format!("__Visitor<{tp}>"),
        )
    };

    let (visitor_methods, driver) = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let live_names: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| format!("\"{}\"", f.name))
                .collect();
            let body = seq_body(p, fields, true, name);
            (
                format!(
                    "fn visit_seq<__A: {p}::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> core::result::Result<Self::Value, __A::Error> {{\n{body}}}\n"
                ),
                format!(
                    "{p}::de::Deserializer::deserialize_struct(__deserializer, \"{name}\", &[{}], {vis_ctor})",
                    live_names.join(", ")
                ),
            )
        }
        Data::Struct(Fields::Tuple(fields)) if fields.len() == 1 => (
            format!(
                "fn visit_newtype_struct<__D2: {p}::de::Deserializer<'de>>(self, __d: __D2) \
                 -> core::result::Result<Self::Value, __D2::Error> {{\n\
                 {p}::de::Deserialize::deserialize(__d).map({name})\n}}\n"
            ),
            format!(
                "{p}::de::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", {vis_ctor})"
            ),
        ),
        Data::Struct(Fields::Tuple(fields)) => {
            let body = seq_body(p, fields, false, name);
            (
                format!(
                    "fn visit_seq<__A: {p}::de::SeqAccess<'de>>(self, mut __seq: __A) \
                     -> core::result::Result<Self::Value, __A::Error> {{\n{body}}}\n"
                ),
                format!(
                    "{p}::de::Deserializer::deserialize_tuple_struct(__deserializer, \"{name}\", {}, {vis_ctor})",
                    fields.len()
                ),
            )
        }
        Data::Struct(Fields::Unit) => (
            format!(
                "fn visit_unit<__E: {p}::de::Error>(self) \
                 -> core::result::Result<Self::Value, __E> {{ Ok({name}) }}\n"
            ),
            format!(
                "{p}::de::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", {vis_ctor})"
            ),
        ),
        Data::Enum(variants) => {
            if !input.type_params.is_empty() {
                panic!("serde derive: generic enums are not supported by the vendored derive");
            }
            let variant_names: Vec<String> =
                variants.iter().map(|v| format!("\"{}\"", v.name)).collect();
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{idx}u32 => {{ {p}::de::VariantAccess::unit_variant(__variant)?; Ok({name}::{vname}) }}\n"
                    )),
                    Fields::Tuple(fields) if fields.len() == 1 => arms.push_str(&format!(
                        "{idx}u32 => {p}::de::VariantAccess::newtype_variant(__variant).map({name}::{vname}),\n"
                    )),
                    Fields::Tuple(fields) => {
                        let body =
                            seq_body(p, fields, false, &format!("{name}::{vname}"));
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                             struct __V{idx};\n\
                             impl<'de> {p}::de::Visitor<'de> for __V{idx} {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{ __f.write_str(\"tuple variant {name}::{vname}\") }}\n\
                             fn visit_seq<__A2: {p}::de::SeqAccess<'de>>(self, mut __seq: __A2) -> core::result::Result<Self::Value, __A2::Error> {{\n{body}}}\n\
                             }}\n\
                             {p}::de::VariantAccess::tuple_variant(__variant, {len}, __V{idx})\n\
                             }}\n",
                            len = fields.len()
                        ));
                    }
                    Fields::Named(fields) => {
                        let body =
                            seq_body(p, fields, true, &format!("{name}::{vname}"));
                        let fnames: Vec<String> =
                            fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
                        arms.push_str(&format!(
                            "{idx}u32 => {{\n\
                             struct __V{idx};\n\
                             impl<'de> {p}::de::Visitor<'de> for __V{idx} {{\n\
                             type Value = {name};\n\
                             fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{ __f.write_str(\"struct variant {name}::{vname}\") }}\n\
                             fn visit_seq<__A2: {p}::de::SeqAccess<'de>>(self, mut __seq: __A2) -> core::result::Result<Self::Value, __A2::Error> {{\n{body}}}\n\
                             }}\n\
                             {p}::de::VariantAccess::struct_variant(__variant, &[{fields_list}], __V{idx})\n\
                             }}\n",
                            fields_list = fnames.join(", ")
                        ));
                    }
                }
            }
            (
                format!(
                    "fn visit_enum<__A: {p}::de::EnumAccess<'de>>(self, __data: __A) \
                     -> core::result::Result<Self::Value, __A::Error> {{\n\
                     let (__tag, __variant): (u32, _) = {p}::de::EnumAccess::variant(__data)?;\n\
                     match __tag {{\n{arms}\
                     __other => Err({p}::de::Error::custom(format_args!(\
                     \"invalid {name} variant index {{__other}}\"))),\n\
                     }}\n}}\n"
                ),
                format!(
                    "{p}::de::Deserializer::deserialize_enum(__deserializer, \"{name}\", &[{}], {vis_ctor})",
                    variant_names.join(", ")
                ),
            )
        }
    };

    let out = format!(
        "#[automatically_derived]\n\
         impl{generics} {p}::de::Deserialize<'de> for {self_ty} {{\n\
         fn deserialize<__D: {p}::de::Deserializer<'de>>(__deserializer: __D) \
         -> core::result::Result<Self, __D::Error> {{\n\
         #[allow(non_camel_case_types)]\n\
         {vis_decl}\n\
         impl{vis_generics} {p}::de::Visitor<'de> for {vis_ty} {{\n\
         type Value = {self_ty};\n\
         fn expecting(&self, __f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {{\n\
         __f.write_str(\"{name}\")\n}}\n\
         {visitor_methods}\
         }}\n\
         {driver}\n\
         }}\n}}\n"
    );
    out.parse()
        .expect("serde derive: generated invalid Deserialize impl")
}
