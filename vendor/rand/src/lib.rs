//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the subset it uses: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`Rng::gen_range`] / [`Rng::gen`]. The generator is xorshift64* seeded
//! through SplitMix64 — statistically fine for test-data generation, which
//! is all the repo asks of it (workload vectors, property tests).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a half-open `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $ty
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Types producible by [`Rng::gen`] from uniform bits.
pub trait Standard {
    /// Produce a uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::from_rng(rng) as f32
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Sample uniformly from the half-open range `[start, end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xorshift64* seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 finalizer decorrelates sequential seeds.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(3u64..9);
            assert!((3..9).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
