//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal API-compatible subset: non-poisoning [`Mutex`] and [`RwLock`]
//! built on `std::sync`. Poisoning is swallowed (`parking_lot` never
//! poisons), `new` is `const` (usable in `static` items), and guards deref
//! to the protected data exactly like the real crate.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive; never poisons.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` items).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock; never poisons.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock (usable in `static` items).
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the protected data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static GLOBAL: Mutex<u32> = Mutex::new(7);

    #[test]
    fn const_static_mutex() {
        assert_eq!(*GLOBAL.lock(), 7);
        *GLOBAL.lock() += 1;
        assert_eq!(*GLOBAL.lock(), 8);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
