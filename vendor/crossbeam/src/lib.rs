//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the one facility the repo uses: [`channel::unbounded`], an MPMC channel
//! whose [`channel::Sender`]/[`channel::Receiver`] are both `Send + Sync +
//! Clone`, with disconnect semantics matching crossbeam (recv fails once
//! the queue is empty and every sender is gone; send fails once every
//! receiver is gone).

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// gives the unsent message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking while the channel is empty and at
        /// least one sender remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.chan
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            let t = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn cross_thread_order() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
