//! # aurora-pcie
//!
//! PCIe Gen3 x16 link and system-topology model of the NEC SX-Aurora
//! TSUBASA A300-8 (paper Fig. 3): two Xeon sockets joined by UPI, one
//! PCIe switch per socket, four Vector Engines behind each switch.
//!
//! The link model captures the mechanisms the paper's bandwidth analysis
//! rests on (§V): 256-byte maximum TLP payload, protocol overhead capping
//! effective bandwidth at ~13.4 GiB/s (91 % of 14.7 GiB/s raw), posted
//! writes vs. non-posted reads, and per-direction wire occupancy so that
//! concurrent transfers contend.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod link;
pub mod topology;

pub use link::{Direction, LinkConfig, PcieLink};
pub use topology::Topology;
