//! The A300-8 system topology (paper Fig. 3).
//!
//! Two Xeon Gold 6126 sockets connected by UPI; each socket owns one PCIe
//! switch with four Vector Engines behind it. A process pinned to socket
//! `s` reaching VE `v` crosses UPI iff the VE hangs off the other
//! socket's switch — which is what adds "up to 1 µs" to the Fig. 9 DMA
//! measurement when offloading from the second CPU (§V-A).

use crate::link::PcieLink;
use aurora_sim_core::{calib, SimTime};
use std::sync::Arc;

/// Static topology of a simulated Aurora machine.
#[derive(Debug)]
pub struct Topology {
    sockets: u8,
    links: Vec<Arc<PcieLink>>,
    /// `ve_socket[v]` = socket whose switch hosts VE `v`.
    ve_socket: Vec<u8>,
}

impl Topology {
    /// The A300-8 of Table III: 2 sockets, 8 VEs, VEs 0–3 on socket 0's
    /// switch, VEs 4–7 on socket 1's.
    pub fn a300_8() -> Self {
        Self::custom(2, &[0, 0, 0, 0, 1, 1, 1, 1])
    }

    /// A one-socket machine with `ves` Vector Engines (useful for tests).
    pub fn single_socket(ves: u8) -> Self {
        Self::custom(1, &vec![0u8; ves as usize])
    }

    /// Arbitrary topology: `ve_socket[v]` gives the hosting socket.
    pub fn custom(sockets: u8, ve_socket: &[u8]) -> Self {
        assert!(sockets > 0);
        assert!(
            ve_socket.iter().all(|&s| s < sockets),
            "VE attached to nonexistent socket"
        );
        Self {
            sockets,
            links: ve_socket
                .iter()
                .map(|_| Arc::new(PcieLink::default()))
                .collect(),
            ve_socket: ve_socket.to_vec(),
        }
    }

    /// Number of CPU sockets.
    pub fn sockets(&self) -> u8 {
        self.sockets
    }

    /// Number of Vector Engines.
    pub fn ves(&self) -> u8 {
        self.links.len() as u8
    }

    /// The PCIe link of VE `ve`.
    pub fn link(&self, ve: u8) -> &Arc<PcieLink> {
        &self.links[ve as usize]
    }

    /// Socket hosting VE `ve`.
    pub fn ve_socket(&self, ve: u8) -> u8 {
        self.ve_socket[ve as usize]
    }

    /// Number of UPI hops between a process on `socket` and VE `ve`
    /// (0 or 1 on the A300-8).
    pub fn upi_hops(&self, socket: u8, ve: u8) -> u32 {
        u32::from(self.ve_socket(ve) != socket)
    }

    /// Extra one-way latency for the socket/VE pairing.
    pub fn extra_one_way(&self, socket: u8, ve: u8) -> SimTime {
        calib::UPI_HOP * u64::from(self.upi_hops(socket, ve))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a300_8_shape() {
        let t = Topology::a300_8();
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.ves(), 8);
        assert_eq!(t.ve_socket(0), 0);
        assert_eq!(t.ve_socket(3), 0);
        assert_eq!(t.ve_socket(4), 1);
        assert_eq!(t.ve_socket(7), 1);
    }

    #[test]
    fn upi_hop_only_across_sockets() {
        let t = Topology::a300_8();
        assert_eq!(t.upi_hops(0, 0), 0);
        assert_eq!(t.upi_hops(1, 0), 1);
        assert_eq!(t.upi_hops(0, 7), 1);
        assert_eq!(t.upi_hops(1, 7), 0);
        assert_eq!(t.extra_one_way(0, 0), SimTime::ZERO);
        assert_eq!(t.extra_one_way(1, 0), calib::UPI_HOP);
    }

    #[test]
    fn links_are_per_ve() {
        let t = Topology::a300_8();
        let a = Arc::as_ptr(t.link(0));
        let b = Arc::as_ptr(t.link(1));
        assert_ne!(a, b);
    }

    #[test]
    fn single_socket_never_crosses_upi() {
        let t = Topology::single_socket(4);
        for ve in 0..4 {
            assert_eq!(t.upi_hops(0, ve), 0);
        }
    }

    #[test]
    #[should_panic(expected = "nonexistent socket")]
    fn invalid_topology_rejected() {
        Topology::custom(1, &[0, 1]);
    }
}
