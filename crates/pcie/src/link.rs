//! The per-VE PCIe link: latency, TLP mechanics and wire occupancy.

use aurora_sim_core::calib;
use aurora_sim_core::resource::Reservation;
use aurora_sim_core::{FaultPlan, SimTime, Timeline};
use std::sync::{Arc, OnceLock};

/// Transfer direction over a VE's PCIe link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host memory → VE memory ("downstream").
    Vh2Ve,
    /// VE memory → host memory ("upstream").
    Ve2Vh,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Vh2Ve => Direction::Ve2Vh,
            Direction::Ve2Vh => Direction::Vh2Ve,
        }
    }
}

/// Static parameters of one PCIe Gen3 x16 link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// One-way propagation + switching latency.
    pub one_way: SimTime,
    /// Effective data bandwidth (payload bytes per second) in GiB/s.
    pub effective_gib_s: f64,
    /// Maximum TLP payload in bytes (256 for the NEC VE).
    pub max_payload: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            one_way: calib::PCIE_ONE_WAY,
            effective_gib_s: calib::PCIE_EFFECTIVE_GIB_S,
            max_payload: calib::PCIE_MAX_PAYLOAD,
        }
    }
}

/// One VE's PCIe connection: a pair of directed, contended wires.
#[derive(Clone, Debug)]
pub struct PcieLink {
    cfg: LinkConfig,
    down: Timeline,
    up: Timeline,
    /// Armed fault plan and the actor id its draws are keyed on.
    /// Shared by clones (the machine hands out `Arc<PcieLink>`, and the
    /// DMA engines hold the same `Arc`), write-once per link.
    faults: Arc<OnceLock<(Arc<FaultPlan>, u16)>>,
}

impl Default for PcieLink {
    fn default() -> Self {
        Self::new(LinkConfig::default())
    }
}

impl PcieLink {
    /// Build a link with the given configuration.
    pub fn new(cfg: LinkConfig) -> Self {
        Self {
            cfg,
            down: Timeline::new(),
            up: Timeline::new(),
            faults: Arc::new(OnceLock::new()),
        }
    }

    /// Link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Arm this link (and everything that shares it, e.g. the VE's user
    /// DMA engines) with a deterministic fault plan; `actor` keys the
    /// plan's draws for this link. Write-once: re-arming is ignored so a
    /// plan cannot change mid-run. An all-zero plan injects nothing.
    pub fn arm_faults(&self, plan: Arc<FaultPlan>, actor: u16) {
        let _ = self.faults.set((plan, actor));
    }

    /// The armed fault plan and actor id, if any.
    pub fn faults(&self) -> Option<&(Arc<FaultPlan>, u16)> {
        self.faults.get()
    }

    /// One-way latency.
    pub fn one_way(&self) -> SimTime {
        self.cfg.one_way
    }

    /// Round-trip latency (a non-posted read's floor).
    pub fn round_trip(&self) -> SimTime {
        self.cfg.one_way * 2
    }

    /// Number of TLPs a payload of `bytes` is segmented into.
    pub fn tlps(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.cfg.max_payload)
        }
    }

    /// Pure wire time of `bytes` at the effective (overhead-adjusted)
    /// rate.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        aurora_sim_core::time::time_at_gib_per_sec(bytes, self.cfg.effective_gib_s)
    }

    /// Occupy the wire in `dir` for a payload of `bytes`, starting no
    /// earlier than `earliest`. Returns the service window; concurrent
    /// users of the same direction are serialized FIFO.
    pub fn occupy(&self, dir: Direction, earliest: SimTime, bytes: u64) -> Reservation {
        self.reserve(dir, earliest, self.wire_time(bytes), bytes)
    }

    /// Occupy the wire in `dir` for an explicitly given duration — used
    /// by engines whose streaming rate is below the link's effective rate
    /// (the engine, not the wire, is the bottleneck, but the wire is held
    /// for the duration either way). `bytes` is the payload moved during
    /// the window (occupancy telemetry).
    pub fn occupy_for(
        &self,
        dir: Direction,
        earliest: SimTime,
        duration: SimTime,
        bytes: u64,
    ) -> Reservation {
        self.reserve(dir, earliest, duration, bytes)
    }

    fn reserve(
        &self,
        dir: Direction,
        earliest: SimTime,
        duration: SimTime,
        bytes: u64,
    ) -> Reservation {
        let (tl, category) = match dir {
            Direction::Vh2Ve => (&self.down, "pcie.down"),
            Direction::Ve2Vh => (&self.up, "pcie.up"),
        };
        // Injected timing faults (TLP replays, delay spikes) stretch the
        // wire occupancy of this transfer.
        let duration = match self.faults.get() {
            Some((plan, actor)) => duration + plan.link_delay(*actor, duration, earliest),
            None => duration,
        };
        let res = tl.reserve(earliest, duration);
        aurora_sim_core::trace::record(category, bytes, res.start, res.end);
        res
    }

    /// Total busy time of a direction (utilization accounting).
    pub fn busy(&self, dir: Direction) -> SimTime {
        match dir {
            Direction::Vh2Ve => self.down.total_busy(),
            Direction::Ve2Vh => self.up.total_busy(),
        }
    }

    /// Reset occupancy accounting (benchmark harness reuse).
    pub fn reset(&self) {
        self.down.reset();
        self.up.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_constants() {
        let l = PcieLink::default();
        assert_eq!(l.one_way(), SimTime::from_ns(600));
        assert_eq!(l.round_trip(), SimTime::from_ns(1200), "1.2 us PCIe RTT");
        assert_eq!(l.config().max_payload, 256);
    }

    #[test]
    fn tlp_segmentation() {
        let l = PcieLink::default();
        assert_eq!(l.tlps(0), 0);
        assert_eq!(l.tlps(1), 1);
        assert_eq!(l.tlps(256), 1);
        assert_eq!(l.tlps(257), 2);
        assert_eq!(l.tlps(1024), 4);
    }

    #[test]
    fn wire_time_matches_effective_rate() {
        let l = PcieLink::default();
        let t = l.wire_time(134 * (1 << 30) / 10); // 13.4 GiB
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01, "t = {t}");
    }

    #[test]
    fn directions_are_independent_wires() {
        let l = PcieLink::default();
        let a = l.occupy(Direction::Vh2Ve, SimTime::ZERO, 1 << 20);
        let b = l.occupy(Direction::Ve2Vh, SimTime::ZERO, 1 << 20);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO, "full duplex");
        let c = l.occupy(Direction::Vh2Ve, SimTime::ZERO, 1 << 20);
        assert_eq!(c.start, a.end, "same direction contends");
    }

    #[test]
    fn utilization_accounting() {
        let l = PcieLink::default();
        l.occupy(Direction::Vh2Ve, SimTime::ZERO, 1024);
        assert_eq!(l.busy(Direction::Vh2Ve), l.wire_time(1024));
        assert_eq!(l.busy(Direction::Ve2Vh), SimTime::ZERO);
        l.reset();
        assert_eq!(l.busy(Direction::Vh2Ve), SimTime::ZERO);
    }

    #[test]
    fn reverse_direction() {
        assert_eq!(Direction::Vh2Ve.reverse(), Direction::Ve2Vh);
        assert_eq!(Direction::Ve2Vh.reverse(), Direction::Vh2Ve);
    }
}
