//! The per-VE VEOS daemon: process table + privileged DMA manager.

use crate::dma_manager::DmaManager;
use crate::process::VeProcess;
use aurora_ve::VeDevice;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One VEOS instance ("each VE has its own instance of VEOS", §I-B).
#[derive(Debug)]
pub struct Veos {
    ve: Arc<VeDevice>,
    dma: DmaManager,
    procs: Mutex<HashMap<u32, Arc<VeProcess>>>,
    next_pid: Mutex<u32>,
}

impl Veos {
    /// Start a VEOS instance for `ve`.
    pub fn new(ve: Arc<VeDevice>, improved_dma: bool) -> Arc<Self> {
        Arc::new(Self {
            ve,
            dma: DmaManager::new(improved_dma),
            procs: Mutex::new(HashMap::new()),
            next_pid: Mutex::new(1),
        })
    }

    /// The device this instance manages.
    pub fn ve(&self) -> &Arc<VeDevice> {
        &self.ve
    }

    /// The privileged DMA manager.
    pub fn dma(&self) -> &DmaManager {
        &self.dma
    }

    /// Create a VE process (what `veo_proc_create` triggers).
    pub fn create_process(&self) -> Arc<VeProcess> {
        let pid = {
            let mut next = self.next_pid.lock();
            let pid = *next;
            *next += 1;
            pid
        };
        let proc = VeProcess::new(pid, Arc::clone(&self.ve));
        self.procs.lock().insert(pid, Arc::clone(&proc));
        proc
    }

    /// Destroy a VE process (what `veo_proc_destroy` triggers).
    pub fn destroy_process(&self, pid: u32) -> bool {
        self.procs.lock().remove(&pid).is_some()
    }

    /// Look up a live process.
    pub fn process(&self, pid: u32) -> Option<Arc<VeProcess>> {
        self.procs.lock().get(&pid).cloned()
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.procs.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_lifecycle() {
        let veos = Veos::new(VeDevice::standalone(0, 1 << 20), true);
        let p1 = veos.create_process();
        let p2 = veos.create_process();
        assert_ne!(p1.pid(), p2.pid());
        assert_eq!(veos.process_count(), 2);
        assert!(veos.process(p1.pid()).is_some());
        assert!(veos.destroy_process(p1.pid()));
        assert!(!veos.destroy_process(p1.pid()), "already gone");
        assert_eq!(veos.process_count(), 1);
    }

    #[test]
    fn dma_manager_mode() {
        let improved = Veos::new(VeDevice::standalone(0, 1 << 20), true);
        assert!(improved.dma().improved());
        let classic = Veos::new(VeDevice::standalone(1, 1 << 20), false);
        assert!(!classic.dma().improved());
    }
}
