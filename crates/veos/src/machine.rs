//! The assembled simulated machine.

use crate::daemon::Veos;
use aurora_mem::{MemError, PageSize, PageTable, RangeAllocator, Region, ShmManager, VhAddr};
use aurora_pcie::Topology;
use aurora_ve::VeDevice;
use parking_lot::Mutex;
use std::sync::Arc;

/// Base of VH process virtual addresses in the simulation.
pub const VH_VADDR_BASE: u64 = 0x7000_0000_0000;

/// Configuration of a simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Page size of VH-side allocations (the huge-pages knob, §V-B).
    pub vh_page: PageSize,
    /// Use the improved (1.3.2-4dma) privileged DMA manager (§III-D).
    pub improved_dma: bool,
    /// Simulated HBM per VE in bytes (allocator bound, lazily backed).
    pub hbm_bytes: u64,
    /// Simulated VH memory per socket in bytes.
    pub vh_bytes: u64,
}

impl Default for MachineConfig {
    /// The paper's benchmark configuration (Table III): huge pages on the
    /// VH, improved DMA manager.
    fn default() -> Self {
        Self {
            vh_page: PageSize::Huge2M,
            improved_dma: true,
            hbm_bytes: 256 << 20,
            vh_bytes: 256 << 20,
        }
    }
}

/// One socket's VH process memory: region + allocator + page table.
#[derive(Debug)]
pub struct VhMemory {
    socket: u8,
    region: Arc<Region>,
    alloc: Mutex<RangeAllocator>,
    page_table: Mutex<PageTable>,
    page: PageSize,
}

impl VhMemory {
    /// Build VH memory of `bytes` for `socket` with the given page size.
    pub fn new(socket: u8, bytes: u64, page: PageSize) -> Arc<Self> {
        Arc::new(Self {
            socket,
            region: Region::new(bytes),
            alloc: Mutex::new(RangeAllocator::new(bytes)),
            page_table: Mutex::new(PageTable::new(page)),
            page,
        })
    }

    /// Socket index.
    pub fn socket(&self) -> u8 {
        self.socket
    }

    /// Backing region.
    pub fn region(&self) -> &Arc<Region> {
        &self.region
    }

    /// Configured page size.
    pub fn page_size(&self) -> PageSize {
        self.page
    }

    /// Allocate `len` bytes of host memory; returns its VH virtual
    /// address. Pages are mapped eagerly (identity inside the region).
    pub fn alloc(&self, len: u64) -> Result<VhAddr, MemError> {
        let p = self.page.bytes();
        // Allocate page-aligned so the mapping is page-granular.
        let off = self.alloc.lock().alloc(len.max(1).next_multiple_of(p), p)?;
        let vaddr = VH_VADDR_BASE + off;
        self.page_table
            .lock()
            .map_range(vaddr, off, len.max(1).next_multiple_of(p))?;
        Ok(VhAddr(vaddr))
    }

    /// Free a VH allocation.
    pub fn free(&self, addr: VhAddr) -> Result<(), MemError> {
        let off = addr.get() - VH_VADDR_BASE;
        let len = self
            .alloc
            .lock()
            .allocation_len(off)
            .ok_or(MemError::BadFree { offset: off })?;
        self.page_table.lock().unmap_range(addr.get(), len);
        self.alloc.lock().free(off)
    }

    /// Translate a VH virtual address to its region offset.
    pub fn translate(&self, addr: VhAddr) -> Result<u64, MemError> {
        self.page_table.lock().translate(addr.get())
    }

    /// Copy host data into the simulated VH memory at `addr` (what a VH
    /// program writing its own buffers does; no virtual cost — local).
    pub fn write(&self, addr: VhAddr, data: &[u8]) -> Result<(), MemError> {
        let off = self.translate(addr)?;
        self.region.write(off, data)
    }

    /// Copy data out of the simulated VH memory at `addr`.
    pub fn read(&self, addr: VhAddr, out: &mut [u8]) -> Result<(), MemError> {
        let off = self.translate(addr)?;
        self.region.read(off, out)
    }
}

/// The simulated SX-Aurora machine.
#[derive(Debug)]
pub struct AuroraMachine {
    config: MachineConfig,
    topology: Topology,
    ves: Vec<Arc<VeDevice>>,
    vh: Vec<Arc<VhMemory>>,
    shm: Arc<ShmManager>,
    veos: Vec<Arc<Veos>>,
}

impl AuroraMachine {
    /// The A300-8 of Table III: 2 sockets, 8 VEs.
    pub fn a300_8(config: MachineConfig) -> Arc<Self> {
        Self::build(Topology::a300_8(), config)
    }

    /// A small machine for tests: one socket, `ves` VEs.
    pub fn small(ves: u8, config: MachineConfig) -> Arc<Self> {
        Self::build(Topology::single_socket(ves), config)
    }

    fn build(topology: Topology, config: MachineConfig) -> Arc<Self> {
        let ves: Vec<Arc<VeDevice>> = (0..topology.ves())
            .map(|v| {
                VeDevice::new(
                    v,
                    topology.ve_socket(v),
                    config.hbm_bytes,
                    Arc::clone(topology.link(v)),
                )
            })
            .collect();
        let vh: Vec<Arc<VhMemory>> = (0..topology.sockets())
            .map(|s| VhMemory::new(s, config.vh_bytes, config.vh_page))
            .collect();
        let veos: Vec<Arc<Veos>> = ves
            .iter()
            .map(|ve| Veos::new(Arc::clone(ve), config.improved_dma))
            .collect();
        Arc::new(Self {
            config,
            topology,
            ves,
            vh,
            shm: Arc::new(ShmManager::new()),
            veos,
        })
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// System topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// All VE devices.
    pub fn ves(&self) -> &[Arc<VeDevice>] {
        &self.ves
    }

    /// VE device `v`.
    pub fn ve(&self, v: u8) -> &Arc<VeDevice> {
        &self.ves[v as usize]
    }

    /// VH memory of `socket`.
    pub fn vh(&self, socket: u8) -> &Arc<VhMemory> {
        &self.vh[socket as usize]
    }

    /// The machine's SysV shm registry.
    pub fn shm(&self) -> &Arc<ShmManager> {
        &self.shm
    }

    /// The VEOS instance of VE `v`.
    pub fn veos(&self, v: u8) -> &Arc<Veos> {
        &self.veos[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a300_8_assembly() {
        let m = AuroraMachine::a300_8(MachineConfig {
            hbm_bytes: 1 << 20,
            vh_bytes: 1 << 20,
            ..Default::default()
        });
        assert_eq!(m.ves().len(), 8);
        assert_eq!(m.topology().sockets(), 2);
        assert_eq!(m.ve(5).socket(), 1);
        assert_eq!(m.vh(0).socket(), 0);
    }

    #[test]
    fn vh_alloc_write_read() {
        let m = AuroraMachine::small(1, MachineConfig::default());
        let vh = m.vh(0);
        let a = vh.alloc(1000).unwrap();
        assert!(a.get() >= VH_VADDR_BASE);
        vh.write(a, b"host buffer").unwrap();
        let mut out = [0u8; 11];
        vh.read(a, &mut out).unwrap();
        assert_eq!(&out, b"host buffer");
        vh.free(a).unwrap();
        assert!(vh.translate(a).is_err(), "unmapped after free");
    }

    #[test]
    fn vh_allocations_are_page_aligned() {
        let m = AuroraMachine::small(1, MachineConfig::default());
        let vh = m.vh(0);
        let a = vh.alloc(10).unwrap();
        assert_eq!(a.get() % PageSize::Huge2M.bytes(), 0);
    }

    #[test]
    fn small_pages_config() {
        let m = AuroraMachine::small(
            1,
            MachineConfig {
                vh_page: PageSize::Small4K,
                ..Default::default()
            },
        );
        assert_eq!(m.vh(0).page_size(), PageSize::Small4K);
        let a = m.vh(0).alloc(10).unwrap();
        assert_eq!(a.get() % 4096, 0);
    }

    #[test]
    fn bad_free_rejected() {
        let m = AuroraMachine::small(1, MachineConfig::default());
        assert!(m.vh(0).free(VhAddr(VH_VADDR_BASE + 12345)).is_err());
    }
}
