//! Reverse syscall offloading (§I-B).
//!
//! VE programs have no kernel underneath; every system call is shipped to
//! the host and "executed in the user's context and under Linux" by the
//! VE process's pseudo-process. This module models that path: a small
//! syscall surface with a per-call round-trip cost. It is also the
//! substrate for the VHcall extension (synchronous VE→VH calls with
//! syscall semantics) exercised by the `reverse_offload` example.
//!
//! The cost uses the same three-component software path as a VEO
//! operation; the paper's motivation for *not* using the TCP/IP backend
//! on this platform is exactly that every socket operation would pay it.

use aurora_sim_core::{calib, Clock, SimTime};
use parking_lot::Mutex;

/// Cost of one reverse-offloaded syscall round trip: the same software
/// hop a small VEO write pays (pseudo-process + VEOS + kernel modules).
pub const SYSCALL_ROUND_TRIP: SimTime = calib::VEO_WRITE_BASE;

/// A syscall issued by VE code.
#[derive(Clone, Debug, PartialEq)]
pub enum Syscall {
    /// `write(2)` to a file descriptor.
    Write {
        /// Target descriptor (1 = stdout, 2 = stderr).
        fd: i32,
        /// The data.
        data: Vec<u8>,
    },
    /// `clock_gettime(2)` — returns the *host's* virtual clock in ps.
    ClockGettime,
    /// `getpid(2)` of the pseudo-process.
    GetPid,
}

/// Result of a reverse-offloaded syscall.
#[derive(Clone, Debug, PartialEq)]
pub enum SyscallResult {
    /// Bytes written.
    Written(usize),
    /// Time in picoseconds.
    Time(u64),
    /// A pid.
    Pid(u32),
}

/// The host-side pseudo-process serving one VE process's syscalls.
#[derive(Debug)]
pub struct PseudoProcess {
    pid: u32,
    host_clock: Clock,
    /// Captured `write` output (instead of actually writing to the
    /// terminal), so tests and examples can inspect it.
    output: Mutex<Vec<(i32, Vec<u8>)>>,
}

impl PseudoProcess {
    /// Pseudo-process with the given host pid and host clock.
    pub fn new(pid: u32, host_clock: Clock) -> Self {
        Self {
            pid,
            host_clock,
            output: Mutex::new(Vec::new()),
        }
    }

    /// Serve one syscall from the VE process whose clock is `ve_clock`.
    ///
    /// Synchronous with syscall semantics: the VE side blocks for the
    /// full round trip; the host clock joins the request time.
    pub fn serve(&self, ve_clock: &Clock, call: Syscall) -> SyscallResult {
        // Request travels to the host...
        let arrive = ve_clock.now() + SYSCALL_ROUND_TRIP / 2;
        self.host_clock.join(arrive);
        let result = match call {
            Syscall::Write { fd, data } => {
                let n = data.len();
                self.output.lock().push((fd, data));
                SyscallResult::Written(n)
            }
            Syscall::ClockGettime => SyscallResult::Time(self.host_clock.now().as_ps()),
            Syscall::GetPid => SyscallResult::Pid(self.pid),
        };
        // ...and the response back.
        ve_clock.advance(SYSCALL_ROUND_TRIP);
        result
    }

    /// Captured `write` output: `(fd, bytes)` in call order.
    pub fn captured_output(&self) -> Vec<(i32, Vec<u8>)> {
        self.output.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_is_captured_and_costed() {
        let pp = PseudoProcess::new(4242, Clock::new());
        let ve_clock = Clock::new();
        let r = pp.serve(
            &ve_clock,
            Syscall::Write {
                fd: 1,
                data: b"hello from the VE".to_vec(),
            },
        );
        assert_eq!(r, SyscallResult::Written(17));
        assert_eq!(ve_clock.now(), SYSCALL_ROUND_TRIP);
        assert_eq!(
            pp.captured_output(),
            vec![(1, b"hello from the VE".to_vec())]
        );
    }

    #[test]
    fn getpid_returns_pseudo_process_pid() {
        let pp = PseudoProcess::new(7, Clock::new());
        let c = Clock::new();
        assert_eq!(pp.serve(&c, Syscall::GetPid), SyscallResult::Pid(7));
    }

    #[test]
    fn clock_gettime_reflects_request_arrival() {
        let host = Clock::new();
        let pp = PseudoProcess::new(1, host.clone());
        let ve = Clock::starting_at(SimTime::from_us(100));
        let r = pp.serve(&ve, Syscall::ClockGettime);
        match r {
            SyscallResult::Time(ps) => {
                let t = SimTime::from_ps(ps);
                assert!(t >= SimTime::from_us(100), "host joined request time");
            }
            other => panic!("unexpected result {other:?}"),
        }
        assert_eq!(ve.now(), SimTime::from_us(100) + SYSCALL_ROUND_TRIP);
    }

    #[test]
    fn syscalls_are_expensive() {
        // The reason TCP/IP over reverse-offloaded sockets is a bad
        // backend for this platform (§III-A).
        assert!(SYSCALL_ROUND_TRIP >= SimTime::from_us(50));
    }
}
