//! VE processes and their VEMVA address spaces.

use aurora_mem::{MemError, PageSize, PageTable, Region, VeAddr};
use aurora_sim_core::Clock;
use aurora_ve::VeDevice;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Base of VE process virtual addresses (VEMVA), as on real VEs.
pub const VEMVA_BASE: u64 = 0x6000_0000_0000;

/// A process running on a Vector Engine.
///
/// The VE runs no OS: this object *is* the VEOS-side process image —
/// address space, allocations, and the process's virtual clock. The code
/// of the process executes on host threads spawned by the VEO layer.
#[derive(Debug)]
pub struct VeProcess {
    pid: u32,
    ve: Arc<VeDevice>,
    clock: Clock,
    page_table: Mutex<PageTable>,
    /// vaddr → (hbm offset, len) for live allocations.
    allocations: Mutex<HashMap<u64, (u64, u64)>>,
}

impl VeProcess {
    pub(crate) fn new(pid: u32, ve: Arc<VeDevice>) -> Arc<Self> {
        Arc::new(Self {
            pid,
            ve,
            clock: Clock::new(),
            // VE pages are large (64 MiB native); translation cost on the
            // VE side is negligible next to the VH side's.
            page_table: Mutex::new(PageTable::new(PageSize::Huge64M)),
            allocations: Mutex::new(HashMap::new()),
        })
    }

    /// Process id.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// The device this process runs on.
    pub fn ve(&self) -> &Arc<VeDevice> {
        &self.ve
    }

    /// The process's virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Allocate `len` bytes of VE memory; returns the VEMVA.
    ///
    /// The mapping is VEMVA = base + HBM offset, so translation is exact
    /// but still goes through the page table (and is checked).
    pub fn alloc_mem(&self, len: u64) -> Result<VeAddr, MemError> {
        let p = self.page_table.lock().page_size();
        let hbm_off = self.ve.alloc(len.max(1), 8)?;
        let vaddr = VEMVA_BASE + hbm_off;
        // Map the pages this allocation touches (identity + base). Page
        // table entries may already exist from neighbouring allocations —
        // identical mappings, so overwriting is harmless.
        let first_page = vaddr / p.bytes() * p.bytes();
        let last_end = (vaddr + len.max(1)).next_multiple_of(p.bytes());
        self.page_table.lock().map_range(
            first_page,
            first_page - VEMVA_BASE,
            last_end - first_page,
        )?;
        self.allocations.lock().insert(vaddr, (hbm_off, len.max(1)));
        Ok(VeAddr(vaddr))
    }

    /// Free a VE allocation.
    pub fn free_mem(&self, addr: VeAddr) -> Result<(), MemError> {
        let (hbm_off, _len) = self
            .allocations
            .lock()
            .remove(&addr.get())
            .ok_or(MemError::BadFree { offset: addr.get() })?;
        // Pages stay mapped (other allocations may share them); the HBM
        // range returns to the device allocator.
        self.ve.free(hbm_off)
    }

    /// Translate a VEMVA to its HBM offset, checking `len` stays within
    /// the address space.
    pub fn translate(&self, addr: VeAddr, len: u64) -> Result<u64, MemError> {
        let off = self.page_table.lock().translate(addr.get())?;
        if off + len > self.ve.hbm().len() {
            return Err(MemError::OutOfBounds {
                offset: off,
                len,
                size: self.ve.hbm().len(),
            });
        }
        Ok(off)
    }

    /// The backing device memory (for code running "on the VE").
    pub fn hbm(&self) -> &Arc<Region> {
        self.ve.hbm()
    }

    /// Write bytes into process memory at `addr` (local access).
    pub fn write(&self, addr: VeAddr, data: &[u8]) -> Result<(), MemError> {
        let off = self.translate(addr, data.len() as u64)?;
        self.hbm().write(off, data)
    }

    /// Read bytes from process memory at `addr` (local access).
    pub fn read(&self, addr: VeAddr, out: &mut [u8]) -> Result<(), MemError> {
        let off = self.translate(addr, out.len() as u64)?;
        self.hbm().read(off, out)
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocations.lock().len()
    }

    /// Release-store a 64-bit protocol flag at `addr` (8-aligned VEMVA).
    pub fn store_flag(&self, addr: VeAddr, value: u64) -> Result<(), MemError> {
        let off = self.translate(addr, 8)?;
        self.hbm().store_u64(off, value)
    }

    /// Acquire-load a 64-bit protocol flag at `addr` (8-aligned VEMVA).
    pub fn load_flag(&self, addr: VeAddr) -> Result<u64, MemError> {
        let off = self.translate(addr, 8)?;
        self.hbm().load_u64(off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc() -> Arc<VeProcess> {
        VeProcess::new(1, VeDevice::standalone(0, 8 << 20))
    }

    #[test]
    fn alloc_translate_roundtrip() {
        let p = proc();
        let a = p.alloc_mem(4096).unwrap();
        assert!(a.get() >= VEMVA_BASE);
        let off = p.translate(a, 4096).unwrap();
        assert_eq!(off, a.get() - VEMVA_BASE);
    }

    #[test]
    fn write_read_through_vemva() {
        let p = proc();
        let a = p.alloc_mem(64).unwrap();
        p.write(a, b"ve local data").unwrap();
        let mut out = [0u8; 13];
        p.read(a, &mut out).unwrap();
        assert_eq!(&out, b"ve local data");
    }

    #[test]
    fn free_returns_memory() {
        let p = proc();
        let before = p.ve().allocated_bytes();
        let a = p.alloc_mem(1000).unwrap();
        assert!(p.ve().allocated_bytes() > before);
        p.free_mem(a).unwrap();
        assert_eq!(p.ve().allocated_bytes(), before);
        assert!(p.free_mem(a).is_err(), "double free");
    }

    #[test]
    fn translate_checks_bounds() {
        let p = proc();
        let a = p.alloc_mem(64).unwrap();
        assert!(p.translate(a, 16 << 20).is_err());
        assert!(p.translate(VeAddr(0x123), 8).is_err(), "unmapped VEMVA");
    }

    #[test]
    fn allocations_do_not_alias() {
        let p = proc();
        let a = p.alloc_mem(256).unwrap();
        let b = p.alloc_mem(256).unwrap();
        p.write(a, &[1u8; 256]).unwrap();
        p.write(b, &[2u8; 256]).unwrap();
        let mut out = [0u8; 256];
        p.read(a, &mut out).unwrap();
        assert_eq!(out, [1u8; 256]);
    }
}
