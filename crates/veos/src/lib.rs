//! # veos-sim
//!
//! Simulated Vector Engine Operating System (§I-B). The VEs run no OS;
//! VEOS lives on the host and provides:
//!
//! * process management — [`process::VeProcess`] with a VEMVA address
//!   space over the VE's HBM ([`daemon::Veos::create_process`]);
//! * memory management — `alloc_mem`/`free_mem` mapping pages;
//! * the **privileged DMA manager** ([`dma_manager::DmaManager`]) that
//!   VEO's `read_mem`/`write_mem` go through: absolute addresses,
//!   on-the-fly virtual→physical translation, and the three-component
//!   software hop (pseudo-process → VEOS → kernel modules) that makes the
//!   paper's VEO-based message latency ~85–131 µs. The *improved*
//!   (1.3.2-4dma) mode overlaps bulk translations, the *classic* mode
//!   pays per page — the ablation of §III-D;
//! * reverse syscall offloading ([`syscall`]) — VE code executing Linux
//!   system calls in its host pseudo-process.
//!
//! [`machine::AuroraMachine`] assembles the whole A300-8: topology, VE
//! devices, per-socket VH memory, SysV shm, one VEOS instance per VE.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod daemon;
pub mod dma_manager;
pub mod machine;
pub mod process;
pub mod syscall;

pub use daemon::Veos;
pub use dma_manager::{DmaManager, HostSlice};
pub use machine::{AuroraMachine, MachineConfig, VhMemory};
pub use process::VeProcess;
