//! The privileged ("system") DMA manager inside VEOS (§I-B, §III-D).
//!
//! VEO's `read_mem`/`write_mem` land here. The engine is shared by all
//! cores of one VE and driven with *absolute* addresses: every transfer
//! pays (a) the three-component software hop — pseudo-process → VEOS →
//! kernel modules — reflected in the large per-operation base cost, and
//! (b) on-the-fly virtual→physical translation of the VH buffer, page by
//! page. The *improved* manager (VEOS 1.3.2-4dma) performs bulk
//! translations overlapped with descriptor generation and the DMA itself,
//! shrinking (b) to a residual; the *classic* manager pays it in full —
//! which is the huge-page/manager ablation of the evaluation.

use crate::machine::VhMemory;
use crate::process::VeProcess;
use aurora_mem::{MemError, VeAddr, VhAddr};
use aurora_pcie::Direction;
use aurora_sim_core::{calib, Clock, SimTime, Timeline};
use std::sync::Arc;

/// A VH-side buffer handed to the DMA manager.
#[derive(Clone, Debug)]
pub struct HostSlice {
    /// The socket memory the buffer lives in.
    pub vh: Arc<VhMemory>,
    /// VH virtual address of the buffer start.
    pub vaddr: VhAddr,
}

/// The privileged DMA manager of one VEOS instance.
#[derive(Debug)]
pub struct DmaManager {
    improved: bool,
    engine: Timeline,
}

impl DmaManager {
    /// Build a manager; `improved` selects the 1.3.2-4dma behaviour.
    pub fn new(improved: bool) -> Self {
        Self {
            improved,
            engine: Timeline::new(),
        }
    }

    /// Whether the improved (bulk-translation, overlapped) manager is in
    /// use.
    pub fn improved(&self) -> bool {
        self.improved
    }

    fn per_page(&self) -> SimTime {
        if self.improved {
            calib::VEOS_PAGE_COST_IMPROVED
        } else {
            calib::VEOS_PAGE_COST_CLASSIC
        }
    }

    /// `veo_write_mem`: VH buffer → VE process memory. Advances `clock`
    /// (the calling VH process) to completion and returns that time.
    pub fn write_ve(
        &self,
        clock: &Clock,
        host: &HostSlice,
        proc: &VeProcess,
        dst: VeAddr,
        len: u64,
    ) -> Result<SimTime, MemError> {
        self.transfer(clock, host, proc, dst, len, true)
    }

    /// `veo_read_mem`: VE process memory → VH buffer.
    pub fn read_ve(
        &self,
        clock: &Clock,
        host: &HostSlice,
        proc: &VeProcess,
        src: VeAddr,
        len: u64,
    ) -> Result<SimTime, MemError> {
        self.transfer(clock, host, proc, src, len, false)
    }

    /// Two-phase variant: reserve engine + wire for a transfer of `len`
    /// bytes and return the completion time **without moving data**.
    ///
    /// The paper's protocols need a notification flag whose *value*
    /// encodes the virtual time at which it lands in VE memory; a caller
    /// uses `quote_write` to learn that time, embeds it, and performs the
    /// raw copy itself (payload first, flag last with Release ordering).
    pub fn quote_write(
        &self,
        clock: &Clock,
        host: &HostSlice,
        proc: &VeProcess,
        len: u64,
    ) -> Result<SimTime, MemError> {
        self.quote(clock, host, proc, len, true)
    }

    fn quote(
        &self,
        clock: &Clock,
        host: &HostSlice,
        proc: &VeProcess,
        len: u64,
        write: bool,
    ) -> Result<SimTime, MemError> {
        let model = calib::veo_transfer(write, host.vh.page_size().bytes(), self.improved);
        let pages = host.vh.page_size().pages_touched(host.vaddr.get(), len);
        let setup = model.setup + self.per_page() * pages;
        let issue = self.engine.reserve(clock.now(), setup);
        let dir = if write {
            Direction::Vh2Ve
        } else {
            Direction::Ve2Vh
        };
        let wire = proc.ve().link().occupy_for(
            dir,
            issue.end,
            aurora_sim_core::time::time_at_gib_per_sec(len, model.gib_per_sec),
            len,
        );
        aurora_sim_core::trace::record(
            if write {
                "veo.write_mem"
            } else {
                "veo.read_mem"
            },
            len,
            issue.start,
            wire.end,
        );
        Ok(clock.join(wire.end))
    }

    fn transfer(
        &self,
        clock: &Clock,
        host: &HostSlice,
        proc: &VeProcess,
        ve_addr: VeAddr,
        len: u64,
        write: bool,
    ) -> Result<SimTime, MemError> {
        // --- real data movement -------------------------------------
        let vh_off = host.vh.translate(host.vaddr)?;
        let ve_off = proc.translate(ve_addr, len)?;
        if write {
            aurora_mem::Region::copy_between(host.vh.region(), vh_off, proc.hbm(), ve_off, len)?;
        } else {
            aurora_mem::Region::copy_between(proc.hbm(), ve_off, host.vh.region(), vh_off, len)?;
        }

        // --- virtual cost (the SegmentedModel of `calib`) ------------
        self.quote(clock, host, proc, len, write)
    }

    /// Total engine busy time.
    pub fn busy(&self) -> SimTime {
        self.engine.total_busy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{AuroraMachine, MachineConfig};
    use aurora_mem::PageSize;
    use aurora_sim_core::time::gib_per_sec;

    fn setup(cfg: MachineConfig) -> (Arc<AuroraMachine>, Arc<VeProcess>, DmaManager) {
        let m = AuroraMachine::small(1, cfg);
        let proc = crate::daemon::Veos::new(Arc::clone(m.ve(0)), cfg.improved_dma).create_process();
        let mgr = DmaManager::new(cfg.improved_dma);
        (m, proc, mgr)
    }

    #[test]
    fn write_moves_data_to_ve() {
        let (m, proc, mgr) = setup(MachineConfig::default());
        let vh = Arc::clone(m.vh(0));
        let src = vh.alloc(64).unwrap();
        vh.write(src, b"payload for ve").unwrap();
        let dst = proc.alloc_mem(64).unwrap();
        let clock = Clock::new();
        mgr.write_ve(&clock, &HostSlice { vh, vaddr: src }, &proc, dst, 14)
            .unwrap();
        let mut out = [0u8; 14];
        proc.read(dst, &mut out).unwrap();
        assert_eq!(&out, b"payload for ve");
        // Small transfer ≈ base latency.
        let t = clock.now();
        assert!(t >= calib::VEO_WRITE_BASE, "t = {t}");
        assert!(t < calib::VEO_WRITE_BASE + SimTime::from_us(2));
    }

    #[test]
    fn read_moves_data_to_vh() {
        let (m, proc, mgr) = setup(MachineConfig::default());
        let vh = Arc::clone(m.vh(0));
        let dst = vh.alloc(64).unwrap();
        let src = proc.alloc_mem(64).unwrap();
        proc.write(src, b"result from ve").unwrap();
        let clock = Clock::new();
        let t = mgr
            .read_ve(
                &clock,
                &HostSlice {
                    vh: Arc::clone(&vh),
                    vaddr: dst,
                },
                &proc,
                src,
                14,
            )
            .unwrap();
        let mut out = [0u8; 14];
        vh.read(dst, &mut out).unwrap();
        assert_eq!(&out, b"result from ve");
        assert!(t >= calib::VEO_READ_BASE);
    }

    #[test]
    fn improved_hugepages_hits_table4_peak() {
        let (m, proc, mgr) = setup(MachineConfig::default());
        let vh = Arc::clone(m.vh(0));
        let len = 64u64 << 20;
        let src = vh.alloc(len).unwrap();
        let dst = proc.alloc_mem(len).unwrap();
        let clock = Clock::new();
        let t = mgr
            .write_ve(&clock, &HostSlice { vh, vaddr: src }, &proc, dst, len)
            .unwrap();
        let bw = gib_per_sec(len, t);
        assert!((bw - 9.9).abs() / 9.9 < 0.05, "write bw = {bw}");
    }

    #[test]
    fn classic_small_pages_is_translation_bound() {
        let cfg = MachineConfig {
            vh_page: PageSize::Small4K,
            improved_dma: false,
            ..Default::default()
        };
        let (m, proc, mgr) = setup(cfg);
        let vh = Arc::clone(m.vh(0));
        let len = 16u64 << 20;
        let src = vh.alloc(len).unwrap();
        let dst = proc.alloc_mem(len).unwrap();
        let clock = Clock::new();
        let t = mgr
            .write_ve(&clock, &HostSlice { vh, vaddr: src }, &proc, dst, len)
            .unwrap();
        let bw = gib_per_sec(len, t);
        assert!(bw < 2.0, "classic/4K bw = {bw} (motivates 1.3.2-4dma)");
    }

    #[test]
    fn read_direction_is_faster_at_peak() {
        let (m, proc, mgr) = setup(MachineConfig::default());
        let vh = Arc::clone(m.vh(0));
        let len = 64u64 << 20;
        let a = vh.alloc(len).unwrap();
        let d = proc.alloc_mem(len).unwrap();
        let cw = Clock::new();
        let tw = mgr
            .write_ve(
                &cw,
                &HostSlice {
                    vh: Arc::clone(&vh),
                    vaddr: a,
                },
                &proc,
                d,
                len,
            )
            .unwrap();
        // Fresh manager/link so occupancy does not carry over.
        let (m2, proc2, mgr2) = setup(MachineConfig::default());
        let vh2 = Arc::clone(m2.vh(0));
        let a2 = vh2.alloc(len).unwrap();
        let d2 = proc2.alloc_mem(len).unwrap();
        let cr = Clock::new();
        let tr = mgr2
            .read_ve(&cr, &HostSlice { vh: vh2, vaddr: a2 }, &proc2, d2, len)
            .unwrap();
        assert!(tr < tw, "VE⇒VH beats VH⇒VE (Table IV)");
    }

    #[test]
    fn engine_is_shared_and_serializes() {
        let (m, proc, mgr) = setup(MachineConfig::default());
        let vh = Arc::clone(m.vh(0));
        let src = vh.alloc(64).unwrap();
        let dst = proc.alloc_mem(64).unwrap();
        let host = HostSlice { vh, vaddr: src };
        let c1 = Clock::new();
        let t1 = mgr.write_ve(&c1, &host, &proc, dst, 8).unwrap();
        let c2 = Clock::new();
        let t2 = mgr.write_ve(&c2, &host, &proc, dst, 8).unwrap();
        assert!(t2 > t1, "second op queues behind the first");
    }
}
