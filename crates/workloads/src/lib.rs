//! # aurora-workloads
//!
//! Offloadable kernels and input generators used by the examples,
//! integration tests and benchmarks. The kernels mirror the workloads
//! the paper's context motivates: dense linear algebra (the FETI solver
//! of related work \[10\] offloads batches of dense matrix kernels),
//! stencils, reductions, and the paper's own inner-product example
//! (Fig. 2).
//!
//! All kernels are defined with [`ham::ham_kernel!`]; call
//! [`register_all`] from your backend registrar to make every kernel
//! offloadable.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod generators;
pub mod kernels;

pub use generators::{random_matrix, random_vector, Lcg};
pub use kernels::register_all;
