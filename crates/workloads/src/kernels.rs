//! The offloadable kernels.
//!
//! Buffer arguments travel as raw addresses plus element counts — the
//! `buffer_ptr` pattern of Table II: the host allocates with
//! `Offload::allocate`, fills with `put`, and passes `ptr.addr()`.

use ham::{ham_kernel, RegistryBuilder};

ham_kernel! {
    /// The paper's Fig. 2 example: inner product of two target vectors.
    pub fn inner_product(ctx, a: u64, b: u64, n: u64) -> f64 {
        let x = ctx.mem.read_f64s(a, n as usize).expect("read a");
        let y = ctx.mem.read_f64s(b, n as usize).expect("read b");
        ctx.charge_flops(2 * n);
        x.iter().zip(&y).map(|(p, q)| p * q).sum()
    }
}

ham_kernel! {
    /// `y ← α·x + y` on target memory; returns the checksum of `y`.
    pub fn daxpy(ctx, alpha: f64, x: u64, y: u64, n: u64) -> f64 {
        let xs = ctx.mem.read_f64s(x, n as usize).expect("read x");
        let mut ys = ctx.mem.read_f64s(y, n as usize).expect("read y");
        for (yi, xi) in ys.iter_mut().zip(&xs) {
            *yi += alpha * xi;
        }
        ctx.mem.write_f64s(y, &ys).expect("write y");
        ctx.charge_flops(2 * n);
        ys.iter().sum()
    }
}

ham_kernel! {
    /// Dense `C ← A·B` for row-major `m×k · k×n` matrices on the target.
    /// Returns the Frobenius-ish checksum of `C`.
    pub fn dgemm(ctx, a: u64, b: u64, c: u64, m: u64, k: u64, n: u64) -> f64 {
        let (m, k, n) = (m as usize, k as usize, n as usize);
        let av = ctx.mem.read_f64s(a, m * k).expect("read A");
        let bv = ctx.mem.read_f64s(b, k * n).expect("read B");
        let mut cv = vec![0.0f64; m * n];
        // i-k-j loop order: streams B rows, vectorises the inner j loop
        // (what NCC would auto-vectorise on the VE).
        for i in 0..m {
            for kk in 0..k {
                let aik = av[i * k + kk];
                let brow = &bv[kk * n..(kk + 1) * n];
                let crow = &mut cv[i * n..(i + 1) * n];
                for (cij, bkj) in crow.iter_mut().zip(brow) {
                    *cij += aik * bkj;
                }
            }
        }
        ctx.mem.write_f64s(c, &cv).expect("write C");
        ctx.charge_flops(2 * (m * k * n) as u64);
        cv.iter().sum()
    }
}

ham_kernel! {
    /// One Jacobi sweep on an `nx×ny` grid: `dst ← stencil(src)`,
    /// boundaries copied through. Returns the max |dst−src| residual.
    pub fn jacobi_step(ctx, src: u64, dst: u64, nx: u64, ny: u64) -> f64 {
        let (nx, ny) = (nx as usize, ny as usize);
        let s = ctx.mem.read_f64s(src, nx * ny).expect("read src");
        let mut d = s.clone();
        let mut residual: f64 = 0.0;
        for i in 1..nx - 1 {
            for j in 1..ny - 1 {
                let v = 0.25
                    * (s[(i - 1) * ny + j]
                        + s[(i + 1) * ny + j]
                        + s[i * ny + j - 1]
                        + s[i * ny + j + 1]);
                residual = residual.max((v - s[i * ny + j]).abs());
                d[i * ny + j] = v;
            }
        }
        ctx.mem.write_f64s(dst, &d).expect("write dst");
        ctx.charge_flops(5 * (nx.saturating_sub(2) * ny.saturating_sub(2)) as u64);
        residual
    }
}

ham_kernel! {
    /// Monte-Carlo π estimation with a deterministic per-call stream.
    pub fn monte_carlo_pi(_ctx, seed: u64, samples: u64) -> f64 {
        let mut state = seed.max(1);
        let mut hits = 0u64;
        let mut next = || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                * (1.0 / (1u64 << 53) as f64)
        };
        for _ in 0..samples {
            let x = next();
            let y = next();
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        _ctx.charge_flops(5 * samples);
        4.0 * hits as f64 / samples as f64
    }
}

ham_kernel! {
    /// Sum-reduce a target vector.
    pub fn vec_sum(ctx, x: u64, n: u64) -> f64 {
        ctx.charge_flops(n);
        ctx.mem.read_f64s(x, n as usize).expect("read x").iter().sum()
    }
}

ham_kernel! {
    /// Scale a target vector in place.
    pub fn vec_scale(ctx, x: u64, n: u64, factor: f64) -> () {
        let mut xs = ctx.mem.read_f64s(x, n as usize).expect("read x");
        for v in &mut xs {
            *v *= factor;
        }
        ctx.mem.write_f64s(x, &xs).expect("write x");
        ctx.charge_flops(n);
    }
}

ham_kernel! {
    /// A batch of small dense multiply-accumulate kernels, standing in
    /// for the FETI local-Schur-complement batches of related work \[10\]:
    /// `count` square `dim×dim` GEMMs over consecutive target buffers.
    pub fn dense_batch(ctx, base_a: u64, base_b: u64, count: u64, dim: u64) -> f64 {
        let d = dim as usize;
        let mut checksum = 0.0;
        for i in 0..count {
            let off = i * (d * d * 8) as u64;
            let a = ctx.mem.read_f64s(base_a + off, d * d).expect("read a");
            let b = ctx.mem.read_f64s(base_b + off, d * d).expect("read b");
            let mut acc = 0.0;
            for r in 0..d {
                for c in 0..d {
                    let mut v = 0.0;
                    for t in 0..d {
                        v += a[r * d + t] * b[t * d + c];
                    }
                    acc += v;
                }
            }
            checksum += acc;
        }
        ctx.charge_flops(2 * count * dim * dim * dim);
        checksum
    }
}

ham_kernel! {
    /// Spin for a deterministic amount of work — used to model kernels
    /// of a given granularity in overlap/ablation experiments. Returns
    /// the number of iterations executed.
    pub fn busy_work(_ctx, iterations: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..iterations {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        // Defeat optimisation by folding the accumulator into the result.
        iterations.wrapping_add(acc & 1)
    }
}

ham_kernel! {
    /// Identity echo, for wire-integrity tests.
    pub fn echo(_ctx, data: Vec<u8>) -> Vec<u8> { data }
}

ham_kernel! {
    /// Charge exactly `flops` of modeled compute and return the device's
    /// node id — the probe kernel of the measured break-even experiment.
    pub fn compute_burn(ctx, flops: u64) -> u16 {
        ctx.charge_flops(flops);
        ctx.node
    }
}

ham_kernel! {
    /// Report which node executed (topology smoke test).
    pub fn whoami(ctx) -> u16 { ctx.node }
}

ham_kernel! {
    /// Sparse matrix-vector product `y = A·x` in CSR form. The three CSR
    /// arrays and `x` live in target memory; `y` is written back.
    /// Returns the checksum of `y`. Irregular access — the kind of
    /// kernel whose scalar index arithmetic the paper notes runs slowly
    /// on the VE's scalar unit.
    pub fn spmv_csr(
        ctx,
        row_ptr: u64,
        col_idx: u64,
        values: u64,
        x: u64,
        y: u64,
        rows: u64,
        nnz: u64,
    ) -> f64 {
        let rp = ctx.mem.read_u64s(row_ptr, rows as usize + 1).expect("row_ptr");
        let ci = ctx.mem.read_u64s(col_idx, nnz as usize).expect("col_idx");
        let va = ctx.mem.read_f64s(values, nnz as usize).expect("values");
        // x length = max referenced column + 1; callers size it, we read
        // lazily per row span to stay bounds-safe.
        let xmax = ci.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        let xv = ctx.mem.read_f64s(x, xmax as usize).expect("x");
        let mut yv = vec![0.0f64; rows as usize];
        for r in 0..rows as usize {
            let (lo, hi) = (rp[r] as usize, rp[r + 1] as usize);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += va[k] * xv[ci[k] as usize];
            }
            yv[r] = acc;
        }
        ctx.mem.write_f64s(y, &yv).expect("write y");
        ctx.charge_flops(2 * nnz);
        yv.iter().sum()
    }
}

ham_kernel! {
    /// Histogram of a `u64` key stream into `bins` buckets (modulo
    /// binning); the counts are written to `out` as u64s. Returns the
    /// number of keys processed.
    pub fn histogram(ctx, keys: u64, n: u64, out: u64, bins: u64) -> u64 {
        let ks = ctx.mem.read_u64s(keys, n as usize).expect("keys");
        let mut counts = vec![0u64; bins as usize];
        for k in &ks {
            counts[(k % bins) as usize] += 1;
        }
        ctx.mem.write_u64s(out, &counts).expect("write counts");
        ctx.charge_flops(n);
        n
    }
}

/// Register every workload kernel (call from your backend registrar).
pub fn register_all(b: &mut RegistryBuilder) {
    b.register::<inner_product>();
    b.register::<daxpy>();
    b.register::<dgemm>();
    b.register::<jacobi_step>();
    b.register::<monte_carlo_pi>();
    b.register::<vec_sum>();
    b.register::<vec_scale>();
    b.register::<dense_batch>();
    b.register::<busy_work>();
    b.register::<echo>();
    b.register::<compute_burn>();
    b.register::<spmv_csr>();
    b.register::<histogram>();
    b.register::<whoami>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham::message::{TargetMemory, VecMemory};
    use ham::{f2f, ActiveMessage, ExecContext};

    fn ctx_mem(bytes: usize) -> VecMemory {
        VecMemory::new(bytes)
    }

    #[test]
    fn inner_product_matches_reference() {
        let mem = ctx_mem(4096);
        mem.write_f64s(0, &[1.0, 2.0, 3.0]).unwrap();
        mem.write_f64s(1024, &[4.0, 5.0, 6.0]).unwrap();
        let mut ctx = ExecContext::new(1, &mem);
        let r = f2f!(inner_product, 0, 1024, 3).execute(&mut ctx);
        assert_eq!(r, 32.0);
    }

    #[test]
    fn daxpy_updates_in_place() {
        let mem = ctx_mem(4096);
        mem.write_f64s(0, &[1.0, 1.0]).unwrap();
        mem.write_f64s(512, &[10.0, 20.0]).unwrap();
        let mut ctx = ExecContext::new(1, &mem);
        let sum = f2f!(daxpy, 2.0, 0, 512, 2).execute(&mut ctx);
        assert_eq!(sum, 12.0 + 22.0);
        assert_eq!(mem.read_f64s(512, 2).unwrap(), vec![12.0, 22.0]);
    }

    #[test]
    fn dgemm_small_known_product() {
        let mem = ctx_mem(8192);
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] → C = [[19,22],[43,50]].
        mem.write_f64s(0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        mem.write_f64s(512, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let mut ctx = ExecContext::new(1, &mem);
        let checksum = f2f!(dgemm, 0, 512, 1024, 2, 2, 2).execute(&mut ctx);
        assert_eq!(
            mem.read_f64s(1024, 4).unwrap(),
            vec![19.0, 22.0, 43.0, 50.0]
        );
        assert_eq!(checksum, 19.0 + 22.0 + 43.0 + 50.0);
    }

    #[test]
    fn jacobi_converges_on_flat_interior() {
        let mem = ctx_mem(1 << 16);
        // 4x4 grid, boundary = 1, interior = 0.
        let mut grid = vec![1.0f64; 16];
        grid[5] = 0.0;
        grid[6] = 0.0;
        grid[9] = 0.0;
        grid[10] = 0.0;
        mem.write_f64s(0, &grid).unwrap();
        let mut ctx = ExecContext::new(1, &mem);
        let r1 = f2f!(jacobi_step, 0, 2048, 4, 4).execute(&mut ctx);
        assert!(r1 > 0.0);
        // Iterate src/dst ping-pong until the residual vanishes.
        let mut residual = r1;
        let (mut src, mut dst) = (2048u64, 0u64);
        for _ in 0..200 {
            residual = f2f!(jacobi_step, src, dst, 4, 4).execute(&mut ctx);
            core::mem::swap(&mut src, &mut dst);
        }
        assert!(residual < 1e-10, "residual = {residual}");
    }

    #[test]
    fn monte_carlo_pi_is_close() {
        let mem = ctx_mem(0);
        let mut ctx = ExecContext::new(1, &mem);
        let pi = f2f!(monte_carlo_pi, 42, 200_000).execute(&mut ctx);
        assert!((pi - core::f64::consts::PI).abs() < 0.02, "pi = {pi}");
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let mem = ctx_mem(0);
        let mut ctx = ExecContext::new(1, &mem);
        let a = f2f!(monte_carlo_pi, 7, 10_000).execute(&mut ctx);
        let b = f2f!(monte_carlo_pi, 7, 10_000).execute(&mut ctx);
        let c = f2f!(monte_carlo_pi, 8, 10_000).execute(&mut ctx);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn vec_ops() {
        let mem = ctx_mem(4096);
        mem.write_f64s(0, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut ctx = ExecContext::new(1, &mem);
        assert_eq!(f2f!(vec_sum, 0, 4).execute(&mut ctx), 10.0);
        f2f!(vec_scale, 0, 4, 0.5).execute(&mut ctx);
        assert_eq!(mem.read_f64s(0, 4).unwrap(), vec![0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn dense_batch_equals_repeated_dgemm_checksums() {
        let mem = ctx_mem(1 << 16);
        let d = 3usize;
        let count = 4u64;
        for i in 0..count {
            let vals: Vec<f64> = (0..d * d).map(|v| (v as f64) + i as f64).collect();
            mem.write_f64s(i * (d * d * 8) as u64, &vals).unwrap();
            mem.write_f64s(0x4000 + i * (d * d * 8) as u64, &vals)
                .unwrap();
        }
        let mut ctx = ExecContext::new(1, &mem);
        let batch = f2f!(dense_batch, 0, 0x4000, count, d as u64).execute(&mut ctx);
        assert!(batch.is_finite() && batch > 0.0);
    }

    #[test]
    fn busy_work_returns_iteration_count_shape() {
        let mem = ctx_mem(0);
        let mut ctx = ExecContext::new(1, &mem);
        let r = f2f!(busy_work, 1000).execute(&mut ctx);
        assert!(r == 1000 || r == 1001);
    }

    #[test]
    fn echo_round_trips() {
        let mem = ctx_mem(0);
        let mut ctx = ExecContext::new(1, &mem);
        let data = vec![1u8, 2, 3, 255];
        assert_eq!(f2f!(echo, data.clone()).execute(&mut ctx), data);
    }

    #[test]
    fn spmv_matches_dense_reference() {
        // A = [[2,0,1],[0,3,0],[4,5,6]] in CSR; x = [1,2,3].
        let mem = ctx_mem(1 << 14);
        let row_ptr: Vec<u64> = vec![0, 2, 3, 6];
        let col_idx: Vec<u64> = vec![0, 2, 1, 0, 1, 2];
        let values = vec![2.0, 1.0, 3.0, 4.0, 5.0, 6.0];
        let x = vec![1.0, 2.0, 3.0];
        mem.write_u64s(0, &row_ptr).unwrap();
        mem.write_u64s(0x400, &col_idx).unwrap();
        mem.write_f64s(0x800, &values).unwrap();
        mem.write_f64s(0xC00, &x).unwrap();
        let mut ctx = ExecContext::new(1, &mem);
        let checksum = f2f!(spmv_csr, 0, 0x400, 0x800, 0xC00, 0x1000, 3, 6).execute(&mut ctx);
        let y = mem.read_f64s(0x1000, 3).unwrap();
        assert_eq!(y, vec![5.0, 6.0, 32.0]);
        assert_eq!(checksum, 43.0);
    }

    #[test]
    fn histogram_counts_mod_bins() {
        let mem = ctx_mem(1 << 12);
        let keys: Vec<u64> = (0..100).collect();
        mem.write_u64s(0, &keys).unwrap();
        let mut ctx = ExecContext::new(1, &mem);
        let n = f2f!(histogram, 0, 100, 0x800, 7).execute(&mut ctx);
        assert_eq!(n, 100);
        let counts = mem.read_u64s(0x800, 7).unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 100);
        // 100 = 14*7 + 2: bins 0,1 get 15, the rest 14.
        assert_eq!(counts[0], 15);
        assert_eq!(counts[1], 15);
        assert!(counts[2..].iter().all(|&c| c == 14));
    }

    #[test]
    fn register_all_registers_everything_once() {
        let mut b = RegistryBuilder::new();
        register_all(&mut b);
        register_all(&mut b); // idempotent
        let r = b.seal(0);
        assert_eq!(r.len(), 14);
    }
}
