//! Deterministic input generators for examples, tests and benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A tiny linear congruential generator for cheap deterministic streams
/// (e.g. seeding per-offload Monte-Carlo kernels).
#[derive(Clone, Debug)]
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(2862933555777941757).wrapping_add(1),
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }
}

/// A reproducible random vector of `n` doubles in `[-1, 1)`.
pub fn random_vector(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// A reproducible random row-major `rows × cols` matrix.
pub fn random_matrix(seed: u64, rows: usize, cols: usize) -> Vec<f64> {
    random_vector(seed ^ 0x9E37_79B9_7F4A_7C15, rows * cols)
}

/// Reference (host-side) inner product, for verifying offloaded results.
pub fn reference_inner_product(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Reference dense GEMM (row-major), for verifying offloaded results.
pub fn reference_dgemm(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut c = vec![0.0; m * n];
    for i in 0..m {
        for t in 0..k {
            let ait = a[i * k + t];
            for j in 0..n {
                c[i * n + j] += ait * b[t * n + j];
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectors_are_deterministic_and_in_range() {
        let a = random_vector(1, 100);
        let b = random_vector(1, 100);
        let c = random_vector(2, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn matrix_dimensions() {
        assert_eq!(random_matrix(3, 4, 5).len(), 20);
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(9);
        let mut b = Lcg::new(9);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_kernels_agree_on_identity() {
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let m = vec![3.0, 4.0, 5.0, 6.0];
        assert_eq!(reference_dgemm(&eye, &m, 2, 2, 2), m);
        assert_eq!(reference_inner_product(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
