//! Shared host-side plumbing for the SX-Aurora backends: VE process
//! setup through VEO, target memory access for kernels, compute
//! metering, buffer management and VEO-based bulk transfers
//! (`put`/`get`).
//!
//! Both Aurora transports (`ham-backend-veo`, `ham-backend-dma`) sit on
//! this crate, which depends only *downward* (simulator + runtime) —
//! the shared pieces used to live inside `ham-backend-veo`, forcing the
//! DMA backend to depend on a sibling backend. Protocol slot geometry
//! ([`ProtocolConfig`], [`SLOT_META`]) lives with the channel core in
//! `ham-offload` and is re-exported here for convenience.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use aurora_mem::{VeAddr, VhAddr};
use aurora_sim_core::{BackendMetrics, Clock};
use ham::{HamError, Registry, RegistryBuilder, TargetMemory};
use ham_offload::backend::{RawBuffer, Registrar};
use ham_offload::types::{DeviceType, NodeDescriptor, NodeId};
use ham_offload::OffloadError;
use std::sync::Arc;
use veo_api::VeoProc;
use veos_sim::{AuroraMachine, VeProcess};

pub use ham_offload::chan::{ProtocolConfig, SLOT_META};

/// Registry seed of the host "binary".
pub const HOST_SEED: u64 = 0x5648_0001; // "VH"
/// Registry seed base of the VE "binaries" (one per VE process).
pub const VE_SEED_BASE: u64 = 0x5645_0100; // "VE"

/// [`ham::message::ComputeMeter`] over a VE process: kernel work charged
/// through [`ham::ExecContext::charge_flops`] advances the VE's virtual
/// clock at the Table-I sustained rate — what makes offloaded kernel
/// *durations* (and thus overlap and break-even behaviour) visible on
/// the virtual timeline.
pub struct VeComputeMeter {
    clock: Clock,
}

impl VeComputeMeter {
    /// Meter advancing `clock` (the VE process's clock).
    pub fn new(clock: Clock) -> Self {
        Self { clock }
    }
}

impl ham::message::ComputeMeter for VeComputeMeter {
    fn charge_flops(&self, flops: u64) {
        let t0 = self.clock.now();
        let t1 = self
            .clock
            .advance(aurora_sim_core::calib::ve_compute_time(flops));
        aurora_sim_core::trace::record("ve.compute", flops, t0, t1);
    }

    fn cost_ps(&self, flops: u64) -> u64 {
        aurora_sim_core::calib::ve_compute_time(flops).as_ps()
    }
}

/// [`TargetMemory`] over a VE process: kernels read/write VE memory by
/// VEMVA — `buffer_ptr` addresses resolve here.
pub struct VeTargetMemory {
    proc: Arc<VeProcess>,
}

impl VeTargetMemory {
    /// Wrap a VE process.
    pub fn new(proc: Arc<VeProcess>) -> Self {
        Self { proc }
    }
}

impl TargetMemory for VeTargetMemory {
    fn mem_read(&self, addr: u64, out: &mut [u8]) -> Result<(), HamError> {
        self.proc
            .read(VeAddr(addr), out)
            .map_err(|e| HamError::Mem(e.to_string()))
    }

    fn mem_write(&self, addr: u64, data: &[u8]) -> Result<(), HamError> {
        self.proc
            .write(VeAddr(addr), data)
            .map_err(|e| HamError::Mem(e.to_string()))
    }
}

/// One target's VEO plumbing.
pub struct TargetCore {
    /// The VEO process handle.
    pub proc: Arc<VeoProc>,
}

/// Host-side core shared by both Aurora backends.
pub struct AuroraCore {
    machine: Arc<AuroraMachine>,
    host_socket: u8,
    host_clock: Clock,
    host_registry: Arc<Registry>,
    registrar: Arc<Registrar>,
    targets: Vec<TargetCore>,
    metrics: BackendMetrics,
}

impl AuroraCore {
    /// Set up VE processes on the listed VEs; the host process is pinned
    /// to `host_socket` (the UPI knob of §V-A).
    pub fn new(
        machine: Arc<AuroraMachine>,
        host_socket: u8,
        ves: &[u8],
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Self {
        let registrar: Arc<Registrar> = Arc::new(registrar);
        let host_clock = Clock::new();
        let host_registry = Arc::new(Self::build_registry(&registrar, HOST_SEED));
        let targets = ves
            .iter()
            .map(|&ve| TargetCore {
                proc: VeoProc::create(Arc::clone(&machine), ve, host_socket, host_clock.clone()),
            })
            .collect();
        let metrics = BackendMetrics::new();
        for node in 1..=ves.len() as u16 {
            metrics.health().register(node);
        }
        Self {
            machine,
            host_socket,
            host_clock,
            host_registry,
            registrar,
            targets,
            metrics,
        }
    }

    /// Build one process's registry from the shared registrar (the "same
    /// source, two binaries" of §III-C).
    pub fn build_registry(registrar: &Arc<Registrar>, seed: u64) -> Registry {
        let mut b = RegistryBuilder::new();
        registrar(&mut b);
        b.seal(seed)
    }

    /// The shared registrar.
    pub fn registrar(&self) -> &Arc<Registrar> {
        &self.registrar
    }

    /// The machine.
    pub fn machine(&self) -> &Arc<AuroraMachine> {
        &self.machine
    }

    /// The host process's socket.
    pub fn host_socket(&self) -> u8 {
        self.host_socket
    }

    /// The host clock.
    pub fn host_clock(&self) -> &Clock {
        &self.host_clock
    }

    /// The host registry.
    pub fn host_registry(&self) -> &Arc<Registry> {
        &self.host_registry
    }

    /// The backend's metric registers (shared by whichever protocol
    /// backend wraps this core).
    pub fn metrics(&self) -> &BackendMetrics {
        &self.metrics
    }

    /// Number of targets.
    pub fn num_targets(&self) -> u16 {
        self.targets.len() as u16
    }

    /// The VEO plumbing of `node` (1-based).
    pub fn target(&self, node: NodeId) -> Result<&TargetCore, OffloadError> {
        if node.is_host() {
            return Err(OffloadError::BadNode(node));
        }
        self.targets
            .get(node.0 as usize - 1)
            .ok_or(OffloadError::BadNode(node))
    }

    /// Node descriptor (Table I data for VEs).
    pub fn descriptor(&self, node: NodeId) -> Result<NodeDescriptor, OffloadError> {
        if node.is_host() {
            let cpu = aurora_ve::CpuSpecs::xeon_gold_6126();
            return Ok(NodeDescriptor {
                node,
                name: format!("VH socket {} ({})", self.host_socket, cpu.name),
                device_type: DeviceType::Host,
                memory_bytes: self.machine.config().vh_bytes,
                cores: cpu.cores,
            });
        }
        let t = self.target(node)?;
        let specs = t.proc.process().ve().specs().clone();
        Ok(NodeDescriptor {
            node,
            name: format!("VE{} ({})", t.proc.ve_id(), specs.name),
            device_type: DeviceType::VectorEngine,
            memory_bytes: self.machine.config().hbm_bytes,
            cores: specs.cores,
        })
    }

    /// Allocate on a target (Table II `allocate` → `veo_alloc_mem`).
    pub fn allocate(&self, node: NodeId, bytes: u64) -> Result<u64, OffloadError> {
        let t = self.target(node)?;
        t.proc
            .alloc_mem(bytes)
            .map(|a| a.get())
            .map_err(|e| OffloadError::Mem(e.to_string()))
    }

    /// Free a target allocation.
    pub fn free(&self, node: NodeId, addr: u64) -> Result<(), OffloadError> {
        let t = self.target(node)?;
        t.proc
            .free_mem(VeAddr(addr))
            .map_err(|e| OffloadError::Mem(e.to_string()))
    }

    /// Run `f` with a staging buffer of `len` bytes in VH memory (the
    /// host-pinned pages a real program's buffers occupy).
    pub fn with_staging<R>(
        &self,
        len: u64,
        f: impl FnOnce(VhAddr) -> Result<R, OffloadError>,
    ) -> Result<R, OffloadError> {
        let vh = self.machine.vh(self.host_socket);
        let addr = vh
            .alloc(len.max(1))
            .map_err(|e| OffloadError::Mem(e.to_string()))?;
        let result = f(addr);
        vh.free(addr)
            .map_err(|e| OffloadError::Mem(e.to_string()))?;
        result
    }

    /// Table II `put` over VEO write (both backends, §IV-B).
    pub fn put_bytes(&self, dst: RawBuffer, data: &[u8]) -> Result<(), OffloadError> {
        let t = self.target(dst.node)?;
        let vh = self.machine.vh(self.host_socket);
        self.with_staging(data.len() as u64, |staging| {
            vh.write(staging, data)
                .map_err(|e| OffloadError::Mem(e.to_string()))?;
            t.proc
                .write_mem(staging, VeAddr(dst.addr), data.len() as u64)
                .map_err(|e| OffloadError::Backend(e.to_string()))?;
            Ok(())
        })
    }

    /// Table II `get` over VEO read.
    pub fn get_bytes(&self, src: RawBuffer, out: &mut [u8]) -> Result<(), OffloadError> {
        let t = self.target(src.node)?;
        let vh = self.machine.vh(self.host_socket);
        self.with_staging(out.len() as u64, |staging| {
            t.proc
                .read_mem(VeAddr(src.addr), staging, out.len() as u64)
                .map_err(|e| OffloadError::Backend(e.to_string()))?;
            vh.read(staging, out)
                .map_err(|e| OffloadError::Mem(e.to_string()))?;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use veos_sim::MachineConfig;

    fn machine() -> Arc<AuroraMachine> {
        AuroraMachine::small(
            2,
            MachineConfig {
                hbm_bytes: 16 << 20,
                vh_bytes: 32 << 20,
                ..Default::default()
            },
        )
    }

    fn core() -> AuroraCore {
        AuroraCore::new(machine(), 0, &[0, 1], |_b| {})
    }

    #[test]
    fn setup_creates_processes() {
        let c = core();
        assert_eq!(c.num_targets(), 2);
        assert!(c.target(NodeId(1)).is_ok());
        assert!(c.target(NodeId(2)).is_ok());
        assert!(c.target(NodeId(3)).is_err());
        assert!(c.target(NodeId::HOST).is_err());
    }

    #[test]
    fn descriptors_expose_table1() {
        let c = core();
        let ve = c.descriptor(NodeId(1)).unwrap();
        assert_eq!(ve.device_type, DeviceType::VectorEngine);
        assert_eq!(ve.cores, 8);
        assert!(ve.name.contains("Type 10B"));
        let host = c.descriptor(NodeId::HOST).unwrap();
        assert_eq!(host.device_type, DeviceType::Host);
        assert!(host.name.contains("6126"));
    }

    #[test]
    fn alloc_put_get_round_trip() {
        let c = core();
        let addr = c.allocate(NodeId(1), 64).unwrap();
        let buf = RawBuffer {
            node: NodeId(1),
            addr,
            len: 64,
        };
        c.put_bytes(buf, b"through the privileged dma").unwrap();
        let mut out = [0u8; 26];
        c.get_bytes(buf, &mut out).unwrap();
        assert_eq!(&out, b"through the privileged dma");
        c.free(NodeId(1), addr).unwrap();
        // Host clock advanced by at least one write + one read.
        assert!(
            c.host_clock().now()
                >= aurora_sim_core::calib::VEO_WRITE_BASE + aurora_sim_core::calib::VEO_READ_BASE
        );
    }

    #[test]
    fn ve_target_memory_resolves_vemva() {
        let c = core();
        let t = c.target(NodeId(1)).unwrap();
        let addr = c.allocate(NodeId(1), 32).unwrap();
        let mem = VeTargetMemory::new(Arc::clone(t.proc.process()));
        mem.mem_write(addr, b"kernel view").unwrap();
        let mut out = [0u8; 11];
        mem.mem_read(addr, &mut out).unwrap();
        assert_eq!(&out, b"kernel view");
        assert!(mem.mem_read(0x1234, &mut out).is_err(), "unmapped VEMVA");
    }

    #[test]
    fn registries_share_keys_across_seeds() {
        let c = AuroraCore::new(machine(), 0, &[0], |b| {
            b.register::<probe>();
        });
        let ve_reg = AuroraCore::build_registry(c.registrar(), VE_SEED_BASE);
        assert_eq!(c.host_registry().names(), ve_reg.names());
    }

    ham::ham_kernel! {
        pub fn probe(_ctx) -> u8 { 1 }
    }
}
