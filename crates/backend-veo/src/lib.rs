//! # ham-backend-veo
//!
//! The VEO-based HAM-Offload communication backend (paper §III, Fig. 5).
//!
//! All communication buffers live in **VE memory**; the VH is the active
//! side, using `veo_write_mem` to deposit offload messages + notification
//! flags and `veo_read_mem` to poll result flags and fetch result
//! messages. The VE side runs `ham_main()` — started asynchronously
//! through VEO (§III-C, Fig. 4) — polling its local flags and executing
//! active messages.
//!
//! Every VEO operation pays the privileged-DMA software path (§III-D),
//! which is why this backend's empty-offload cost is ~432 µs (Fig. 9):
//! two writes (message, flag) + two reads (result flag, result message).
//!
//! Setup, buffer management and VEO-based bulk transfer live in the
//! shared `aurora-proto` crate ([`core::AuroraCore`] re-exports it),
//! since "starting the application, initialisation and data exchange
//! are still performed through the VEO API" (§IV-B) for both Aurora
//! backends. Host-side protocol state (slots, sequences, completions)
//! lives in `ham_offload::chan` — this crate implements only the
//! transport verbs of the VEO protocol.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod channel;
pub mod core;

pub use crate::core::{AuroraCore, ProtocolConfig, VeTargetMemory};
pub use channel::VeoBackend;
