//! The VEO-based messaging protocol (paper §III-D, Fig. 5).
//!
//! Buffer geometry (all in VE memory, allocated by the VH through VEO):
//!
//! ```text
//! recv slot i (VH → VE offload messages):
//!   +0   flag  (u64)  0 = free, seq+1 = message present
//!   +8   ts    (u64)  virtual landing time of the flag (ps)
//!   +16  message: 32-byte header ‖ payload (≤ msg_bytes)
//! send slot j (VE → VH results): same layout; flag = seq+1.
//! ```
//!
//! The VH writes a message with one `veo_write_mem`, then publishes it
//! with a second 16-byte `veo_write_mem`-priced flag write (the flag's
//! timestamp is obtained by *quoting* the DMA manager first, so the value
//! can embed its own landing time). The VE polls its local flags, resets
//! them after consuming, executes, and deposits results locally. The VH
//! polls the result flag and fetches flag + message with two
//! `veo_read_mem`s — giving the 2 W + 2 R ≈ 432 µs empty-offload cost of
//! Fig. 9. Results are matched by sequence number, so send-slot flags
//! never need a (costly) host-side reset write.
//!
//! Host-side protocol state (slot rings, pending table, completion
//! queue) lives in [`ham_offload::chan`]; this module implements only
//! the VEO transport verbs. Polling is arrival-driven in virtual time
//! (zero-cost real peeks; the successful poll is charged) — see the
//! DESIGN.md discussion.

use crate::core::{AuroraCore, ProtocolConfig, VeTargetMemory, SLOT_META, VE_SEED_BASE};
use aurora_mem::VeAddr;
use aurora_sim_core::{calib, Clock, FaultPlan, SimTime};
use ham::registry::HandlerKey;
use ham::wire::{MsgHeader, MsgKind, HEADER_BYTES};
use ham::Registry;
use ham_offload::backend::{CommBackend, RawBuffer};
use ham_offload::chan::pool::{FramePool, PooledFrame};
use ham_offload::chan::{engine, ChannelCore, PendingEntry, RecoveryPolicy, Reservation};
use ham_offload::device::{DeviceConfig, DeviceRuntime};
use ham_offload::target_loop::{Polled, TargetChannel};
use ham_offload::types::{NodeDescriptor, NodeId};
use ham_offload::OffloadError;
use parking_lot::Mutex;
use std::sync::Arc;
use veo_api::{ArgsStack, KernelLibrary, VeoContext};
use veos_sim::{AuroraMachine, HostSlice, VeProcess};

/// Geometry of one slot array.
#[derive(Clone, Copy, Debug)]
struct Slots {
    base: VeAddr,
    count: usize,
    stride: u64,
}

impl Slots {
    fn flag(&self, i: usize) -> VeAddr {
        self.base.offset(i as u64 * self.stride)
    }
    fn ts(&self, i: usize) -> VeAddr {
        self.flag(i).offset(8)
    }
    fn msg(&self, i: usize) -> VeAddr {
        self.flag(i).offset(SLOT_META)
    }
}

struct TargetChan {
    recv: Slots,
    send: Slots,
    ctx: Arc<VeoContext>,
    chan: ChannelCore,
}

/// The VEO communication backend (Fig. 5).
pub struct VeoBackend {
    core: AuroraCore,
    cfg: ProtocolConfig,
    channels: Vec<TargetChan>,
    plan: Arc<FaultPlan>,
}

impl VeoBackend {
    /// Set up the backend: create VE processes, allocate the
    /// communication buffers through VEO, communicate their addresses via
    /// the HAM-Offload C-API (Fig. 4), and start `ham_main()` on each VE.
    pub fn spawn(
        machine: Arc<AuroraMachine>,
        host_socket: u8,
        ves: &[u8],
        cfg: ProtocolConfig,
        registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_with_faults(
            machine,
            host_socket,
            ves,
            cfg,
            FaultPlan::none(),
            None,
            registrar,
        )
    }

    /// [`VeoBackend::spawn`] under a deterministic [`FaultPlan`]: each
    /// VE's PCIe link, DMA engine and process are armed with the plan
    /// (actor = node id), and an optional [`RecoveryPolicy`] arms
    /// timeout/retry on every channel. An all-zero plan and `None`
    /// policy behave bit-identically to [`VeoBackend::spawn`].
    pub fn spawn_with_faults(
        machine: Arc<AuroraMachine>,
        host_socket: u8,
        ves: &[u8],
        cfg: ProtocolConfig,
        plan: Arc<FaultPlan>,
        policy: Option<RecoveryPolicy>,
        registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        cfg.validate();
        let core = AuroraCore::new(machine, host_socket, ves, registrar);
        let mut channels = Vec::with_capacity(ves.len());
        for node in 1..=core.num_targets() {
            let t = core.target(NodeId(node)).expect("just created");
            let proc = &t.proc;
            // Arm this VE's PCIe link (and through it the user DMA
            // engines) with the plan; actor = node id keys the draws.
            core.machine()
                .topology()
                .link(proc.ve_id())
                .arm_faults(Arc::clone(&plan), node);
            let stride = cfg.slot_stride();
            let recv_base = proc
                .alloc_mem(cfg.array_bytes(cfg.recv_slots))
                .expect("recv buffer allocation");
            let send_base = proc
                .alloc_mem(cfg.array_bytes(cfg.send_slots))
                .expect("send buffer allocation");
            // Zero both arrays (flags must start invalid).
            let zeros = vec![0u8; cfg.array_bytes(cfg.recv_slots.max(cfg.send_slots)) as usize];
            proc.process()
                .write(
                    recv_base,
                    &zeros[..cfg.array_bytes(cfg.recv_slots) as usize],
                )
                .expect("zero recv");
            proc.process()
                .write(
                    send_base,
                    &zeros[..cfg.array_bytes(cfg.send_slots) as usize],
                )
                .expect("zero send");

            // The VE-side "binary": the same application library, with the
            // HAM-Offload C-API and ham_main() entry (Fig. 4).
            let registrar = Arc::clone(core.registrar());
            let node_id = node;
            let init_cfg: Arc<Mutex<Option<(Slots, Slots)>>> = Arc::new(Mutex::new(None));
            let init_cfg2 = Arc::clone(&init_cfg);
            let cfg2 = cfg;
            let ve_plan = Arc::clone(&plan);
            let lane_stats = Arc::clone(core.metrics().lane_stats());
            let lib = KernelLibrary::new()
                .with("ham_comm_init", move |_ve, args| {
                    let recv = Slots {
                        base: VeAddr(args.get_u64(0)),
                        count: args.get_u64(2) as usize,
                        stride: args.get_u64(4),
                    };
                    let send = Slots {
                        base: VeAddr(args.get_u64(1)),
                        count: args.get_u64(3) as usize,
                        stride: args.get_u64(4),
                    };
                    *init_cfg2.lock() = Some((recv, send));
                    0
                })
                .with("ham_main", move |ve, _args| {
                    let (recv, send) =
                        (*init_cfg.lock()).expect("ham_comm_init must run before ham_main");
                    let registry =
                        AuroraCore::build_registry(&registrar, VE_SEED_BASE + node_id as u64);
                    let mem = VeTargetMemory::new(Arc::clone(&ve.proc));
                    let meter = crate::core::VeComputeMeter::new(ve.proc.clock().clone());
                    let chan = VeSideChannel {
                        proc: Arc::clone(&ve.proc),
                        recv,
                        send,
                        cfg: cfg2,
                        next: std::cell::Cell::new(0),
                        node: node_id,
                        plan: Arc::clone(&ve_plan),
                    };
                    let runtime = DeviceRuntime::new(
                        DeviceConfig::new()
                            .with_lanes(cfg2.lanes)
                            .with_clock(ve.proc.clock().clone())
                            .with_stats(Arc::clone(&lane_stats)),
                    );
                    runtime.run(
                        &ham_offload::target_loop::TargetEnv {
                            node: node_id,
                            registry: &registry,
                            mem: &mem,
                            reverse: None,
                            meter: Some(&meter),
                            // VEO slot rotation delivers seqs in order,
                            // so recovery re-sends dedup by watermark.
                            dedup: true,
                        },
                        &chan,
                    )
                });
            proc.load_library(lib);
            let ctx = proc.open_context();
            let init = proc.get_sym("ham_comm_init").expect("C-API symbol");
            let req = ctx
                .call_async(
                    &init,
                    ArgsStack::new()
                        .push_u64(recv_base.get())
                        .push_u64(send_base.get())
                        .push_u64(cfg.recv_slots as u64)
                        .push_u64(cfg.send_slots as u64)
                        .push_u64(stride),
                )
                .expect("init call");
            ctx.wait_result(req).expect("init result");
            let main = proc.get_sym("ham_main").expect("ham_main symbol");
            ctx.call_async(&main, ArgsStack::new())
                .expect("start ham_main");

            channels.push(TargetChan {
                recv: Slots {
                    base: recv_base,
                    count: cfg.recv_slots,
                    stride,
                },
                send: Slots {
                    base: send_base,
                    count: cfg.send_slots,
                    stride,
                },
                ctx,
                chan: {
                    let mut c = ChannelCore::bounded(cfg.recv_slots, cfg.send_slots, cfg.msg_bytes)
                        .with_batching(cfg.batch);
                    if cfg.credits > 0 {
                        c = c.with_credit_limit(cfg.credits);
                    }
                    match policy {
                        Some(p) => c.with_recovery(p),
                        None => c,
                    }
                },
            });
        }
        Arc::new(Self {
            core,
            cfg,
            channels,
            plan,
        })
    }

    /// The shared host-side core.
    pub fn core(&self) -> &AuroraCore {
        &self.core
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    fn chan(&self, node: NodeId) -> Result<&TargetChan, OffloadError> {
        self.core.target(node)?;
        Ok(&self.channels[node.0 as usize - 1])
    }
}

impl CommBackend for VeoBackend {
    fn num_targets(&self) -> u16 {
        self.core.num_targets()
    }

    fn host_registry(&self) -> &Arc<Registry> {
        self.core.host_registry()
    }

    fn descriptor(&self, node: NodeId) -> Result<NodeDescriptor, OffloadError> {
        self.core.descriptor(node)
    }

    fn channel(&self, target: NodeId) -> Result<&ChannelCore, OffloadError> {
        Ok(&self.chan(target)?.chan)
    }

    /// Two `veo_write_mem`s: the message body, then the 16-byte ts+flag
    /// publish (the flag embeds its own quoted landing time).
    fn send_frame(
        &self,
        target: NodeId,
        res: &Reservation,
        header: &MsgHeader,
        frame: &[u8],
    ) -> Result<(), OffloadError> {
        let chan = self.chan(target)?;
        if !chan.ctx.is_alive() {
            return Err(OffloadError::TargetLost(target));
        }
        // Injected TLP drop: the frame vanishes in transit — the slot
        // stays reserved, the flag never lands, and only a recovery
        // re-send (same seq, next attempt) can complete the offload.
        // Control frames are exempt: they are the teardown path, the
        // one frame kind the recovery policy cannot re-send.
        if matches!(header.kind, MsgKind::Offload | MsgKind::Batch)
            && self
                .plan
                .drop_frame(target.0, res.seq, res.attempt, self.core.host_clock().now())
        {
            return Ok(());
        }
        let proc = &self.core.target(target)?.proc;
        let r = res.recv_slot;

        // Write 1: the message body — the engine-assembled wire frame,
        // verbatim.
        let vh = self.core.machine().vh(self.core.host_socket());
        self.core.with_staging(frame.len() as u64, |staging| {
            vh.write(staging, frame)
                .map_err(|e| OffloadError::Mem(e.to_string()))?;
            proc.write_mem(staging, chan.recv.msg(r), frame.len() as u64)
                .map_err(|e| OffloadError::Backend(e.to_string()))?;
            Ok(())
        })?;

        // Write 2: ts + flag, priced as one 16-byte VEO write. The DMA
        // manager is quoted first so the flag's landing time can be
        // embedded; the raw stores happen payload-before-flag.
        self.core.with_staging(SLOT_META, |staging| {
            let host = HostSlice {
                vh: Arc::clone(vh),
                vaddr: staging,
            };
            let landing = self
                .core
                .machine()
                .veos(proc.ve_id())
                .dma()
                .quote_write(self.core.host_clock(), &host, proc.process(), SLOT_META)
                .map_err(|e| OffloadError::Backend(e.to_string()))?;
            proc.process()
                .write(chan.recv.ts(r), &landing.as_ps().to_le_bytes())
                .map_err(|e| OffloadError::Mem(e.to_string()))?;
            proc.process()
                .store_flag(chan.recv.flag(r), res.seq + 1)
                .map_err(|e| OffloadError::Mem(e.to_string()))?;
            Ok(())
        })
    }

    /// Free peek of the result flag (`seq+1` = ready). A dead
    /// `ham_main` with no result pending errors the offload out.
    fn poll_flags(
        &self,
        target: NodeId,
        seq: u64,
        entry: &PendingEntry,
    ) -> Result<Option<u64>, OffloadError> {
        let chan = self.chan(target)?;
        let proc = &self.core.target(target)?.proc;
        let ready = proc
            .process()
            .load_flag(chan.send.flag(entry.send_slot))
            .map(|f| f == seq + 1)
            .unwrap_or(false);
        if ready {
            Ok(Some(0))
        } else if chan.ctx.is_alive() {
            Ok(None)
        } else {
            Err(OffloadError::TargetLost(target))
        }
    }

    /// Fetch a completed result: join its timestamp, pay the two VEO
    /// reads of the protocol.
    fn fetch_frame(
        &self,
        target: NodeId,
        seq: u64,
        entry: &PendingEntry,
        _token: u64,
    ) -> Result<Vec<u8>, OffloadError> {
        let chan = self.chan(target)?;
        let proc = &self.core.target(target)?.proc;
        let s = entry.send_slot;

        // The flag is set (caller peeked); join its landing time.
        let mut ts_bytes = [0u8; 8];
        proc.process()
            .read(chan.send.ts(s), &mut ts_bytes)
            .map_err(|e| OffloadError::Mem(e.to_string()))?;
        self.core
            .host_clock()
            .join(SimTime::from_ps(u64::from_le_bytes(ts_bytes)));

        let vh = self.core.machine().vh(self.core.host_socket());
        // Charged read 1: flag + ts.
        self.core.with_staging(SLOT_META, |staging| {
            proc.read_mem(chan.send.flag(s), staging, SLOT_META)
                .map_err(|e| OffloadError::Backend(e.to_string()))?;
            Ok(())
        })?;
        // Peek the header (free) to size the charged message read.
        let mut hdr_bytes = [0u8; HEADER_BYTES];
        proc.process()
            .read(chan.send.msg(s), &mut hdr_bytes)
            .map_err(|e| OffloadError::Mem(e.to_string()))?;
        let header =
            MsgHeader::decode(&hdr_bytes).map_err(|e| OffloadError::Backend(e.to_string()))?;
        debug_assert_eq!(header.seq, seq, "result sequence mismatch");
        let total = HEADER_BYTES as u64 + header.payload_len as u64;
        // Charged read 2: header + payload.
        let mut frame = vec![0u8; header.payload_len as usize];
        self.core.with_staging(total, |staging| {
            proc.read_mem(chan.send.msg(s), staging, total)
                .map_err(|e| OffloadError::Backend(e.to_string()))?;
            let mut all = vec![0u8; total as usize];
            vh.read(staging, &mut all)
                .map_err(|e| OffloadError::Mem(e.to_string()))?;
            frame.copy_from_slice(&all[HEADER_BYTES..]);
            Ok(())
        })?;
        Ok(frame)
    }

    fn allocate(&self, node: NodeId, bytes: u64) -> Result<u64, OffloadError> {
        self.core.allocate(node, bytes)
    }

    fn free(&self, node: NodeId, addr: u64) -> Result<(), OffloadError> {
        self.core.free(node, addr)
    }

    fn put_bytes(&self, dst: RawBuffer, data: &[u8]) -> Result<(), OffloadError> {
        self.core.put_bytes(dst, data)
    }

    fn get_bytes(&self, src: RawBuffer, out: &mut [u8]) -> Result<(), OffloadError> {
        self.core.get_bytes(src, out)
    }

    fn host_clock(&self) -> &Clock {
        self.core.host_clock()
    }

    fn metrics(&self) -> &aurora_sim_core::BackendMetrics {
        self.core.metrics()
    }

    /// Kill the VE process abruptly: `ham_main`'s polling loop observes
    /// the plan's kill bit and panics, which clears the context's
    /// liveness flag; the next host flag sweep sees the death and
    /// evicts the channel with [`OffloadError::TargetLost`].
    fn kill_target(&self, target: NodeId) -> Result<(), OffloadError> {
        self.chan(target)?;
        self.plan.kill(target.0, self.core.host_clock().now());
        Ok(())
    }

    fn shutdown(&self) {
        for node in 1..=self.num_targets() {
            let target = NodeId(node);
            let Ok(chan) = self.chan(target) else {
                continue;
            };
            if chan.chan.begin_shutdown() {
                continue;
            }
            // Deliver the termination message (control frames bypass the
            // shutdown gate; a dead target is ignored), then stop
            // ham_main and join the context worker.
            if engine::post_control(self, target).is_err() && chan.ctx.is_alive() {
                // The control frame cannot reach the target (evicted
                // channel: its slot cursor is wedged on a lost frame's
                // hole). Reap the stranded VE process — the moral
                // equivalent of SIGKILLing an unreachable peer — or
                // the context join below would wait forever.
                self.plan.kill(node, self.core.host_clock().now());
            }
            chan.ctx.close();
        }
    }
}

impl Drop for VeoBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The VE side of the protocol: in-order polling of local recv flags.
struct VeSideChannel {
    proc: Arc<VeProcess>,
    recv: Slots,
    send: Slots,
    cfg: ProtocolConfig,
    next: std::cell::Cell<u64>,
    node: u16,
    plan: Arc<FaultPlan>,
}

impl VeSideChannel {
    /// Consume the published message in recv slot `i`: join its landing
    /// time, charge one local read, copy it into a pooled body, release
    /// the slot. `None` means the process died mid-read.
    fn consume(&self, i: usize, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)> {
        // Arrival-driven virtual cost: join the flag's landing time and
        // charge one local read.
        let mut ts = [0u8; 8];
        self.proc.read(self.recv.ts(i), &mut ts).ok()?;
        self.proc.clock().join_then_advance(
            SimTime::from_ps(u64::from_le_bytes(ts)),
            calib::HAM_LOCAL_MEM_TOUCH,
        );
        let mut hdr = [0u8; HEADER_BYTES];
        self.proc.read(self.recv.msg(i), &mut hdr).ok()?;
        let header = MsgHeader::decode(&hdr).ok()?;
        if header.payload_len as usize > self.cfg.msg_bytes {
            return None; // corrupt header: stop the loop loudly.
        }
        let mut payload = pool.checkout();
        payload.resize(header.payload_len as usize, 0);
        self.proc
            .read(
                self.recv.msg(i).offset(HEADER_BYTES as u64),
                &mut payload[..],
            )
            .ok()?;
        // Release the slot for host reuse.
        self.proc.store_flag(self.recv.flag(i), 0).ok()?;
        self.next.set(self.next.get() + 1);
        Some((header, payload))
    }

    fn check_killed(&self) {
        if self.plan.killed(self.node) {
            // Injected VE process death: die like a crash, not a
            // shutdown — the panic clears the VEO context's
            // liveness flag and the host evicts the channel.
            panic!("fault injection: VE process {} killed", self.node);
        }
    }
}

impl TargetChannel for VeSideChannel {
    fn recv(&self, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)> {
        let i = (self.next.get() % self.recv.count as u64) as usize;
        let flag_addr = self.recv.flag(i);
        // Poll (real, zero virtual cost) until the host publishes.
        loop {
            self.check_killed();
            match self.proc.load_flag(flag_addr) {
                Ok(0) => std::thread::yield_now(),
                Ok(_seq_plus_one) => break,
                Err(_) => return None,
            }
        }
        self.consume(i, pool)
    }

    fn try_recv(&self, pool: &Arc<FramePool>) -> Polled {
        self.check_killed();
        let i = (self.next.get() % self.recv.count as u64) as usize;
        // One free peek: the host publishes slots in rotation order, so
        // an unset flag here means nothing further has arrived yet. A
        // message whose landing time is still ahead of the device clock
        // has not arrived *in virtual time* — consuming it would stall
        // the clock on the join instead of overlapping the arrival with
        // already-drained work, so it waits for a later window (or for
        // the blocking recv, where the device is genuinely idle).
        match self.proc.load_flag(self.recv.flag(i)) {
            Ok(0) => Polled::Empty,
            Ok(_seq_plus_one) => {
                let mut ts = [0u8; 8];
                if self.proc.read(self.recv.ts(i), &mut ts).is_err() {
                    return Polled::Closed;
                }
                if u64::from_le_bytes(ts) > self.proc.clock().now().as_ps() {
                    return Polled::Empty;
                }
                match self.consume(i, pool) {
                    Some((h, p)) => Polled::Msg(h, p),
                    None => Polled::Closed,
                }
            }
            Err(_) => Polled::Closed,
        }
    }

    fn send_result(&self, reply_slot: u16, seq: u64, payload: Vec<u8>) {
        let s = reply_slot as usize;
        debug_assert!(s < self.send.count);
        // Oversized results become error frames (see the DMA channel).
        let payload = if payload.len() > self.cfg.msg_bytes {
            ham_offload::target_loop::frame_result(Err(ham::HamError::Wire(format!(
                "result of {} bytes exceeds the protocol's {}-byte slots; \
                     return bulk data via target buffers + get",
                payload.len(),
                self.cfg.msg_bytes
            ))))
        } else {
            payload
        };
        // Target-side framework cost: dispatch, execution wrapper,
        // result serialisation.
        let clock = self.proc.clock();
        clock.advance(calib::HAM_TARGET_OVERHEAD);
        let header = MsgHeader {
            handler_key: HandlerKey(0),
            payload_len: payload.len() as u32,
            kind: MsgKind::Result,
            reply_slot,
            corr: 0,
            seq,
        };
        let mut bytes = header.encode().to_vec();
        bytes.extend_from_slice(&payload);
        self.proc
            .write(self.send.msg(s), &bytes)
            .expect("result write");
        let landing = clock.advance(calib::HAM_LOCAL_MEM_TOUCH);
        self.proc
            .write(self.send.ts(s), &landing.as_ps().to_le_bytes())
            .expect("result ts");
        self.proc
            .store_flag(self.send.flag(s), seq + 1)
            .expect("result flag");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham::{f2f, ham_kernel};
    use ham_offload::Offload;
    use veos_sim::MachineConfig;

    ham_kernel! {
        pub fn empty(_ctx) -> () {}
    }

    ham_kernel! {
        pub fn inner_product(ctx, a: u64, b: u64, n: u64) -> f64 {
            let x = ctx.mem.read_f64s(a, n as usize).unwrap();
            let y = ctx.mem.read_f64s(b, n as usize).unwrap();
            x.iter().zip(&y).map(|(p, q)| p * q).sum()
        }
    }

    fn machine() -> Arc<AuroraMachine> {
        AuroraMachine::small(
            1,
            MachineConfig {
                hbm_bytes: 16 << 20,
                vh_bytes: 32 << 20,
                ..Default::default()
            },
        )
    }

    fn backend(m: Arc<AuroraMachine>) -> Arc<VeoBackend> {
        VeoBackend::spawn(m, 0, &[0], ProtocolConfig::default(), |b| {
            b.register::<empty>();
            b.register::<inner_product>();
        })
    }

    #[test]
    fn empty_offload_costs_fig9_ham_veo() {
        let o = Offload::new(backend(machine()));
        let t0 = o.backend().host_clock().now();
        o.sync(NodeId(1), f2f!(empty)).unwrap();
        let cost = o.backend().host_clock().now() - t0;
        // Fig. 9: 432 us (5.4x the native VEO call), ±2 %.
        let us = cost.as_us_f64();
        assert!(
            (us - 432.0).abs() / 432.0 < 0.02,
            "HAM/VEO offload = {us} us"
        );
        o.shutdown();
    }

    #[test]
    fn inner_product_over_veo_protocol() {
        let o = Offload::new(backend(machine()));
        let t = NodeId(1);
        let a = o.allocate::<f64>(t, 128).unwrap();
        let b = o.allocate::<f64>(t, 128).unwrap();
        let xs: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..128).map(|i| (i as f64) * 0.5).collect();
        o.put(&xs, a).unwrap();
        o.put(&ys, b).unwrap();
        let r = o
            .sync(t, f2f!(inner_product, a.addr(), b.addr(), 128))
            .unwrap();
        let expect: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        assert_eq!(r, expect);
        o.shutdown();
    }

    #[test]
    fn pipelined_async_offloads() {
        let o = Offload::new(backend(machine()));
        let t = NodeId(1);
        let futures: Vec<_> = (0..20).map(|_| o.async_(t, f2f!(empty)).unwrap()).collect();
        for f in futures {
            f.get().unwrap();
        }
        o.shutdown();
    }

    #[test]
    fn wait_all_over_veo_protocol() {
        let o = Offload::new(backend(machine()));
        let t = NodeId(1);
        let futures: Vec<_> = (0..20).map(|_| o.async_(t, f2f!(empty)).unwrap()).collect();
        for r in o.wait_all(futures) {
            r.unwrap();
        }
        o.shutdown();
    }

    #[test]
    fn oversized_message_is_rejected() {
        let o = Offload::new(VeoBackend::spawn(
            machine(),
            0,
            &[0],
            ProtocolConfig {
                msg_bytes: 256,
                ..Default::default()
            },
            |b| {
                b.register::<big_args>();
            },
        ));
        let r = o.sync(NodeId(1), f2f!(big_args, vec![0u8; 1000]));
        assert!(matches!(r, Err(OffloadError::Backend(m)) if m.contains("exceeds")));
        o.shutdown();
    }

    ham_kernel! {
        pub fn big_args(_ctx, data: Vec<u8>) -> u64 { data.len() as u64 }
    }

    #[test]
    fn post_after_shutdown_fails() {
        let o = Offload::new(backend(machine()));
        o.shutdown();
        assert!(matches!(
            o.sync(NodeId(1), f2f!(empty)),
            Err(OffloadError::Shutdown)
        ));
    }

    #[test]
    fn second_socket_pays_upi() {
        // On a 2-socket machine, offloading from socket 1 to VE 0 must
        // not be cheaper than from socket 0 (UPI hops).
        let m = AuroraMachine::a300_8(MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        });
        let near = VeoBackend::spawn(Arc::clone(&m), 0, &[0], ProtocolConfig::default(), |b| {
            b.register::<empty>();
        });
        let far = VeoBackend::spawn(m, 1, &[0], ProtocolConfig::default(), |b| {
            b.register::<empty>();
        });
        let on = Offload::new(near);
        let of = Offload::new(far);
        let t0 = on.backend().host_clock().now();
        on.sync(NodeId(1), f2f!(empty)).unwrap();
        let near_cost = on.backend().host_clock().now() - t0;
        let t1 = of.backend().host_clock().now();
        of.sync(NodeId(1), f2f!(empty)).unwrap();
        let far_cost = of.backend().host_clock().now() - t1;
        assert!(far_cost >= near_cost, "near {near_cost}, far {far_cost}");
        on.shutdown();
        of.shutdown();
    }
}
