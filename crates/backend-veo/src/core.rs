//! Compatibility re-exports: the shared Aurora host-side core moved to
//! the `aurora-proto` crate (and the slot-layout constants to
//! `ham_offload::chan`) so backends depend only downward. Existing
//! `ham_backend_veo::core::*` paths keep working through this shim.

pub use aurora_proto::{
    AuroraCore, ProtocolConfig, TargetCore, VeComputeMeter, VeTargetMemory, HOST_SEED, SLOT_META,
    VE_SEED_BASE,
};
