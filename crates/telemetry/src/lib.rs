//! Flight-recorder telemetry for the simulation stack.
//!
//! Every simulated hardware component records *spans* — costed windows of
//! virtual time such as a uDMA descriptor, a PCIe wire occupancy, or the
//! HAM framework overhead — tagged with the offload they belong to and the
//! node they ran on. A [`TraceSession`] collects those spans and exports
//! them as a text timeline, JSONL, or a Chrome trace-event file loadable
//! in Perfetto (`ui.perfetto.dev`), one track per simulated engine.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** When no session is active, [`record`] is a
//!    single relaxed atomic load — no allocation, no lock, no branch on
//!    thread-local state. Simulation timing tests rely on tracing having
//!    zero *virtual*-time cost either way; this keeps the *wall-clock*
//!    cost negligible too.
//! 2. **Contention-free hot path.** Each recording thread appends to its
//!    own shard; threads never share an event buffer. The old
//!    implementation funnelled every event through one global mutex.
//! 3. **Sessions are serialized.** Recording state is process-global, so
//!    [`TraceSession::start`] holds a lock for the session's lifetime:
//!    concurrent tests queue up instead of polluting each other's traces.
//!    Events recorded outside any session are dropped; events from a
//!    previous session are never visible to the next one.
//!
//! Times are raw `u64` picoseconds — this crate sits *below* `sim-core`
//! (which re-exports it as `aurora_sim_core::trace`) and must not depend
//! on its `SimTime`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod export;
pub mod health;
pub mod json;
pub mod metrics;

pub use export::Trace;
pub use health::{HealthEvent, HealthEventKind, HealthRegistry, TargetState};
pub use metrics::{AtomicHistogram, Counter, Gauge, HISTOGRAM_BUCKETS};

use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Node id used when a span is recorded outside any [`node_scope`].
pub const NODE_UNKNOWN: u16 = u16::MAX;

/// Correlation id of one offload (an `async_`/`sync` call), unique within
/// the process. Id 0 means "no offload" and is never handed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OffloadId(pub u64);

impl core::fmt::Display for OffloadId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "of{}", self.0)
    }
}

static NEXT_OFFLOAD: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh offload correlation id (monotonic, never 0).
pub fn next_offload_id() -> OffloadId {
    OffloadId(NEXT_OFFLOAD.fetch_add(1, Ordering::Relaxed))
}

/// One recorded span on the virtual timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Component category, `"<engine>.<phase>"` (e.g. `"udma.read"`).
    pub category: &'static str,
    /// Correlation id of the offload this span served (0 = unattributed).
    pub offload: u64,
    /// Node the work ran on ([`NODE_UNKNOWN`] if outside a `node_scope`).
    pub node: u16,
    /// Operation size in bytes (0 when not applicable).
    pub bytes: u64,
    /// Virtual start time in picoseconds.
    pub start_ps: u64,
    /// Virtual end time in picoseconds.
    pub end_ps: u64,
}

impl Event {
    /// Span duration in picoseconds.
    pub fn duration_ps(&self) -> u64 {
        self.end_ps.saturating_sub(self.start_ps)
    }

    /// The engine: the category up to the first `'.'` (`"udma.read"` →
    /// `"udma"`). Engines map to Perfetto tracks.
    pub fn engine(&self) -> &'static str {
        match self.category.split_once('.') {
            Some((engine, _)) => engine,
            None => self.category,
        }
    }

    /// The phase: the category after the first `'.'` (`"udma.read"` →
    /// `"read"`).
    pub fn phase(&self) -> &'static str {
        match self.category.split_once('.') {
            Some((_, phase)) => phase,
            None => self.category,
        }
    }
}

// --- recording state -------------------------------------------------------

/// Active session id; 0 = tracing off. The *only* state the disabled
/// [`record`] path touches.
static ACTIVE: AtomicU64 = AtomicU64::new(0);
static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);
/// Serializes sessions: held for the lifetime of each [`TraceSession`].
static SESSION_LOCK: Mutex<()> = Mutex::new(());
/// Registry of every thread's shard, for end-of-session draining.
static SHARDS: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());

struct Shard {
    /// `(session, event)` pairs; the session tag lets a drain pick out
    /// exactly its own events even if stale ones linger from a session
    /// that was dropped without `finish()`.
    events: Mutex<Vec<(u64, Event)>>,
}

thread_local! {
    static LOCAL: Arc<Shard> = {
        let shard = Arc::new(Shard {
            events: Mutex::new(Vec::new()),
        });
        SHARDS.lock().push(Arc::clone(&shard));
        shard
    };
    /// `(offload, node)` attribution for spans recorded by this thread.
    static CONTEXT: Cell<(u64, u16)> = const { Cell::new((0, NODE_UNKNOWN)) };
}

/// True while a trace session is active.
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Record one span (no-op unless a session is active). Offload and node
/// attribution come from the calling thread's [`offload_scope`] /
/// [`node_scope`].
#[inline]
pub fn record(category: &'static str, bytes: u64, start_ps: u64, end_ps: u64) {
    let session = ACTIVE.load(Ordering::Relaxed);
    if session == 0 {
        return;
    }
    record_slow(session, category, bytes, start_ps, end_ps);
}

#[cold]
fn record_slow(session: u64, category: &'static str, bytes: u64, start_ps: u64, end_ps: u64) {
    let (offload, node) = CONTEXT.with(Cell::get);
    let event = Event {
        category,
        offload,
        node,
        bytes,
        start_ps,
        end_ps,
    };
    LOCAL.with(|shard| shard.events.lock().push((session, event)));
}

fn drain_session(session: u64) -> Vec<Event> {
    let mut out = Vec::new();
    for shard in SHARDS.lock().iter() {
        let mut events = shard.events.lock();
        // Session ids are monotonic: anything tagged differently is stale
        // leftovers from an abandoned session — discard it all.
        for (tag, event) in events.drain(..) {
            if tag == session {
                out.push(event);
            }
        }
    }
    out
}

// --- sessions --------------------------------------------------------------

/// RAII recording session. Only one session can exist at a time;
/// [`TraceSession::start`] blocks until the previous one ends, which makes
/// traced tests safe to run concurrently. Dropping the session without
/// [`TraceSession::finish`] discards its events.
pub struct TraceSession {
    session: u64,
    _guard: parking_lot::MutexGuard<'static, ()>,
}

impl TraceSession {
    /// Begin recording (waits for any other live session to end).
    pub fn start() -> TraceSession {
        let guard = SESSION_LOCK.lock();
        let session = NEXT_SESSION.fetch_add(1, Ordering::Relaxed);
        ACTIVE.store(session, Ordering::SeqCst);
        TraceSession {
            session,
            _guard: guard,
        }
    }

    /// Stop recording and return the captured spans sorted by
    /// `(start, end)`.
    pub fn finish(mut self) -> Trace {
        ACTIVE.store(0, Ordering::SeqCst);
        let mut events = drain_session(self.session);
        self.session = 0; // Drop must not re-drain
        events.sort_by_key(|e| (e.start_ps, e.end_ps, e.category));
        Trace { events }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        ACTIVE.store(0, Ordering::SeqCst);
        if self.session != 0 {
            drop(drain_session(self.session));
        }
    }
}

// --- thread attribution ----------------------------------------------------

/// Restores the previous `(offload, node)` attribution on drop.
pub struct ContextGuard {
    prev: (u64, u16),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| c.set(self.prev));
    }
}

/// Attribute spans recorded by this thread to `id` until the guard drops.
pub fn offload_scope(id: OffloadId) -> ContextGuard {
    CONTEXT.with(|c| {
        let prev = c.get();
        c.set((id.0, prev.1));
        ContextGuard { prev }
    })
}

/// Attribute spans recorded by this thread to node `node` until the guard
/// drops (target main loops pin this once at startup).
pub fn node_scope(node: u16) -> ContextGuard {
    CONTEXT.with(|c| {
        let prev = c.get();
        c.set((prev.0, node));
        ContextGuard { prev }
    })
}

/// The offload id spans on this thread are currently attributed to
/// (0 if none).
pub fn current_offload() -> u64 {
    CONTEXT.with(|c| c.get().0)
}

// --- late attribution ------------------------------------------------------

/// A position in the calling thread's recording shard; see [`mark`].
pub struct Mark {
    len: usize,
}

/// Remember the current position of this thread's shard. A receiver that
/// learns the offload id only after decoding a message header records the
/// decode-side spans first, then back-fills attribution with
/// [`retag_since`].
pub fn mark() -> Mark {
    if !enabled() {
        return Mark { len: 0 };
    }
    Mark {
        len: LOCAL.with(|shard| shard.events.lock().len()),
    }
}

/// Attribute every span this thread recorded since `mark` that has no
/// offload id yet to `id`.
pub fn retag_since(mark: &Mark, id: OffloadId) {
    if !enabled() {
        return;
    }
    LOCAL.with(|shard| {
        let mut events = shard.events.lock();
        let start = mark.len.min(events.len());
        for (_, event) in &mut events[start..] {
            if event.offload == 0 {
                event.offload = id.0;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this binary run concurrently, and a `record` call made
    /// outside any session (deliberately, in `disabled_recording_is_dropped`)
    /// can land in whichever session happens to be active. Each test
    /// therefore filters the trace to its own category prefix.
    fn own(trace: &Trace, prefix: &str) -> Vec<Event> {
        trace
            .events
            .iter()
            .filter(|e| e.category.starts_with(prefix))
            .cloned()
            .collect()
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_offload_id();
        let b = next_offload_id();
        assert_ne!(a.0, 0);
        assert_ne!(a, b);
        assert_eq!(format!("{a}"), format!("of{}", a.0));
    }

    #[test]
    fn engine_and_phase_split() {
        let e = Event {
            category: "udma.read",
            offload: 0,
            node: 1,
            bytes: 64,
            start_ps: 0,
            end_ps: 10,
        };
        assert_eq!(e.engine(), "udma");
        assert_eq!(e.phase(), "read");
        let bare = Event {
            category: "compute",
            ..e
        };
        assert_eq!(bare.engine(), "compute");
        assert_eq!(bare.phase(), "compute");
    }

    #[test]
    fn disabled_recording_is_dropped() {
        record("dropped.span", 1, 0, 10);
        let session = TraceSession::start();
        let trace = session.finish();
        assert!(own(&trace, "dropped.").is_empty());
    }

    #[test]
    fn session_captures_and_sorts() {
        let session = TraceSession::start();
        record("sorted.second", 8, 100, 200);
        record("sorted.first", 8, 50, 90);
        let events = own(&session.finish(), "sorted.");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].category, "sorted.first");
        assert_eq!(events[1].duration_ps(), 100);
    }

    #[test]
    fn sessions_do_not_leak_into_each_other() {
        let s1 = TraceSession::start();
        record("leak.one", 0, 0, 1);
        drop(s1); // abandoned: events discarded
        let s2 = TraceSession::start();
        record("leak.two", 0, 0, 1);
        let events = own(&s2.finish(), "leak.");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].category, "leak.two");
    }

    #[test]
    fn scopes_attribute_and_restore() {
        let session = TraceSession::start();
        let id = next_offload_id();
        {
            let _node = node_scope(3);
            let _of = offload_scope(id);
            assert_eq!(current_offload(), id.0);
            record("scope.inner", 0, 0, 1);
        }
        assert_eq!(current_offload(), 0);
        record("scope.outer", 0, 2, 3);
        let events = own(&session.finish(), "scope.");
        assert_eq!(events[0].offload, id.0);
        assert_eq!(events[0].node, 3);
        assert_eq!(events[1].offload, 0);
        assert_eq!(events[1].node, NODE_UNKNOWN);
    }

    #[test]
    fn retag_backfills_only_untagged() {
        let session = TraceSession::start();
        let m = mark();
        record("retag.early", 0, 0, 1);
        let other = next_offload_id();
        {
            let _of = offload_scope(other);
            record("retag.tagged", 0, 1, 2);
        }
        let id = next_offload_id();
        retag_since(&m, id);
        let events = own(&session.finish(), "retag.");
        assert_eq!(events[0].offload, id.0, "untagged span back-filled");
        assert_eq!(events[1].offload, other.0, "tagged span untouched");
    }

    #[test]
    fn cross_thread_events_are_collected() {
        let session = TraceSession::start();
        record("xthread.host", 0, 0, 1);
        std::thread::spawn(|| {
            let _node = node_scope(7);
            record("xthread.worker", 0, 1, 2);
        })
        .join()
        .unwrap();
        let events = own(&session.finish(), "xthread.");
        let cats: Vec<_> = events.iter().map(|e| e.category).collect();
        assert_eq!(cats, vec!["xthread.host", "xthread.worker"]);
        assert_eq!(events[1].node, 7);
    }
}
