//! Trace containers and exporters.
//!
//! A [`Trace`] is the result of a finished
//! [`TraceSession`](crate::TraceSession). Three exports cover the three
//! consumers:
//!
//! * [`Trace::render`] — aligned text timeline for terminals and logs;
//! * [`Trace::to_chrome_json`] — Chrome trace-event JSON, loadable in
//!   Perfetto (`ui.perfetto.dev`) or `chrome://tracing`, one process per
//!   simulated node and one track per engine;
//! * [`Trace::to_jsonl`] — one JSON object per span, for ad-hoc analysis
//!   with line-oriented tools.

use crate::json::escape;
use crate::{Event, NODE_UNKNOWN};

/// A finished recording: spans sorted by `(start, end)`.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The captured spans.
    pub events: Vec<Event>,
}

/// Format picoseconds with an auto-selected unit (mirrors `SimTime`'s
/// `Display` without depending on `sim-core`).
fn fmt_ps(ps: u64) -> String {
    if ps == 0 {
        "0s".into()
    } else if ps < 1_000 {
        format!("{ps}ps")
    } else if ps < 1_000_000 {
        format!("{:.3}ns", ps as f64 / 1e3)
    } else if ps < 1_000_000_000 {
        format!("{:.3}us", ps as f64 / 1e6)
    } else {
        format!("{:.3}ms", ps as f64 / 1e9)
    }
}

impl Trace {
    /// Number of captured spans.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Spans attributed to offload `id`, in timeline order.
    pub fn events_for_offload(&self, id: u64) -> Vec<&Event> {
        self.events.iter().filter(|e| e.offload == id).collect()
    }

    /// Distinct non-zero offload ids present, ascending.
    pub fn offload_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .events
            .iter()
            .map(|e| e.offload)
            .filter(|&id| id != 0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Distinct engines present, ascending by name. The position of an
    /// engine in this list is its `tid` in the Chrome export.
    pub fn engines(&self) -> Vec<&'static str> {
        let mut engines: Vec<&'static str> = self.events.iter().map(Event::engine).collect();
        engines.sort_unstable();
        engines.dedup();
        engines
    }

    /// Distinct nodes present, ascending ([`NODE_UNKNOWN`] last if any).
    pub fn nodes(&self) -> Vec<u16> {
        let mut nodes: Vec<u16> = self.events.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Aligned text timeline with attribution columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>8} {:>6} {:>10} {:>14} {:>14} {:>12}\n",
            "component", "offload", "node", "bytes", "start", "end", "duration"
        ));
        for e in &self.events {
            let offload = if e.offload == 0 {
                "-".to_string()
            } else {
                format!("of{}", e.offload)
            };
            let node = if e.node == NODE_UNKNOWN {
                "-".to_string()
            } else {
                e.node.to_string()
            };
            out.push_str(&format!(
                "{:<20} {:>8} {:>6} {:>10} {:>14} {:>14} {:>12}\n",
                e.category,
                offload,
                node,
                e.bytes,
                fmt_ps(e.start_ps),
                fmt_ps(e.end_ps),
                fmt_ps(e.duration_ps()),
            ));
        }
        out
    }

    /// Chrome trace-event JSON (the Perfetto-compatible legacy format).
    ///
    /// Layout: `pid` = simulated node, `tid` = engine (index into
    /// [`Trace::engines`]); every span is a complete event (`"ph":"X"`)
    /// with microsecond `ts`/`dur` and `offload_id`/`bytes` in `args`.
    /// Metadata events (`"ph":"M"`) name the processes and tracks.
    pub fn to_chrome_json(&self) -> String {
        let engines = self.engines();
        let tid_of = |e: &Event| -> usize {
            engines
                .iter()
                .position(|&name| name == e.engine())
                .unwrap_or(0)
        };
        let mut records = Vec::new();
        for node in self.nodes() {
            let name = if node == NODE_UNKNOWN {
                "node ? (unattributed)".to_string()
            } else if node == 0 {
                "node 0 (host)".to_string()
            } else {
                format!("node {node} (VE)")
            };
            records.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                chrome_pid(node),
                escape(&name)
            ));
        }
        for (tid, engine) in engines.iter().enumerate() {
            for node in self.nodes() {
                records.push(format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    chrome_pid(node),
                    escape(engine)
                ));
            }
        }
        for e in &self.events {
            records.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\
                 \"ts\":{:.6},\"dur\":{:.6},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"offload_id\":{},\"bytes\":{}}}}}",
                escape(e.category),
                escape(e.engine()),
                e.start_ps as f64 / 1e6,
                e.duration_ps() as f64 / 1e6,
                chrome_pid(e.node),
                tid_of(e),
                e.offload,
                e.bytes,
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n",
            records.join(",\n")
        )
    }

    /// One JSON object per span, newline-separated.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{{\"category\":\"{}\",\"engine\":\"{}\",\"phase\":\"{}\",\
                 \"offload_id\":{},\"node\":{},\"bytes\":{},\
                 \"start_ps\":{},\"end_ps\":{},\"dur_ps\":{}}}\n",
                escape(e.category),
                escape(e.engine()),
                escape(e.phase()),
                e.offload,
                e.node,
                e.bytes,
                e.start_ps,
                e.end_ps,
                e.duration_ps(),
            ));
        }
        out
    }
}

/// `pid` used in the Chrome export: nodes map to themselves,
/// [`NODE_UNKNOWN`] to a sentinel that sorts last.
fn chrome_pid(node: u16) -> u32 {
    if node == NODE_UNKNOWN {
        9_999
    } else {
        node as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Trace {
        Trace {
            events: vec![
                Event {
                    category: "ham.host_overhead",
                    offload: 7,
                    node: 0,
                    bytes: 0,
                    start_ps: 0,
                    end_ps: 1_000_000,
                },
                Event {
                    category: "udma.read",
                    offload: 7,
                    node: 1,
                    bytes: 64,
                    start_ps: 1_000_000,
                    end_ps: 2_500_000,
                },
                Event {
                    category: "udma.write",
                    offload: 0,
                    node: NODE_UNKNOWN,
                    bytes: 8,
                    start_ps: 2_500_000,
                    end_ps: 2_600_000,
                },
            ],
        }
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.offload_ids(), vec![7]);
        assert_eq!(t.events_for_offload(7).len(), 2);
        assert_eq!(t.engines(), vec!["ham", "udma"]);
        assert_eq!(t.nodes(), vec![0, 1, NODE_UNKNOWN]);
    }

    #[test]
    fn text_render_has_attribution_columns() {
        let s = sample().render();
        assert!(s.contains("component"));
        assert!(s.contains("offload"));
        assert!(s.contains("of7"));
        assert!(s.contains("udma.read"));
        assert!(s.contains("1.500us"), "duration column:\n{s}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_fields() {
        let doc = sample().to_chrome_json();
        let v = json::parse(&doc).expect("chrome export must parse");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let complete: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3);
        let read = complete
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("udma.read"))
            .unwrap();
        assert_eq!(read.get("ts").unwrap().as_f64(), Some(1.0), "ts in us");
        assert_eq!(read.get("dur").unwrap().as_f64(), Some(1.5));
        assert_eq!(read.get("pid").unwrap().as_u64(), Some(1));
        let args = read.get("args").unwrap();
        assert_eq!(args.get("offload_id").unwrap().as_u64(), Some(7));
        assert_eq!(args.get("bytes").unwrap().as_u64(), Some(64));
        // tid is the index of "udma" in the sorted engine list.
        assert_eq!(read.get("tid").unwrap().as_u64(), Some(1));
        // Metadata names both processes and tracks.
        assert!(events.iter().any(|e| {
            e.get("name").unwrap().as_str() == Some("process_name")
                && e.get("args").unwrap().get("name").unwrap().as_str() == Some("node 0 (host)")
        }));
        assert!(events.iter().any(|e| {
            e.get("name").unwrap().as_str() == Some("thread_name")
                && e.get("args").unwrap().get("name").unwrap().as_str() == Some("udma")
        }));
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let out = sample().to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("engine").unwrap().as_str(), Some("ham"));
        assert_eq!(first.get("phase").unwrap().as_str(), Some("host_overhead"));
        assert_eq!(first.get("offload_id").unwrap().as_u64(), Some(7));
        assert_eq!(first.get("dur_ps").unwrap().as_u64(), Some(1_000_000));
    }
}
