//! Per-target health aggregation and the structured event log.
//!
//! Every backend owns a [`HealthRegistry`]; each target registers at
//! spawn and the runtime records lifecycle events (fault injected,
//! retry, timeout, eviction, failover, reconnect) as they happen. The
//! registry derives a coarse [`TargetState`] per target from those
//! events and keeps a bounded ring of [`HealthEvent`]s for the SLO
//! evaluator and the health report.
//!
//! Events carry a *correlation id* (`corr`): the offload id the event
//! belongs to, the same id that rides the wire header's `corr` field
//! and tags flight-recorder spans — so an eviction in the event log can
//! be lined up with the spans of the offload that triggered it.
//!
//! Times are raw `u64` picoseconds of virtual time, like everything
//! else in this crate. Recording takes one short mutex (the event log
//! is not on the warm offload completion path — only fault-handling
//! paths record events, and those already hold the channel lock).

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bound on retained events; older events are dropped (counted by
/// [`HealthRegistry::dropped`]) so a long soak cannot grow without
/// bound.
pub const MAX_HEALTH_EVENTS: usize = 4096;

/// Coarse per-target health, derived from the event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetState {
    /// Registered, no trouble observed since the last reconnect.
    Healthy,
    /// Saw a fault or retried a frame but is still serving.
    Degraded,
    /// Removed from service; pending work was failed over or failed.
    Evicted,
}

impl TargetState {
    /// Stable lower-case name, used by the exposition surfaces.
    pub fn name(self) -> &'static str {
        match self {
            TargetState::Healthy => "healthy",
            TargetState::Degraded => "degraded",
            TargetState::Evicted => "evicted",
        }
    }
}

/// What happened to a target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthEventKind {
    /// A fault was deliberately injected (e.g. `kill_target`).
    FaultInjected,
    /// The recovery policy re-sent a frame.
    Retry,
    /// An offload exhausted its retries.
    Timeout,
    /// The target was evicted; its pending entries were failed.
    Eviction,
    /// The scheduler re-submitted unsent work to a survivor.
    Failover,
    /// The target came back into service.
    Reconnect,
    /// The transport link dropped; the target is degraded but its
    /// session may still resume (reconnect budget permitting).
    Disconnect,
    /// A health probe (ping) answered. A degraded target that answers
    /// probes is reachable again: the probe heals it back to
    /// [`TargetState::Healthy`] (an evicted target stays evicted —
    /// eviction is latched).
    Probe,
    /// A health probe went unanswered: the prober could not complete a
    /// ping round trip. Degrades a healthy target — unanswered probes
    /// are the earliest liveness signal, arriving before any offload
    /// traffic fails on the link.
    ProbeMiss,
    /// The adaptive batching controller widened a channel's watermark;
    /// no state change.
    BatchWiden,
    /// The adaptive batching controller narrowed a channel's watermark;
    /// no state change.
    BatchNarrow,
    /// A staged batch envelope was flushed by the latency-SLO age bound
    /// rather than a count/byte watermark; no state change.
    SloFlush,
}

impl HealthEventKind {
    /// Stable lower-case name, used by the exposition surfaces.
    pub fn name(self) -> &'static str {
        match self {
            HealthEventKind::FaultInjected => "fault_injected",
            HealthEventKind::Retry => "retry",
            HealthEventKind::Timeout => "timeout",
            HealthEventKind::Eviction => "eviction",
            HealthEventKind::Failover => "failover",
            HealthEventKind::Reconnect => "reconnect",
            HealthEventKind::Disconnect => "disconnect",
            HealthEventKind::Probe => "probe",
            HealthEventKind::ProbeMiss => "probe_miss",
            HealthEventKind::BatchWiden => "batch_widen",
            HealthEventKind::BatchNarrow => "batch_narrow",
            HealthEventKind::SloFlush => "slo_flush",
        }
    }
}

/// One entry in the structured event log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthEvent {
    /// Position in the registry's total event stream (0-based, counts
    /// dropped events too) — a stable ordering key.
    pub ordinal: u64,
    /// The target the event concerns.
    pub node: u16,
    /// What happened.
    pub kind: HealthEventKind,
    /// Offload correlation id (0 when the event is not tied to one
    /// offload, e.g. an injected kill). Matches the flight recorder's
    /// `OffloadId` and the wire header's `corr` field.
    pub corr: u64,
    /// Virtual time of the event, raw picoseconds.
    pub at_ps: u64,
}

/// Aggregates per-target state and the bounded event log.
///
/// One registry per backend (handed out by `BackendMetrics::health()`
/// in `sim-core`), not process-global: tests and multi-backend
/// processes each see only their own targets.
#[derive(Debug, Default)]
pub struct HealthRegistry {
    // BTreeMap so iteration order — and therefore every report — is
    // sorted by node id, independent of registration order.
    states: Mutex<BTreeMap<u16, TargetState>>,
    events: Mutex<VecDeque<HealthEvent>>,
    ordinal: AtomicU64,
    dropped: AtomicU64,
}

impl HealthRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `node` as [`TargetState::Healthy`]. Idempotent; called
    /// by every backend at spawn for each of its targets.
    pub fn register(&self, node: u16) {
        self.states
            .lock()
            .entry(node)
            .or_insert(TargetState::Healthy);
    }

    /// Record an event and update the target's derived state.
    ///
    /// `Retry`/`Timeout`/`FaultInjected`/`Disconnect`/`ProbeMiss`
    /// degrade a healthy target, `Eviction` evicts it, `Reconnect` and
    /// an answered `Probe` restore a degraded (not evicted) target to
    /// healthy; `Failover` describes the *survivor* receiving work and
    /// does not change its state.
    pub fn record(&self, node: u16, kind: HealthEventKind, corr: u64, at_ps: u64) {
        {
            let mut states = self.states.lock();
            let state = states.entry(node).or_insert(TargetState::Healthy);
            match kind {
                HealthEventKind::FaultInjected
                | HealthEventKind::Retry
                | HealthEventKind::Timeout
                | HealthEventKind::Disconnect
                | HealthEventKind::ProbeMiss => {
                    if *state == TargetState::Healthy {
                        *state = TargetState::Degraded;
                    }
                }
                HealthEventKind::Eviction => *state = TargetState::Evicted,
                HealthEventKind::Reconnect => *state = TargetState::Healthy,
                HealthEventKind::Probe => {
                    // An answered probe proves the target reachable;
                    // only eviction is latched.
                    if *state == TargetState::Degraded {
                        *state = TargetState::Healthy;
                    }
                }
                HealthEventKind::Failover
                | HealthEventKind::BatchWiden
                | HealthEventKind::BatchNarrow
                | HealthEventKind::SloFlush => {}
            }
        }
        let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock();
        if events.len() == MAX_HEALTH_EVENTS {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(HealthEvent {
            ordinal,
            node,
            kind,
            corr,
            at_ps,
        });
    }

    /// Current state of `node`, if registered (or mentioned by an
    /// event).
    pub fn state(&self, node: u16) -> Option<TargetState> {
        self.states.lock().get(&node).copied()
    }

    /// Every known target and its state, sorted by node id.
    pub fn states(&self) -> Vec<(u16, TargetState)> {
        self.states.lock().iter().map(|(&n, &s)| (n, s)).collect()
    }

    /// The retained event log, oldest first.
    pub fn events(&self) -> Vec<HealthEvent> {
        self.events.lock().iter().copied().collect()
    }

    /// Retained events concerning `node`, oldest first.
    pub fn events_for(&self, node: u16) -> Vec<HealthEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.node == node)
            .copied()
            .collect()
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_then_degrade_evict_reconnect() {
        let r = HealthRegistry::new();
        r.register(1);
        r.register(2);
        assert_eq!(r.state(1), Some(TargetState::Healthy));

        r.record(1, HealthEventKind::Retry, 7, 100);
        assert_eq!(r.state(1), Some(TargetState::Degraded));
        r.record(1, HealthEventKind::Eviction, 7, 200);
        assert_eq!(r.state(1), Some(TargetState::Evicted));
        // Once evicted, a retry does not un-evict.
        r.record(1, HealthEventKind::Retry, 8, 250);
        assert_eq!(r.state(1), Some(TargetState::Evicted));
        r.record(1, HealthEventKind::Reconnect, 0, 300);
        assert_eq!(r.state(1), Some(TargetState::Healthy));
        // Node 2 was never touched.
        assert_eq!(r.state(2), Some(TargetState::Healthy));

        let evs = r.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].kind, HealthEventKind::Retry);
        assert_eq!(evs[0].corr, 7);
        assert!(evs.windows(2).all(|w| w[0].ordinal < w[1].ordinal));
        assert_eq!(r.events_for(2), vec![]);
    }

    #[test]
    fn failover_event_leaves_survivor_state_alone() {
        let r = HealthRegistry::new();
        r.register(2);
        r.record(2, HealthEventKind::Failover, 9, 500);
        assert_eq!(r.state(2), Some(TargetState::Healthy));
        assert_eq!(r.events_for(2).len(), 1);
    }

    #[test]
    fn disconnect_degrades_and_answered_probe_heals() {
        let r = HealthRegistry::new();
        r.register(4);
        r.record(4, HealthEventKind::Probe, 0, 50);
        assert_eq!(r.state(4), Some(TargetState::Healthy));
        r.record(4, HealthEventKind::Disconnect, 0, 100);
        assert_eq!(r.state(4), Some(TargetState::Degraded));
        // An answered probe proves the target reachable again — the
        // background prober drives the degraded→healed edge without
        // waiting for a caller to touch the channel.
        r.record(4, HealthEventKind::Probe, 0, 150);
        assert_eq!(r.state(4), Some(TargetState::Healthy));
        assert_eq!(HealthEventKind::Disconnect.name(), "disconnect");
        assert_eq!(HealthEventKind::Probe.name(), "probe");
    }

    #[test]
    fn probe_miss_degrades_but_never_unevicts() {
        let r = HealthRegistry::new();
        r.register(5);
        r.record(5, HealthEventKind::ProbeMiss, 0, 100);
        assert_eq!(r.state(5), Some(TargetState::Degraded));
        // A miss streak keeps it degraded; an answered probe heals.
        r.record(5, HealthEventKind::ProbeMiss, 0, 200);
        assert_eq!(r.state(5), Some(TargetState::Degraded));
        r.record(5, HealthEventKind::Probe, 0, 300);
        assert_eq!(r.state(5), Some(TargetState::Healthy));
        // Eviction is latched: neither probes nor misses move it.
        r.record(5, HealthEventKind::Eviction, 0, 400);
        r.record(5, HealthEventKind::Probe, 0, 500);
        assert_eq!(r.state(5), Some(TargetState::Evicted));
        assert_eq!(HealthEventKind::ProbeMiss.name(), "probe_miss");
    }

    #[test]
    fn event_ring_is_bounded() {
        let r = HealthRegistry::new();
        for i in 0..(MAX_HEALTH_EVENTS as u64 + 10) {
            r.record(1, HealthEventKind::Retry, i, i);
        }
        let evs = r.events();
        assert_eq!(evs.len(), MAX_HEALTH_EVENTS);
        assert_eq!(r.dropped(), 10);
        // Oldest retained event is the 11th ever recorded.
        assert_eq!(evs[0].ordinal, 10);
    }

    #[test]
    fn states_sorted_by_node() {
        let r = HealthRegistry::new();
        r.register(3);
        r.register(1);
        r.register(2);
        let nodes: Vec<u16> = r.states().iter().map(|&(n, _)| n).collect();
        assert_eq!(nodes, vec![1, 2, 3]);
    }
}
