//! Lock-free metric primitives.
//!
//! Counters and gauges are plain atomics: safe to bump from the host
//! thread and every simulated target thread without coordination. Unlike
//! spans they are always on — the cost is one relaxed RMW — so steady
//! counters (posts, polls, bytes moved) are available even when no trace
//! session is running.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Signed level that rises and falls (in-flight offloads, live allocator
/// bytes), with a high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
            peak: AtomicI64::new(0),
        }
    }

    /// Move the level by `delta` (positive or negative), updating the
    /// high-water mark.
    #[inline]
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed.
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets in an [`AtomicHistogram`] — one per bit of a
/// `u64`, so any picosecond value lands somewhere.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Lock-free log₂ histogram of `u64` samples (picoseconds by
/// convention).
///
/// Bucket `i` counts samples whose highest set bit is `i` (sample 0
/// shares bucket 0), matching `sim-core`'s `Histogram` so snapshots of
/// the two are interchangeable. Recording is one relaxed RMW on one
/// bucket plus one on the total — always on, safe from any thread, and
/// allocation-free, which is what lets the warm offload completion path
/// keep its zero-heap guarantee.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: Counter,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        AtomicHistogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: Counter::new(),
        }
    }

    /// Record one sample (raw picoseconds).
    #[inline]
    pub fn record_ps(&self, ps: u64) {
        let idx = if ps == 0 {
            0
        } else {
            63 - ps.leading_zeros() as usize
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.incr();
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// A plain copy of the buckets (index = log₂ of the sample).
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let g = Gauge::new();
        g.add(5);
        g.add(3);
        g.add(-6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 8);
    }

    #[test]
    fn gauge_peak_survives_drain() {
        let g = Gauge::new();
        g.add(4);
        g.add(-4);
        assert_eq!(g.get(), 0);
        assert_eq!(g.peak(), 4);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = AtomicHistogram::new();
        h.record_ps(0); // bucket 0
        h.record_ps(1); // bucket 0
        h.record_ps(2); // bucket 1
        h.record_ps(3); // bucket 1
        h.record_ps(1024); // bucket 10
        h.record_ps(u64::MAX); // bucket 63
        let snap = h.snapshot();
        assert_eq!(snap[0], 2);
        assert_eq!(snap[1], 2);
        assert_eq!(snap[10], 1);
        assert_eq!(snap[63], 1);
        assert_eq!(h.count(), 6);
        assert_eq!(snap.iter().sum::<u64>(), h.count());
    }
}
