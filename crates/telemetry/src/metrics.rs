//! Lock-free metric primitives.
//!
//! Counters and gauges are plain atomics: safe to bump from the host
//! thread and every simulated target thread without coordination. Unlike
//! spans they are always on — the cost is one relaxed RMW — so steady
//! counters (posts, polls, bytes moved) are available even when no trace
//! session is running.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Signed level that rises and falls (in-flight offloads, live allocator
/// bytes), with a high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
            peak: AtomicI64::new(0),
        }
    }

    /// Move the level by `delta` (positive or negative), updating the
    /// high-water mark.
    #[inline]
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever observed.
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level_and_peak() {
        let g = Gauge::new();
        g.add(5);
        g.add(3);
        g.add(-6);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 8);
    }

    #[test]
    fn gauge_peak_survives_drain() {
        let g = Gauge::new();
        g.add(4);
        g.add(-4);
        assert_eq!(g.get(), 0);
        assert_eq!(g.peak(), 4);
    }
}
