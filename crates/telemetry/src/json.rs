//! Minimal JSON support: a string escaper for the exporters and a small
//! recursive-descent parser used by tests to verify exported traces
//! field-by-field. Not a general-purpose JSON library — no streaming, no
//! borrowed strings, numbers are `f64`.

use std::collections::BTreeMap;

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key-sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member by key (`None` for non-objects / absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a whole non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one JSON document. Errors carry a byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = core::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = core::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parse_round_trip_of_typical_trace_event() {
        let doc = r#"{"name":"udma.read","ph":"X","ts":1.5,"dur":0.25,
                      "pid":1,"tid":3,"args":{"offload_id":7,"bytes":64}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("udma.read"));
        assert_eq!(v.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(v.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("pid").unwrap().as_u64(), Some(1));
        let args = v.get("args").unwrap();
        assert_eq!(args.get("offload_id").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn parse_arrays_literals_and_escapes() {
        let v = parse(r#"[null, true, false, -2.5e2, "a\\\"Aλ", []]"#).unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0], Value::Null);
        assert_eq!(items[1], Value::Bool(true));
        assert_eq!(items[3].as_f64(), Some(-250.0));
        assert_eq!(items[4].as_str(), Some("a\\\"Aλ"));
        assert_eq!(items[5], Value::Arr(vec![]));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }
}
