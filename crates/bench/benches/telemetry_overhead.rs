//! Wall-clock cost of the always-on telemetry on the hot path.
//!
//! Three layers are measured:
//!
//! * the flight recorder — every costed hardware operation calls
//!   `trace::record`; with no session active that must stay a single
//!   relaxed atomic load, so disabled telemetry is free;
//! * the metric registers — every offload completion records into the
//!   aggregate log₂ histogram *and* its target's register (histogram +
//!   EWMA CAS loop), unconditionally. The acceptance bar is that this
//!   always-on histogram path costs <5% of the warm offload cycle it
//!   rides on;
//! * the adaptive batching controller — every flush feeds the tick
//!   window and every sweep checks the staged-age SLO; arming the
//!   self-tuning dataplane must also stay <5% of the offload cycle.
//!
//! Writes `BENCH_telemetry.json` at the workspace root; the gate in
//! `scripts/check.sh` checks `hist_overhead_lt_5pct` there.
//!
//! Run with: `cargo bench -p aurora-bench --bench telemetry_overhead`
//! (`-- --smoke` for the small CI configuration).

use aurora_sim_core::{trace, BackendMetrics, SimTime};
use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_backend_dma::{DmaBackend, ProtocolConfig};
use ham_offload::chan::{BatchConfig, ChannelCore};
use ham_offload::types::NodeId;
use ham_offload::Offload;
use std::hint::black_box;
use std::time::Instant;
use veos_sim::{AuroraMachine, MachineConfig};

/// Best-of-3 wall-clock nanoseconds per call of `f`, over `n` calls.
fn ns_per_op(n: u64, mut f: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for i in 0..n {
            f(i);
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n: u64 = if smoke { 200_000 } else { 2_000_000 };
    let offloads: u64 = if smoke { 300 } else { 2_000 };

    // --- flight recorder ------------------------------------------------
    let t0 = SimTime::from_ns(10);
    let t1 = SimTime::from_ns(20);
    let disabled = ns_per_op(n, |_| {
        trace::record(black_box("bench.disabled"), 64, t0, t1)
    });
    let session = trace::TraceSession::start();
    let enabled = ns_per_op(n, |_| trace::record(black_box("bench.enabled"), 64, t0, t1));
    drop(session.finish());

    // --- metric registers (the always-on histogram path) ----------------
    // What the engine adds per completed offload: the post counter, the
    // completion record (aggregate histogram + per-target histogram +
    // EWMA CAS), and the EWMA read the weighted scheduler makes.
    let m = BackendMetrics::new();
    for i in 0..10_000u64 {
        m.on_complete_on((i % 4) as u16 + 1, SimTime::from_us(5));
    }
    let hist = ns_per_op(n, |i| {
        m.on_post(black_box(64));
        m.on_complete_on((i % 4) as u16 + 1, SimTime::from_us(5 + i % 7));
        black_box(m.latency_ewma((i % 4) as u16 + 1));
    });

    // --- adaptive controller (per-flush tick + per-sweep SLO check) -----
    // What arming the self-tuning dataplane adds to the hot path: the
    // flush accounting (and, every tick window, a histogram snapshot,
    // window delta, p99 walk and one decision) plus the sweep-side
    // staged-age check.
    let chan =
        ChannelCore::bounded(64, 64, 4096).with_batching(BatchConfig::adaptive_up_to(64, 200));
    let ctrl = ns_per_op(n, |i| {
        black_box(chan.adaptive_tick(black_box(32 + (i % 8) as usize), || m.flush_hist_buckets()));
        black_box(chan.slo_flush_due(SimTime::from_us(i)));
    });

    // --- the offload cycle the histogram path rides on ------------------
    let o = Offload::new(DmaBackend::spawn(
        AuroraMachine::small(
            1,
            MachineConfig {
                hbm_bytes: 16 << 20,
                vh_bytes: 32 << 20,
                ..Default::default()
            },
        ),
        0,
        &[0],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(whoami)).expect("warmup");
    }
    let cycle = ns_per_op(offloads, |_| {
        assert_eq!(o.sync(NodeId(1), f2f!(whoami)).expect("offload"), 1);
    });
    o.shutdown();

    let overhead_pct = 100.0 * hist / cycle;
    let lt_5pct = overhead_pct < 5.0;
    let ctrl_pct = 100.0 * ctrl / cycle;
    let ctrl_lt_5pct = ctrl_pct < 5.0;

    println!("## Telemetry overhead (wall clock, best of 3)\n");
    println!("{:<44} {:>10}", "path", "ns/op");
    println!("{:<44} {:>10.2}", "trace::record, no session", disabled);
    println!("{:<44} {:>10.2}", "trace::record, active session", enabled);
    println!(
        "{:<44} {:>10.2}",
        "metric record (post+complete+ewma)", hist
    );
    println!(
        "{:<44} {:>10.2}",
        "adaptive tick + SLO check (per flush)", ctrl
    );
    println!("{:<44} {:>10.2}", "warm sync offload cycle (DMA)", cycle);
    println!("\nalways-on histogram path: {overhead_pct:.2}% of the warm offload cycle (bar: <5%)");
    println!("adaptive controller path: {ctrl_pct:.2}% of the warm offload cycle (bar: <5%)");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"telemetry_overhead\",\n",
            "  \"ns_record_disabled\": {:.2},\n",
            "  \"ns_record_enabled\": {:.2},\n",
            "  \"ns_hist_record\": {:.2},\n",
            "  \"ns_ctrl_tick\": {:.2},\n",
            "  \"ns_offload_cycle\": {:.2},\n",
            "  \"hist_overhead_pct\": {:.3},\n",
            "  \"hist_overhead_lt_5pct\": {},\n",
            "  \"ctrl_overhead_pct\": {:.3},\n",
            "  \"ctrl_overhead_lt_5pct\": {}\n",
            "}}\n"
        ),
        disabled, enabled, hist, ctrl, cycle, overhead_pct, lt_5pct, ctrl_pct, ctrl_lt_5pct
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, &json).expect("write BENCH_telemetry.json");
    println!("\nwrote BENCH_telemetry.json:\n{json}");

    assert!(
        disabled < 50.0,
        "disabled trace::record must stay ~an atomic load: {disabled:.2} ns"
    );
    assert!(
        lt_5pct,
        "always-on histogram path must cost <5% of the offload cycle: \
         {hist:.2} ns vs {cycle:.2} ns ({overhead_pct:.2}%)"
    );
    assert!(
        ctrl_lt_5pct,
        "adaptive controller must cost <5% of the offload cycle: \
         {ctrl:.2} ns vs {cycle:.2} ns ({ctrl_pct:.2}%)"
    );
    println!("ok");
}
