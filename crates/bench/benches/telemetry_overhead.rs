//! Wall-clock cost of the flight recorder on the simulation's hot path.
//!
//! Every costed hardware operation calls `trace::record`; with no session
//! active that must stay a single relaxed atomic load so the disabled
//! telemetry is free. The enabled path (per-thread shard push) is bounded
//! here too, together with the attribution scope guards.

use aurora_sim_core::trace;
use aurora_sim_core::SimTime;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");

    // No session: the disabled fast path (the one every simulation run
    // without tracing pays on each costed operation).
    g.bench_function("record_disabled", |b| {
        let t0 = SimTime::from_ns(10);
        let t1 = SimTime::from_ns(20);
        b.iter(|| trace::record(black_box("bench.disabled"), 64, t0, t1))
    });

    // Active session: per-thread shard push, no locks on the hot path.
    g.bench_function("record_enabled", |b| {
        let session = trace::TraceSession::start();
        let t0 = SimTime::from_ns(10);
        let t1 = SimTime::from_ns(20);
        b.iter(|| trace::record(black_box("bench.enabled"), 64, t0, t1));
        drop(session.finish());
    });

    g.bench_function("record_enabled_attributed", |b| {
        let session = trace::TraceSession::start();
        let _node = trace::node_scope(1);
        let _of = trace::offload_scope(trace::next_offload_id());
        let t0 = SimTime::from_ns(10);
        let t1 = SimTime::from_ns(20);
        b.iter(|| trace::record(black_box("bench.attributed"), 64, t0, t1));
        drop(session.finish());
    });

    // The scope guards themselves (entered once per offload).
    g.bench_function("offload_scope_guard", |b| {
        let id = trace::next_offload_id();
        b.iter(|| {
            let _g = trace::offload_scope(black_box(id));
        })
    });

    g.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
