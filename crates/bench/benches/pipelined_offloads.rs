//! N-deep pipelined offloads vs. a serial sync loop on the DMA protocol.
//!
//! The channel core keeps slot accounting, the pending table, and the
//! completion queue per target, so the host can keep `recv_slots`
//! offloads in flight and harvest them with `wait_all` — one flag sweep
//! drains every completion it finds (O(completions) host work) instead
//! of one blocking round trip per offload.
//!
//! Run with: `cargo bench -p aurora-bench --bench pipelined_offloads`
//! (`-- --smoke` for the small CI configuration).

use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_backend_dma::{DmaBackend, ProtocolConfig};
use ham_offload::types::NodeId;
use ham_offload::Offload;
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

fn machine() -> Arc<AuroraMachine> {
    AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    )
}

struct Phase {
    /// Virtual host time per offload (µs).
    per_offload_us: f64,
    /// Backend poll operations (hits + misses) during the phase.
    polls: u64,
    /// Polls that found nothing ready.
    retries: u64,
    /// Highest concurrent in-flight count the backend observed.
    inflight_peak: i64,
}

fn run_phase(o: &Offload, n: u32, pipelined: bool) -> Phase {
    let t = NodeId(1);
    let before = o.metrics_snapshot();
    let t0 = o.backend().host_clock().now();
    if pipelined {
        let futures: Vec<_> = (0..n)
            .map(|_| o.async_(t, f2f!(whoami)).expect("post"))
            .collect();
        for r in o.wait_all(futures) {
            assert_eq!(r.expect("offload"), 1);
        }
    } else {
        for _ in 0..n {
            assert_eq!(o.sync(t, f2f!(whoami)).expect("offload"), 1);
        }
    }
    let elapsed = o.backend().host_clock().now() - t0;
    let after = o.metrics_snapshot();
    Phase {
        per_offload_us: elapsed.as_us_f64() / n as f64,
        polls: after.polls - before.polls,
        retries: after.retries - before.retries,
        inflight_peak: after.inflight_peak,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // criterion-style runners pass --bench/--test through; ignore them.
    let depth: u32 = if smoke { 16 } else { 64 };

    let o = Offload::new(DmaBackend::spawn(
        machine(),
        0,
        &[0],
        ProtocolConfig {
            recv_slots: depth as usize,
            send_slots: depth as usize,
            ..Default::default()
        },
        aurora_workloads::register_all,
    ));
    // Warm both paths so slot arrays and handler tables are hot.
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(whoami)).expect("warmup");
    }

    let serial = run_phase(&o, depth, false);
    let pipelined = run_phase(&o, depth, true);
    o.shutdown();

    println!("## Pipelined offloads ({depth}-deep, DMA protocol)\n");
    println!(
        "{:<28} {:>14} {:>10} {:>10} {:>14}",
        "phase", "us/offload", "polls", "retries", "inflight peak"
    );
    for (label, p) in [
        ("serial sync loop", &serial),
        ("async_ + wait_all", &pipelined),
    ] {
        println!(
            "{:<28} {:>14.3} {:>10} {:>10} {:>14}",
            label, p.per_offload_us, p.polls, p.retries, p.inflight_peak
        );
    }
    println!(
        "\npipelining hides {:.3} us of the {:.3} us round trip per offload ({:.1}x)",
        serial.per_offload_us - pipelined.per_offload_us,
        serial.per_offload_us,
        serial.per_offload_us / pipelined.per_offload_us
    );

    // The acceptance bar: per-offload host cost with N in flight must be
    // no worse than the blocking loop, and the backend must actually
    // have seen the pipeline depth.
    assert!(
        pipelined.per_offload_us <= serial.per_offload_us,
        "pipelined {} us/offload vs serial {} us/offload",
        pipelined.per_offload_us,
        serial.per_offload_us
    );
    assert!(
        pipelined.inflight_peak >= depth as i64,
        "expected {depth} offloads in flight, peak was {}",
        pipelined.inflight_peak
    );
    println!("ok");
}
