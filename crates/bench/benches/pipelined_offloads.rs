//! N-deep pipelined offloads vs. a serial sync loop on the DMA protocol,
//! plus the small-message batching comparison.
//!
//! The channel core keeps slot accounting, the pending table, and the
//! completion queue per target, so the host can keep `recv_slots`
//! offloads in flight and harvest them with `wait_all` — one flag sweep
//! drains every completion it finds (O(completions) host work) instead
//! of one blocking round trip per offload.
//!
//! With batching enabled the engine coalesces consecutive `post()`s into
//! one wire frame, so a deep pipeline pays one DMA transaction and one
//! flag poll per *batch* instead of per message. The second half of this
//! bench measures that at depths 1 / 8 / 64 and writes the depth-64
//! numbers to `BENCH_pipelined.json` at the workspace root; the gate in
//! `scripts/check.sh` fails if batching-on is not faster at depth 64.
//!
//! Run with: `cargo bench -p aurora-bench --bench pipelined_offloads`
//! (`-- --smoke` for the small CI configuration).

use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_backend_dma::{DmaBackend, ProtocolConfig};
use ham_offload::chan::BatchConfig;
use ham_offload::types::NodeId;
use ham_offload::Offload;
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

fn machine() -> Arc<AuroraMachine> {
    AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    )
}

fn spawn(slots: usize, batch: BatchConfig) -> Offload {
    Offload::new(DmaBackend::spawn(
        machine(),
        0,
        &[0],
        ProtocolConfig {
            recv_slots: slots,
            send_slots: slots,
            ..Default::default()
        }
        .with_batch(batch),
        aurora_workloads::register_all,
    ))
}

struct Phase {
    /// Virtual host time per offload (µs).
    per_offload_us: f64,
    /// Backend poll operations (hits + misses) during the phase.
    polls: u64,
    /// Polls that found nothing ready.
    retries: u64,
    /// Highest concurrent in-flight count the backend observed.
    inflight_peak: i64,
}

fn run_phase(o: &Offload, n: u32, pipelined: bool) -> Phase {
    let t = NodeId(1);
    let before = o.metrics_snapshot();
    let t0 = o.backend().host_clock().now();
    if pipelined {
        let futures: Vec<_> = (0..n)
            .map(|_| o.async_(t, f2f!(whoami)).expect("post"))
            .collect();
        for r in o.wait_all(futures) {
            assert_eq!(r.expect("offload"), 1);
        }
    } else {
        for _ in 0..n {
            assert_eq!(o.sync(t, f2f!(whoami)).expect("offload"), 1);
        }
    }
    let elapsed = o.backend().host_clock().now() - t0;
    let after = o.metrics_snapshot();
    Phase {
        per_offload_us: elapsed.as_us_f64() / n as f64,
        polls: after.polls - before.polls,
        retries: after.retries - before.retries,
        inflight_peak: after.inflight_peak,
    }
}

struct BatchPoint {
    /// Virtual host time per offload (µs) for the async_+wait_all wave.
    per_offload_us: f64,
    /// Wire frames the wave produced.
    frames: u64,
    /// Messages those frames carried.
    msgs: u64,
}

/// One depth-`n` pipelined wave, measured as metric deltas so the same
/// warm `Offload` serves every depth.
fn run_batch_point(o: &Offload, n: u32) -> BatchPoint {
    let t = NodeId(1);
    let before = o.metrics_snapshot();
    let t0 = o.backend().host_clock().now();
    let futures: Vec<_> = (0..n)
        .map(|_| o.async_(t, f2f!(whoami)).expect("post"))
        .collect();
    for r in o.wait_all(futures) {
        assert_eq!(r.expect("offload"), 1);
    }
    let elapsed = o.backend().host_clock().now() - t0;
    let after = o.metrics_snapshot();
    BatchPoint {
        per_offload_us: elapsed.as_us_f64() / n as f64,
        frames: after.frames_sent - before.frames_sent,
        msgs: after.msgs_sent - before.msgs_sent,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // criterion-style runners pass --bench/--test through; ignore them.
    let depth: u32 = if smoke { 16 } else { 64 };

    let o = spawn(depth as usize, BatchConfig::default());
    // Warm both paths so slot arrays and handler tables are hot.
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(whoami)).expect("warmup");
    }

    let serial = run_phase(&o, depth, false);
    let pipelined = run_phase(&o, depth, true);
    o.shutdown();

    println!("## Pipelined offloads ({depth}-deep, DMA protocol)\n");
    println!(
        "{:<28} {:>14} {:>10} {:>10} {:>14}",
        "phase", "us/offload", "polls", "retries", "inflight peak"
    );
    for (label, p) in [
        ("serial sync loop", &serial),
        ("async_ + wait_all", &pipelined),
    ] {
        println!(
            "{:<28} {:>14.3} {:>10} {:>10} {:>14}",
            label, p.per_offload_us, p.polls, p.retries, p.inflight_peak
        );
    }
    println!(
        "\npipelining hides {:.3} us of the {:.3} us round trip per offload ({:.1}x)",
        serial.per_offload_us - pipelined.per_offload_us,
        serial.per_offload_us,
        serial.per_offload_us / pipelined.per_offload_us
    );

    // The acceptance bar: per-offload host cost with N in flight must be
    // no worse than the blocking loop, and the backend must actually
    // have seen the pipeline depth.
    assert!(
        pipelined.per_offload_us <= serial.per_offload_us,
        "pipelined {} us/offload vs serial {} us/offload",
        pipelined.per_offload_us,
        serial.per_offload_us
    );
    assert!(
        pipelined.inflight_peak >= depth as i64,
        "expected {depth} offloads in flight, peak was {}",
        pipelined.inflight_peak
    );

    // ---- batching off vs. on, depths 1 / 8 / 64 ----------------------
    // Always at full depth (the JSON consumers key on depth 64), even in
    // smoke mode — virtual time makes this cheap.
    const DEPTHS: [u32; 3] = [1, 8, 64];
    let off = spawn(64, BatchConfig::default());
    let on = spawn(64, BatchConfig::up_to(16));
    for o in [&off, &on] {
        for _ in 0..10 {
            o.sync(NodeId(1), f2f!(whoami)).expect("warmup");
        }
    }
    println!("\n## Small-message batching (DMA protocol, async_ + wait_all)\n");
    println!(
        "{:>5} {:>16} {:>16} {:>12} {:>12} {:>9}",
        "depth", "off us/offload", "on us/offload", "off frames", "on frames", "msgs/frm"
    );
    let mut last: Option<(BatchPoint, BatchPoint)> = None;
    for d in DEPTHS {
        let p_off = run_batch_point(&off, d);
        let p_on = run_batch_point(&on, d);
        println!(
            "{:>5} {:>16.3} {:>16.3} {:>12} {:>12} {:>9.2}",
            d,
            p_off.per_offload_us,
            p_on.per_offload_us,
            p_off.frames,
            p_on.frames,
            p_on.msgs as f64 / p_on.frames as f64
        );
        last = Some((p_off, p_on));
    }
    off.shutdown();
    on.shutdown();

    let (d64_off, d64_on) = last.expect("depth table ran");
    let batch_faster = d64_on.per_offload_us < d64_off.per_offload_us;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"pipelined_offloads\",\n",
            "  \"protocol\": \"dma\",\n",
            "  \"depth\": 64,\n",
            "  \"us_per_offload_batch_off\": {:.3},\n",
            "  \"us_per_offload_batch_on\": {:.3},\n",
            "  \"frames_batch_off\": {},\n",
            "  \"frames_batch_on\": {},\n",
            "  \"msgs\": {},\n",
            "  \"frames_per_msg_batch_on\": {:.4},\n",
            "  \"batch_faster\": {}\n",
            "}}\n"
        ),
        d64_off.per_offload_us,
        d64_on.per_offload_us,
        d64_off.frames,
        d64_on.frames,
        d64_on.msgs,
        d64_on.frames as f64 / d64_on.msgs as f64,
        batch_faster
    );
    // CWD differs between `cargo bench` and a direct target/ invocation;
    // anchor the artifact at the workspace root via the manifest dir.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipelined.json");
    std::fs::write(path, &json).expect("write BENCH_pipelined.json");
    println!("\nwrote BENCH_pipelined.json:\n{json}");

    assert!(
        d64_on.frames * 3 <= d64_on.msgs,
        "expected >=3x fewer wire frames at depth 64: {} frames for {} msgs",
        d64_on.frames,
        d64_on.msgs
    );
    assert!(
        batch_faster,
        "batching-on must beat batching-off at depth 64: {:.3} vs {:.3} us/offload",
        d64_on.per_offload_us, d64_off.per_offload_us
    );
    println!("ok");
}
