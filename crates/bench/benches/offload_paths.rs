//! Wall-clock (not virtual-time) cost of complete offload round trips
//! through each backend — measuring the reproduction's own runtime, as
//! opposed to the modeled hardware times of the `repro_*` binaries.

use aurora_workloads::kernels::whoami;
use criterion::{criterion_group, criterion_main, Criterion};
use ham::f2f;
use ham_backend_dma::DmaBackend;
use ham_backend_veo::{ProtocolConfig, VeoBackend};
use ham_offload::local::LocalBackend;
use ham_offload::types::NodeId;
use ham_offload::Offload;
use veos_sim::{AuroraMachine, MachineConfig};

fn machine() -> std::sync::Arc<AuroraMachine> {
    AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    )
}

fn bench_offload_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("offload_roundtrip_wallclock");
    g.sample_size(30);

    let local = Offload::new(LocalBackend::spawn(1, aurora_workloads::register_all));
    g.bench_function("local_backend", |b| {
        b.iter(|| local.sync(NodeId(1), f2f!(whoami)).unwrap())
    });

    let veo = Offload::new(VeoBackend::spawn(
        machine(),
        0,
        &[0],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    g.bench_function("veo_backend", |b| {
        b.iter(|| veo.sync(NodeId(1), f2f!(whoami)).unwrap())
    });

    let dma = Offload::new(DmaBackend::spawn(
        machine(),
        0,
        &[0],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    g.bench_function("dma_backend", |b| {
        b.iter(|| dma.sync(NodeId(1), f2f!(whoami)).unwrap())
    });

    g.finish();
    local.shutdown();
    veo.shutdown();
    dma.shutdown();
}

fn bench_put_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("bulk_transfer_wallclock");
    g.sample_size(20);
    let dma = Offload::new(DmaBackend::spawn(
        machine(),
        0,
        &[0],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    let buf = dma.allocate::<f64>(NodeId(1), 1 << 17).unwrap();
    let data = vec![1.0f64; 1 << 17]; // 1 MiB
    g.bench_function("put_1MiB", |b| b.iter(|| dma.put(&data, buf).unwrap()));
    let mut out = vec![0.0f64; 1 << 17];
    g.bench_function("get_1MiB", |b| b.iter(|| dma.get(buf, &mut out).unwrap()));
    g.finish();
    dma.shutdown();
}

fn bench_pipelined_throughput(c: &mut Criterion) {
    // Offloads per second with a full async pipeline (wall clock): how
    // fast the reproduction itself can push messages.
    let mut g = c.benchmark_group("pipelined_throughput_wallclock");
    g.sample_size(20);
    let dma = Offload::new(DmaBackend::spawn(
        machine(),
        0,
        &[0],
        ProtocolConfig::default(),
        aurora_workloads::register_all,
    ));
    g.throughput(criterion::Throughput::Elements(32));
    g.bench_function("dma_32deep", |b| {
        b.iter(|| {
            let futs: Vec<_> = (0..32)
                .map(|_| dma.async_(NodeId(1), f2f!(whoami)).unwrap())
                .collect();
            for f in futs {
                f.get().unwrap();
            }
        })
    });
    g.finish();
    dma.shutdown();
}

criterion_group!(
    benches,
    bench_offload_paths,
    bench_put_get,
    bench_pipelined_throughput
);
criterion_main!(benches);
