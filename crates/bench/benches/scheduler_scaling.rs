//! Scheduler scaling: one deep wave of compute-bound offloads through a
//! [`TargetPool`], one VE vs. four.
//!
//! The pool owns placement (least-loaded, credit-gated), so the
//! application code is *identical* in both configurations — `submit`
//! ×64 then `wait_all` — and the measured difference is purely what the
//! scheduler extracts from the extra engines. The kernel charges a
//! fixed amount of modeled compute per offload, so with four VEs the
//! per-offload virtual host time should approach a 4× improvement; the
//! gate in `scripts/check.sh` requires at least 3× at depth 64 (wire
//! and host overheads eat the rest).
//!
//! Writes the depth-64 comparison to `BENCH_sched.json` at the
//! workspace root.
//!
//! Run with: `cargo bench -p aurora-bench --bench scheduler_scaling`
//! (`-- --smoke` for the small CI configuration).

use aurora_workloads::kernels::compute_burn;
use ham::f2f;
use ham_backend_dma::{DmaBackend, ProtocolConfig};
use ham_offload::sched::{SchedPolicy, TargetPool};
use ham_offload::types::NodeId;
use ham_offload::Offload;
use veos_sim::{AuroraMachine, MachineConfig};

/// Pipeline depth of the measured wave. The JSON consumers key on this.
const DEPTH: usize = 64;
/// Modeled compute per offload — heavy enough that engine parallelism,
/// not transport latency, dominates the wave.
const FLOPS: u64 = 4_000_000;

fn spawn(ves: u8) -> Offload {
    let machine = AuroraMachine::small(
        ves,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    );
    let targets: Vec<u8> = (0..ves).collect();
    Offload::new(DmaBackend::spawn(
        machine,
        0,
        &targets,
        // Same per-target slot budget in both configurations: the 4-VE
        // pool wins by having more engines, not deeper rings. The device
        // engine is pinned serial (`lanes: 1`) so this bench isolates
        // the multi-VE axis — intra-VE core parallelism has its own
        // bench (`device_lanes`) and its own gate.
        ProtocolConfig {
            recv_slots: DEPTH,
            send_slots: DEPTH,
            lanes: 1,
            ..Default::default()
        },
        aurora_workloads::register_all,
    ))
}

struct Point {
    /// Virtual host time per offload (µs) for the whole wave.
    per_offload_us: f64,
    /// Offloads each pool target served.
    per_target: Vec<usize>,
}

/// One depth-`DEPTH` wave of `compute_burn` through the pool.
fn run_wave(o: &Offload, pool: &TargetPool, ves: u8) -> Point {
    let t0 = o.backend().host_clock().now();
    let futures: Vec<_> = (0..DEPTH)
        .map(|_| pool.submit(f2f!(compute_burn, FLOPS)).expect("submit"))
        .collect();
    let mut per_target = vec![0usize; ves as usize + 1];
    for f in &futures {
        per_target[f.target().0 as usize] += 1;
    }
    for r in pool.wait_all(futures) {
        let node = r.expect("offload");
        assert!((1..=ves as u16).contains(&node), "served by a pool target");
    }
    let elapsed = o.backend().host_clock().now() - t0;
    Point {
        per_offload_us: elapsed.as_us_f64() / DEPTH as f64,
        per_target: per_target[1..].to_vec(),
    }
}

fn measure(ves: u8, warmups: usize) -> Point {
    let o = spawn(ves);
    let nodes: Vec<NodeId> = (1..=ves as u16).map(NodeId).collect();
    let pool = o.pool_with(&nodes, SchedPolicy::LeastLoaded).expect("pool");
    for _ in 0..warmups {
        run_wave(&o, &pool, ves);
    }
    let p = run_wave(&o, &pool, ves);
    o.shutdown();
    p
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let warmups = if smoke { 1 } else { 4 };

    let single = measure(1, warmups);
    let pooled = measure(4, warmups);

    println!("## Scheduler scaling ({DEPTH}-deep compute_burn wave, DMA protocol)\n");
    println!(
        "{:<24} {:>14} {:>24}",
        "configuration", "us/offload", "placement"
    );
    for (label, p) in [("1 VE", &single), ("4-VE LeastLoaded pool", &pooled)] {
        println!(
            "{:<24} {:>14.3} {:>24}",
            label,
            p.per_offload_us,
            format!("{:?}", p.per_target)
        );
    }
    let speedup = single.per_offload_us / pooled.per_offload_us;
    println!("\n4-VE pool speedup over a single target: {speedup:.2}x");

    // Least-loaded placement over idle engines, all submits ahead of any
    // wait: a perfectly even spread, deterministically.
    assert_eq!(
        pooled.per_target,
        vec![DEPTH / 4; 4],
        "placement must spread the wave evenly"
    );

    let pool_faster_3x = speedup >= 3.0;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scheduler_scaling\",\n",
            "  \"protocol\": \"dma\",\n",
            "  \"policy\": \"least_loaded\",\n",
            "  \"depth\": {},\n",
            "  \"flops_per_offload\": {},\n",
            "  \"us_per_offload_1ve\": {:.3},\n",
            "  \"us_per_offload_pool4\": {:.3},\n",
            "  \"pool4_speedup\": {:.3},\n",
            "  \"pool_faster_3x\": {}\n",
            "}}\n"
        ),
        DEPTH, FLOPS, single.per_offload_us, pooled.per_offload_us, speedup, pool_faster_3x
    );
    // CWD differs between `cargo bench` and a direct target/ invocation;
    // anchor the artifact at the workspace root via the manifest dir.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    std::fs::write(path, &json).expect("write BENCH_sched.json");
    println!("\nwrote BENCH_sched.json:\n{json}");

    assert!(
        pool_faster_3x,
        "4-target pool must be >=3x a single target at depth {DEPTH}: {speedup:.2}x"
    );
    println!("ok");
}
