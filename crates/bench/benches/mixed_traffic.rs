//! Mixed traffic on the DMA protocol: dense bulk waves interleaved with
//! sparse latency-sensitive probes, static depth-64 batching vs. the
//! adaptive controller with a latency SLO.
//!
//! The host here is *poll-driven*, not blocking: after posting a probe
//! it advances the virtual clock in small steps and runs the engine
//! sweep, the way a latency-sensitive client with other work would. A
//! probe that has not completed within the poll budget is force-drained
//! with a blocking `get` — the "give up and pay a flush round trip"
//! fallback. Under the static depth-64 config a lone probe sits in the
//! batch accumulator until something else fills it, so every sparse
//! probe burns the whole poll budget; with `slo_micros` armed the sweep
//! bounds the wait, and the adaptive controller narrows the watermark
//! during the sparse phase so later probes leave on post.
//!
//! Writes `BENCH_adaptive.json` at the workspace root with p50/p99
//! probe latency, us/offload and wire-frame counts for both configs.
//! The gate in `scripts/check.sh` requires the adaptive p99 to be at
//! least 2x better than static depth-64 *and* the bulk frame cut
//! (>=3x fewer frames than messages) to survive adaptation.
//!
//! Run with: `cargo bench -p aurora-bench --bench mixed_traffic`
//! (`-- --smoke` for the small CI configuration).

use aurora_sim_core::SimTime;
use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_backend_dma::{DmaBackend, ProtocolConfig};
use ham_offload::chan::{engine, BatchConfig};
use ham_offload::types::NodeId;
use ham_offload::Offload;
use std::sync::Arc;
use veos_sim::{AuroraMachine, MachineConfig};

/// Latency SLO handed to the adaptive config (us).
const SLO_US: u64 = 200;
/// Poll budget before a probe gives up and blocking-drains (us).
const GIVE_UP_US: u64 = 800;
/// Virtual-clock step per host poll (us).
const STEP_US: u64 = 10;
/// Messages per dense bulk wave (= the static watermark).
const BULK: usize = 64;
/// Sparse probes per round.
const PROBES: usize = 8;

fn machine() -> Arc<AuroraMachine> {
    AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    )
}

fn spawn(batch: BatchConfig) -> Offload {
    Offload::new(DmaBackend::spawn(
        machine(),
        0,
        &[0],
        ProtocolConfig {
            recv_slots: 2 * BULK,
            send_slots: 2 * BULK,
            ..Default::default()
        }
        .with_batch(batch),
        aurora_workloads::register_all,
    ))
}

struct RunStats {
    /// Sorted virtual probe latencies (us).
    probe_lat_us: Vec<f64>,
    /// Virtual host time per offload across the whole run (us).
    us_per_offload: f64,
    frames: u64,
    msgs: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

/// Post one probe and poll for it: advance the virtual clock, run the
/// engine sweep (the SLO flush path), and watch `in_flight` drop to
/// zero. Returns the virtual latency in us.
fn probe(o: &Offload, t: NodeId) -> f64 {
    let clock = o.backend().host_clock();
    let t0 = clock.now();
    let fut = o.async_(t, f2f!(whoami)).expect("post probe");
    let mut done = false;
    for _ in 0..(GIVE_UP_US / STEP_US) {
        clock.advance(SimTime::from_us(STEP_US));
        let _ = engine::sweep(o.backend().as_ref(), t);
        if o.in_flight(t).unwrap_or(0) == 0 {
            done = true;
            break;
        }
        // Give the device threads real time to execute what a sweep
        // just put on the wire; the measurement itself is virtual.
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
    if !done {
        // Poll budget exhausted: force the flush with a blocking get.
        assert_eq!(fut.get().expect("probe"), 1);
        return (clock.now() - t0).as_us_f64();
    }
    assert_eq!(fut.get().expect("probe"), 1);
    (clock.now() - t0).as_us_f64()
}

fn run(o: &Offload, rounds: usize) -> RunStats {
    let t = NodeId(1);
    for _ in 0..10 {
        o.sync(t, f2f!(whoami)).expect("warmup");
    }
    let before = o.metrics_snapshot();
    let clock = o.backend().host_clock();
    let t0 = clock.now();
    let mut total = 0usize;
    let mut lat = Vec::new();
    for _ in 0..rounds {
        // Dense phase: two back-to-back bulk waves, throughput mode.
        for _ in 0..2 {
            let futs: Vec<_> = (0..BULK)
                .map(|_| o.async_(t, f2f!(whoami)).expect("post bulk"))
                .collect();
            total += BULK;
            for r in o.wait_all(futs) {
                assert_eq!(r.expect("bulk"), 1);
            }
        }
        // Sparse phase: lone probes separated by idle time.
        for _ in 0..PROBES {
            clock.advance(SimTime::from_us(50));
            lat.push(probe(o, t));
            total += 1;
        }
    }
    let elapsed = clock.now() - t0;
    let after = o.metrics_snapshot();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    RunStats {
        probe_lat_us: lat,
        us_per_offload: elapsed.as_us_f64() / total as f64,
        frames: after.frames_sent - before.frames_sent,
        msgs: after.msgs_sent - before.msgs_sent,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rounds = if smoke { 3 } else { 6 };

    let static_o = spawn(BatchConfig::up_to(BULK));
    let s = run(&static_o, rounds);
    static_o.shutdown();

    let adaptive_o = spawn(BatchConfig::adaptive_up_to(BULK, SLO_US));
    let a = run(&adaptive_o, rounds);
    adaptive_o.shutdown();

    println!("## Mixed traffic: static depth-{BULK} vs adaptive + {SLO_US}us SLO\n");
    println!(
        "{:<24} {:>12} {:>12} {:>14} {:>10} {:>8}",
        "config", "probe p50", "probe p99", "us/offload", "frames", "msgs"
    );
    for (label, r) in [("static depth-64", &s), ("adaptive + SLO", &a)] {
        println!(
            "{:<24} {:>12.1} {:>12.1} {:>14.3} {:>10} {:>8}",
            label,
            percentile(&r.probe_lat_us, 0.50),
            percentile(&r.probe_lat_us, 0.99),
            r.us_per_offload,
            r.frames,
            r.msgs
        );
    }

    let s_p99 = percentile(&s.probe_lat_us, 0.99);
    let a_p99 = percentile(&a.probe_lat_us, 0.99);
    let p99_2x = s_p99 >= 2.0 * a_p99;
    let frame_cut_3x = a.frames * 3 <= a.msgs;
    println!(
        "\nadaptive p99 {:.1} us vs static {:.1} us ({:.1}x); {:.2} msgs/frame under adaptation",
        a_p99,
        s_p99,
        s_p99 / a_p99,
        a.msgs as f64 / a.frames as f64
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"mixed_traffic\",\n",
            "  \"protocol\": \"dma\",\n",
            "  \"slo_us\": {},\n",
            "  \"probe_p50_us_static\": {:.1},\n",
            "  \"probe_p99_us_static\": {:.1},\n",
            "  \"probe_p50_us_adaptive\": {:.1},\n",
            "  \"probe_p99_us_adaptive\": {:.1},\n",
            "  \"us_per_offload_static\": {:.3},\n",
            "  \"us_per_offload_adaptive\": {:.3},\n",
            "  \"frames_static\": {},\n",
            "  \"frames_adaptive\": {},\n",
            "  \"msgs\": {},\n",
            "  \"adaptive_p99_2x\": {},\n",
            "  \"frame_cut_3x\": {}\n",
            "}}\n"
        ),
        SLO_US,
        percentile(&s.probe_lat_us, 0.50),
        s_p99,
        percentile(&a.probe_lat_us, 0.50),
        a_p99,
        s.us_per_offload,
        a.us_per_offload,
        s.frames,
        a.frames,
        a.msgs,
        p99_2x,
        frame_cut_3x
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    std::fs::write(path, &json).expect("write BENCH_adaptive.json");
    println!("\nwrote BENCH_adaptive.json:\n{json}");

    assert!(
        p99_2x,
        "adaptive p99 must be >=2x better: {a_p99:.1} vs {s_p99:.1} us"
    );
    assert!(
        frame_cut_3x,
        "adaptation must keep the >=3x frame cut: {} frames for {} msgs",
        a.frames, a.msgs
    );
    println!("ok");
}
