//! Wall-clock cost of handler-key translation (paper Fig. 6): the paper
//! stresses that key→address translation is O(1); this bench keeps the
//! constant honest.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ham::message::VecMemory;
use ham::{ExecContext, RegistryBuilder};

ham::ham_kernel! {
    pub fn k0(_ctx, x: u64) -> u64 { x }
}
ham::ham_kernel! {
    pub fn k1(_ctx, x: u64) -> u64 { x + 1 }
}
ham::ham_kernel! {
    pub fn k2(_ctx, x: u64) -> u64 { x + 2 }
}
ham::ham_kernel! {
    pub fn k3(_ctx, x: u64) -> u64 { x + 3 }
}

fn bench_registry(c: &mut Criterion) {
    let mut b = RegistryBuilder::new();
    b.register::<k0>()
        .register::<k1>()
        .register::<k2>()
        .register::<k3>();
    let host = b.seal(1);
    let mut b = RegistryBuilder::new();
    b.register::<k3>()
        .register::<k2>()
        .register::<k1>()
        .register::<k0>();
    let target = b.seal(2);

    let mut g = c.benchmark_group("registry");
    g.bench_function("key_of", |bch| bch.iter(|| host.key_of::<k2>().unwrap()));
    let key = host.key_of::<k2>().unwrap();
    g.bench_function("address_of", |bch| {
        bch.iter(|| target.address_of(black_box(key)).unwrap())
    });
    let (key, payload) = host.encode_message(&ham::f2f!(k2, 40)).unwrap();
    let mem = VecMemory::new(0);
    g.bench_function("execute_via_key", |bch| {
        bch.iter(|| {
            let mut ctx = ExecContext::new(1, &mem);
            target
                .execute(black_box(key), black_box(&payload), &mut ctx)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_registry);
criterion_main!(benches);
