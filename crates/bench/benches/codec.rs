//! Wall-clock cost of the HAM wire codec: serialisation is part of every
//! offload's framework overhead (the 5 µs of §V-A), so it must stay in
//! the nanosecond range.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize, Clone)]
struct SmallFunctor {
    a: u64,
    b: u64,
    n: u64,
}

#[derive(Serialize, Deserialize, Clone)]
struct RichFunctor {
    name: String,
    coefficients: Vec<f64>,
    flags: Option<(bool, u32)>,
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");

    let small = SmallFunctor { a: 1, b: 2, n: 3 };
    g.bench_function("encode_small_functor", |b| {
        b.iter(|| ham::codec::encode(black_box(&small)).unwrap())
    });
    let small_bytes = ham::codec::encode(&small).unwrap();
    g.bench_function("decode_small_functor", |b| {
        b.iter(|| ham::codec::decode::<SmallFunctor>(black_box(&small_bytes)).unwrap())
    });

    for n in [16usize, 256, 4096] {
        let rich = RichFunctor {
            name: "jacobi_step".into(),
            coefficients: (0..n).map(|i| i as f64).collect(),
            flags: Some((true, 7)),
        };
        let bytes = ham::codec::encode(&rich).unwrap();
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode_vec_f64", n), &rich, |b, rich| {
            b.iter(|| ham::codec::encode(black_box(rich)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("decode_vec_f64", n), &bytes, |b, bytes| {
            b.iter(|| ham::codec::decode::<RichFunctor>(black_box(bytes)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
