//! Device-runtime lane scaling: one 64-member batch carrier on a single
//! VE, executed by 1/2/4/8 worker lanes.
//!
//! The host-side program is *identical* in every configuration — post
//! ×64 to one target, `wait_all` — and the batch envelope delivers all
//! members to the device in one carrier message, so the measured
//! difference is purely what the per-core lanes extract from the member
//! set. Members charge a fixed amount of modeled compute, so per-member
//! virtual host time should approach a lanes-fold improvement; the gate
//! in `scripts/check.sh` requires at least 2× at 8 lanes over the
//! serial (1-lane) engine (carrier transport, in-order publication and
//! the tail of the last wavefront eat the rest).
//!
//! Writes the comparison to `BENCH_lanes.json` at the workspace root.
//!
//! Run with: `cargo bench -p aurora-bench --bench device_lanes`
//! (`-- --smoke` for the small CI configuration).

use aurora_workloads::kernels::compute_burn;
use ham::f2f;
use ham_backend_dma::{DmaBackend, ProtocolConfig};
use ham_offload::chan::BatchConfig;
use ham_offload::types::NodeId;
use ham_offload::Offload;
use veos_sim::{AuroraMachine, MachineConfig};

/// Members in the measured carrier. The JSON consumers key on this.
const DEPTH: usize = 64;
/// Modeled compute per member — heavy enough that lane parallelism,
/// not carrier transport, dominates the wave.
const FLOPS: u64 = 4_000_000;

fn spawn(lanes: usize) -> Offload {
    let machine = AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    );
    Offload::new(DmaBackend::spawn(
        machine,
        0,
        &[0],
        // Same ring depth and batch window in every configuration: the
        // 8-lane engine wins by executing members concurrently in
        // virtual time, not by moving bytes differently.
        ProtocolConfig {
            recv_slots: DEPTH,
            send_slots: DEPTH,
            lanes,
            ..Default::default()
        }
        .with_batch(BatchConfig::up_to(DEPTH)),
        aurora_workloads::register_all,
    ))
}

/// One `DEPTH`-member batched wave of `compute_burn`; returns virtual
/// host µs per member.
fn run_wave(o: &Offload) -> f64 {
    let t0 = o.backend().host_clock().now();
    let futures: Vec<_> = (0..DEPTH)
        .map(|_| {
            o.async_(NodeId(1), f2f!(compute_burn, FLOPS))
                .expect("post")
        })
        .collect();
    for r in o.wait_all(futures) {
        assert_eq!(r.expect("offload"), 1, "served by the single VE");
    }
    let elapsed = o.backend().host_clock().now() - t0;
    elapsed.as_us_f64() / DEPTH as f64
}

fn measure(lanes: usize, warmups: usize) -> (f64, u64) {
    let o = spawn(lanes);
    for _ in 0..warmups {
        run_wave(&o);
    }
    let per_member_us = run_wave(&o);
    let snap = o.metrics_snapshot();
    let busy: Vec<u16> = snap
        .lanes
        .iter()
        .filter(|l| l.tasks > 0)
        .map(|l| l.lane)
        .collect();
    assert!(
        busy.len() <= lanes,
        "a {lanes}-lane engine reported lanes {busy:?}"
    );
    let steals = snap.steals;
    o.shutdown();
    (per_member_us, steals)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let warmups = if smoke { 1 } else { 4 };

    let configs = [1usize, 2, 4, 8];
    let points: Vec<(usize, f64, u64)> = configs
        .iter()
        .map(|&lanes| {
            let (us, steals) = measure(lanes, warmups);
            (lanes, us, steals)
        })
        .collect();

    println!("## Device-runtime lane scaling ({DEPTH}-member batch carrier, DMA protocol)\n");
    println!(
        "{:<12} {:>14} {:>10} {:>10}",
        "lanes", "us/member", "speedup", "steals"
    );
    let serial = points[0].1;
    for (lanes, us, steals) in &points {
        println!(
            "{:<12} {:>14.3} {:>9.2}x {:>10}",
            lanes,
            us,
            serial / us,
            steals
        );
    }

    let lanes8 = points.last().expect("8-lane point").1;
    let speedup = serial / lanes8;
    println!("\n8-lane speedup over the serial engine: {speedup:.2}x");

    let lanes8_faster_2x = speedup >= 2.0;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"device_lanes\",\n",
            "  \"protocol\": \"dma\",\n",
            "  \"depth\": {},\n",
            "  \"flops_per_member\": {},\n",
            "  \"us_per_member\": {{{}}},\n",
            "  \"lanes8_speedup\": {:.3},\n",
            "  \"lanes8_faster_2x\": {}\n",
            "}}\n"
        ),
        DEPTH,
        FLOPS,
        points
            .iter()
            .map(|(l, us, _)| format!("\"{l}\": {us:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        speedup,
        lanes8_faster_2x
    );
    // CWD differs between `cargo bench` and a direct target/ invocation;
    // anchor the artifact at the workspace root via the manifest dir.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lanes.json");
    std::fs::write(path, &json).expect("write BENCH_lanes.json");
    println!("\nwrote BENCH_lanes.json:\n{json}");

    assert!(
        lanes8_faster_2x,
        "8 lanes must be >=2x the serial engine at depth {DEPTH}: {speedup:.2}x"
    );
    println!("ok");
}
