//! Per-component breakdown of the 6.1 µs DMA offload (§V-A's "6.1 µs
//! adds only 5 µs of framework overhead to the 1.2 µs PCIe round-trip
//! time"), computed from the calibrated component costs and checked
//! against the end-to-end measurement.

use crate::harness::Row;
use aurora_sim_core::{calib, SimTime};

/// The critical-path components of one empty offload over the DMA
/// protocol (Fig. 8), in order.
pub fn dma_offload_components() -> Vec<(&'static str, SimTime)> {
    let shm_flag = calib::shm_stream().transfer_time(1);
    // Empty offload message: 32 B header + ~30 B functor payload fits
    // the first 256 B DMA fetch; result frame is a single small DMA.
    let dma_fetch = calib::udma_vh2ve().transfer_time(256);
    let dma_result = calib::udma_ve2vh().transfer_time(64);
    vec![
        (
            "VH: serialise functor, bookkeeping",
            calib::HAM_HOST_OVERHEAD,
        ),
        ("VH: local message write + flag", calib::HAM_LOCAL_MEM_TOUCH),
        ("VE: LHM poll of request flag", calib::LHM_WORD),
        ("VE: user-DMA fetch of message", dma_fetch),
        ("VE: SHM reset of request flag", shm_flag),
        (
            "VE: dispatch, execute, serialise",
            calib::HAM_TARGET_OVERHEAD,
        ),
        ("VE: user-DMA deposit of result", dma_result),
        ("VE: SHM result flag", shm_flag),
        (
            "VH: local poll + result read",
            calib::HAM_LOCAL_MEM_TOUCH * 2,
        ),
    ]
}

/// Render the breakdown as rows, ending with the sum and the Fig. 9
/// target.
pub fn run() -> Vec<Row> {
    let comps = dma_offload_components();
    let mut rows: Vec<Row> = comps
        .iter()
        .map(|(label, t)| Row {
            label: (*label).to_string(),
            x: 0,
            value: t.as_us_f64(),
            unit: "us",
            paper: None,
        })
        .collect();
    let total: SimTime = comps.iter().map(|(_, t)| *t).sum();
    rows.push(Row {
        label: "sum of components".into(),
        x: 0,
        value: total.as_us_f64(),
        unit: "us",
        paper: Some(6.1),
    });
    let pcie = comps
        .iter()
        .filter(|(l, _)| l.contains("LHM") || l.contains("DMA") || l.contains("SHM"))
        .map(|(_, t)| *t)
        .sum::<SimTime>();
    rows.push(Row {
        label: "of which transport (vs 1.2 us PCIe RTT floor)".into(),
        x: 0,
        value: pcie.as_us_f64(),
        unit: "us",
        paper: None,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_sum_to_the_fig9_value() {
        let total: SimTime = dma_offload_components().iter().map(|(_, t)| *t).sum();
        let us = total.as_us_f64();
        assert!((us - 6.1).abs() / 6.1 < 0.03, "component sum = {us} us");
    }

    #[test]
    fn framework_share_matches_the_5us_statement() {
        // §V-A: ~5 µs of framework overhead on top of the PCIe floor.
        let total: SimTime = dma_offload_components().iter().map(|(_, t)| *t).sum();
        let beyond_pcie = total - SimTime::from_ns(1200);
        let us = beyond_pcie.as_us_f64();
        assert!((4.0..6.0).contains(&us), "framework share = {us} us");
    }
}
