//! §V textual claims, each checked against a fresh measurement.
//!
//! `repro_claims` prints one PASS/FAIL line per claim; the aggregate is
//! what EXPERIMENTS.md records.

use crate::fig10;
use crate::fig9;
use crate::harness::BenchConfig;

/// A checked claim.
#[derive(Clone, Debug)]
pub struct Claim {
    /// The claim, paraphrased from §V.
    pub text: String,
    /// Whether the reproduction satisfies it.
    pub ok: bool,
}

/// Evaluate every claim. Expensive: runs Fig. 9 and the Fig. 10 sweep.
pub fn run(cfg: &BenchConfig) -> Vec<Claim> {
    let mut claims = Vec::new();

    // Fig. 9 claims.
    let rows = fig9::run(cfg);
    for r in &rows {
        if let Some(p) = r.paper {
            claims.push(Claim {
                text: format!(
                    "Fig.9 {}: {:.2}{} (paper {:.2})",
                    r.label, r.value, r.unit, p
                ),
                ok: (r.value - p).abs() / p < 0.10,
            });
        }
    }

    // Fig. 10 shape claims.
    let sweep_cfg = BenchConfig {
        max_transfer: cfg.max_transfer.max(64 << 20),
        ..*cfg
    };
    let rows = fig10::run(&sweep_cfg);
    for (text, ok) in fig10::check_shape(&rows) {
        claims.push(Claim {
            text: format!("Fig.10 {text}"),
            ok,
        });
    }
    claims
}

/// Render claims as a PASS/FAIL report; returns `(report, all_passed)`.
pub fn render(claims: &[Claim]) -> (String, bool) {
    let mut out = String::new();
    let mut all = true;
    for c in claims {
        let tag = if c.ok { "PASS" } else { "FAIL" };
        all &= c.ok;
        out.push_str(&format!("[{tag}] {}\n", c.text));
    }
    let passed = claims.iter().filter(|c| c.ok).count();
    out.push_str(&format!("\n{passed}/{} claims reproduced\n", claims.len()));
    (out, all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_counts() {
        let claims = vec![
            Claim {
                text: "a".into(),
                ok: true,
            },
            Claim {
                text: "b".into(),
                ok: false,
            },
        ];
        let (report, all) = render(&claims);
        assert!(!all);
        assert!(report.contains("[PASS] a"));
        assert!(report.contains("[FAIL] b"));
        assert!(report.contains("1/2"));
    }
}
