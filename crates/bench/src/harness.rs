//! Shared measurement machinery.

use aurora_mem::{DmaTarget, Dmaatb, PageSize};
use aurora_sim_core::{Clock, SimTime};
use aurora_ve::{LhmShmUnit, UserDma};
use ham_offload::types::NodeId;
use ham_offload::Offload;
use std::sync::Arc;
use veo_api::VeoProc;
use veos_sim::{AuroraMachine, MachineConfig};

/// Repetition counts and memory sizing for a harness run.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Offload-cost repetitions (paper: 10⁶; deterministic sim needs far
    /// fewer for a stable mean).
    pub offload_reps: u32,
    /// Data-transfer repetitions per size (paper: 10³).
    pub transfer_reps: u32,
    /// Warm-up iterations (paper: 10).
    pub warmup: u32,
    /// Largest transfer size exercised (paper: 256 MiB).
    pub max_transfer: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            offload_reps: 200,
            transfer_reps: 3,
            warmup: 10,
            max_transfer: 256 << 20,
        }
    }
}

impl BenchConfig {
    /// A fast configuration for CI/tests.
    pub fn quick() -> Self {
        Self {
            offload_reps: 50,
            transfer_reps: 1,
            warmup: 5,
            max_transfer: 16 << 20,
        }
    }
}

/// Parse the repro binaries' common flags:
/// `--quick`, `--reps N`, `--max-mib M`, `--paper-reps` (the full 10⁶/10³
/// repetition counts of §V).
pub fn parse_config(args: impl Iterator<Item = String>) -> BenchConfig {
    let args: Vec<String> = args.collect();
    let mut cfg = if args.iter().any(|a| a == "--quick") {
        BenchConfig::quick()
    } else {
        BenchConfig::default()
    };
    if args.iter().any(|a| a == "--paper-reps") {
        cfg.offload_reps = aurora_sim_core::calib::PAPER_OFFLOAD_REPS as u32;
        cfg.transfer_reps = aurora_sim_core::calib::PAPER_TRANSFER_REPS as u32;
    }
    if let Some(w) = args.windows(2).find(|w| w[0] == "--reps") {
        if let Ok(n) = w[1].parse() {
            cfg.offload_reps = n;
        }
    }
    if let Some(w) = args.windows(2).find(|w| w[0] == "--max-mib") {
        if let Ok(n) = w[1].parse::<u64>() {
            cfg.max_transfer = n << 20;
        }
    }
    cfg
}

/// One output row of a repro harness.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (series / method name).
    pub label: String,
    /// Independent variable (bytes, or unused).
    pub x: u64,
    /// Measured value.
    pub value: f64,
    /// The unit of `value`.
    pub unit: &'static str,
    /// The paper's value, when it reports one for this cell.
    pub paper: Option<f64>,
}

impl Row {
    /// Render as a CSV line.
    pub fn csv(&self) -> String {
        match self.paper {
            Some(p) => format!(
                "{},{},{:.4},{},{}",
                self.label, self.x, self.value, self.unit, p
            ),
            None => format!("{},{},{:.4},{},", self.label, self.x, self.value, self.unit),
        }
    }
}

/// Render rows as an aligned text table.
pub fn render_table(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<42} {:>14} {:>14} {:>10} {:>12}\n",
        "series", "x", "measured", "unit", "paper"
    ));
    for r in rows {
        let paper = r
            .paper
            .map(|p| format!("{p:.3}"))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<42} {:>14} {:>14.4} {:>10} {:>12}\n",
            r.label, r.x, r.value, r.unit, paper
        ));
    }
    out
}

/// The paper's benchmark machine (Table III) with memory scaled to the
/// configured maximum transfer size.
pub fn benchmark_machine(cfg: &BenchConfig) -> Arc<AuroraMachine> {
    AuroraMachine::a300_8(MachineConfig {
        hbm_bytes: cfg.max_transfer + (16 << 20),
        vh_bytes: 2 * cfg.max_transfer + (32 << 20),
        ..Default::default()
    })
}

/// A machine with explicit page-size / DMA-manager configuration
/// (ablations).
pub fn machine_with(
    cfg: &BenchConfig,
    vh_page: PageSize,
    improved_dma: bool,
) -> Arc<AuroraMachine> {
    AuroraMachine::a300_8(MachineConfig {
        hbm_bytes: cfg.max_transfer + (16 << 20),
        vh_bytes: 2 * cfg.max_transfer + (32 << 20),
        vh_page,
        improved_dma,
    })
}

/// Mean cost (µs) of offloading an empty kernel through `offload`,
/// using the paper's warm-up + average methodology.
pub fn mean_empty_offload_us(offload: &Offload, cfg: &BenchConfig) -> f64 {
    use aurora_workloads::kernels::whoami;
    use ham::f2f;
    for _ in 0..cfg.warmup {
        offload
            .sync(NodeId(1), f2f!(whoami))
            .expect("warmup offload");
    }
    let t0 = offload.backend().host_clock().now();
    for _ in 0..cfg.offload_reps {
        offload.sync(NodeId(1), f2f!(whoami)).expect("offload");
    }
    let elapsed = offload.backend().host_clock().now() - t0;
    elapsed.as_us_f64() / cfg.offload_reps as f64
}

/// Mean cost (µs) of a native VEO call of an empty kernel.
pub fn mean_native_veo_call_us(machine: &Arc<AuroraMachine>, cfg: &BenchConfig) -> f64 {
    let proc = VeoProc::create(Arc::clone(machine), 0, 0, Clock::new());
    proc.load_library(veo_api::KernelLibrary::new().with("empty", |_, _| 0));
    let ctx = proc.open_context();
    let sym = proc.get_sym("empty").expect("symbol");
    let run = |reps: u32| {
        for _ in 0..reps {
            let req = ctx
                .call_async(&sym, veo_api::ArgsStack::new())
                .expect("call");
            ctx.wait_result(req).expect("result");
        }
    };
    run(cfg.warmup);
    let t0 = proc.host_clock().now();
    run(cfg.offload_reps);
    let elapsed = proc.host_clock().now() - t0;
    ctx.close();
    elapsed.as_us_f64() / cfg.offload_reps as f64
}

/// Transfer methods of Fig. 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// VH-initiated `veo_read_mem`/`veo_write_mem` (§III-D).
    VeoReadWrite,
    /// VE-initiated user DMA (§IV).
    VeUserDma,
    /// VE-initiated SHM/LHM instructions (§IV).
    VeShmLhm,
}

impl Method {
    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Method::VeoReadWrite => "VEO Read/Write",
            Method::VeUserDma => "VE User DMA",
            Method::VeShmLhm => "VE SHM/LHM",
        }
    }
}

/// Transfer directions of Fig. 10.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Host to Vector Engine.
    Vh2Ve,
    /// Vector Engine to host.
    Ve2Vh,
}

impl Dir {
    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Dir::Vh2Ve => "VH=>VE",
            Dir::Ve2Vh => "VE=>VH",
        }
    }
}

/// Measure the bandwidth (GiB/s) of moving `bytes` once per repetition
/// with `method` in `dir` on a fresh machine.
///
/// Each `(method, dir, size)` point uses fresh engines so occupancy from
/// other points does not leak in — matching per-point benchmark runs.
pub fn transfer_bandwidth(
    machine: &Arc<AuroraMachine>,
    method: Method,
    dir: Dir,
    bytes: u64,
    cfg: &BenchConfig,
) -> f64 {
    let reps = cfg.transfer_reps.max(1);
    let total = bytes * reps as u64;
    let elapsed = match method {
        Method::VeoReadWrite => veo_transfer_time(machine, dir, bytes, reps, cfg.warmup),
        Method::VeUserDma => udma_transfer_time(machine, dir, bytes, reps, cfg.warmup),
        Method::VeShmLhm => shm_lhm_transfer_time(machine, dir, bytes, reps, cfg.warmup),
    };
    aurora_sim_core::time::gib_per_sec(total, elapsed)
}

/// Bandwidth (GiB/s) of a *single* transfer issued from idle — the
/// credit-replenished state a protocol's flag/notification stores see.
/// Distinguishes §V-B's single-message claims from the saturated-loop
/// bandwidths of Fig. 10 / Table IV.
pub fn single_transfer_bandwidth(method: Method, dir: Dir, bytes: u64) -> f64 {
    let cfg = BenchConfig {
        transfer_reps: 1,
        warmup: 0,
        max_transfer: bytes.next_power_of_two().max(1 << 20),
        ..BenchConfig::quick()
    };
    // A fresh machine per measurement: no engine/wire occupancy carries
    // over from other points (each point is its own benchmark run).
    let machine = benchmark_machine(&cfg);
    transfer_bandwidth(&machine, method, dir, bytes, &cfg)
}

fn veo_transfer_time(
    machine: &Arc<AuroraMachine>,
    dir: Dir,
    bytes: u64,
    reps: u32,
    warmup: u32,
) -> SimTime {
    let proc = VeoProc::create(Arc::clone(machine), 0, 0, Clock::new());
    let vh = machine.vh(0);
    let host_buf = vh.alloc(bytes).expect("VH buffer");
    let ve_buf = proc.alloc_mem(bytes).expect("VE buffer");
    let run = |n: u32| {
        for _ in 0..n {
            match dir {
                Dir::Vh2Ve => proc.write_mem(host_buf, ve_buf, bytes).expect("write"),
                Dir::Ve2Vh => proc.read_mem(ve_buf, host_buf, bytes).expect("read"),
            };
        }
    };
    run(warmup.min(2));
    let t0 = proc.host_clock().now();
    run(reps);
    let elapsed = proc.host_clock().now() - t0;
    vh.free(host_buf).expect("free VH buffer");
    proc.free_mem(ve_buf).expect("free VE buffer");
    proc.destroy();
    elapsed
}

/// VE-side benchmark rig: a registered host segment, a DMAATB, fresh
/// engines, and a VE clock — the raw mechanisms of §IV, driven directly
/// as the paper's microbenchmarks do.
struct VeRig {
    atb: Dmaatb,
    vehva: aurora_mem::Vehva,
    hbm: Arc<aurora_mem::Region>,
    hbm_off: u64,
    udma: UserDma,
    lhm_shm: LhmShmUnit,
    clock: Clock,
}

fn ve_rig(machine: &Arc<AuroraMachine>, bytes: u64) -> VeRig {
    let ve = machine.ve(0);
    let seg = aurora_mem::Region::new(bytes.max(8));
    let atb = Dmaatb::new(8);
    let vehva = atb
        .register(
            DmaTarget {
                region: seg,
                offset: 0,
            },
            bytes.max(8),
        )
        .expect("register");
    let hbm_off = ve.alloc(bytes.max(8), 8).expect("HBM staging");
    let link = Arc::clone(ve.link());
    VeRig {
        atb,
        vehva,
        hbm: Arc::clone(ve.hbm()),
        hbm_off,
        udma: UserDma::new(Arc::clone(&link)),
        lhm_shm: LhmShmUnit::new(link),
        clock: Clock::new(),
    }
}

fn udma_transfer_time(
    machine: &Arc<AuroraMachine>,
    dir: Dir,
    bytes: u64,
    reps: u32,
    warmup: u32,
) -> SimTime {
    let rig = ve_rig(machine, bytes);
    let run = |n: u32| {
        for _ in 0..n {
            match dir {
                Dir::Vh2Ve => rig
                    .udma
                    .read_host(
                        &rig.clock,
                        &rig.atb,
                        rig.vehva,
                        &rig.hbm,
                        rig.hbm_off,
                        bytes,
                    )
                    .expect("dma read"),
                Dir::Ve2Vh => rig
                    .udma
                    .write_host(
                        &rig.clock,
                        &rig.atb,
                        &rig.hbm,
                        rig.hbm_off,
                        rig.vehva,
                        bytes,
                    )
                    .expect("dma write"),
            };
        }
    };
    run(warmup.min(2));
    let t0 = rig.clock.now();
    run(reps);
    machine.ve(0).free(rig.hbm_off).expect("free staging");
    rig.clock.now() - t0
}

fn shm_lhm_transfer_time(
    machine: &Arc<AuroraMachine>,
    dir: Dir,
    bytes: u64,
    reps: u32,
    warmup: u32,
) -> SimTime {
    let rig = ve_rig(machine, bytes);
    let words = (bytes.div_ceil(8)).max(1) as usize;
    let mut inbuf = vec![0u64; words];
    let outbuf: Vec<u64> = (0..words as u64).collect();
    let mut run = |n: u32| {
        for _ in 0..n {
            match dir {
                // LHM loads host memory into the VE.
                Dir::Vh2Ve => {
                    rig.lhm_shm
                        .lhm_stream(&rig.clock, &rig.atb, rig.vehva, &mut inbuf)
                        .expect("lhm");
                }
                // SHM stores VE data into host memory.
                Dir::Ve2Vh => {
                    rig.lhm_shm
                        .shm_stream(&rig.clock, &rig.atb, rig.vehva, &outbuf)
                        .expect("shm");
                }
            }
        }
    };
    run(warmup.min(2));
    let t0 = rig.clock.now();
    run(reps);
    machine.ve(0).free(rig.hbm_off).expect("free staging");
    rig.clock.now() - t0
}

/// The power-of-two size grid of Fig. 10: 8 B … `max` (SHM/LHM capped at
/// 4 MiB in the paper "due to prohibitive runtimes").
pub fn size_grid(max: u64) -> Vec<u64> {
    let mut sizes = Vec::new();
    let mut s = 8u64;
    while s <= max {
        sizes.push(s);
        s *= 2;
    }
    sizes
}

/// The paper's SHM/LHM measurement cap.
pub const SHM_LHM_MAX: u64 = 4 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_grid_is_powers_of_two() {
        let g = size_grid(64);
        assert_eq!(g, vec![8, 16, 32, 64]);
    }

    #[test]
    fn row_csv_renders() {
        let r = Row {
            label: "VEO Read/Write".into(),
            x: 1024,
            value: 1.5,
            unit: "GiB/s",
            paper: Some(9.9),
        };
        assert_eq!(r.csv(), "VEO Read/Write,1024,1.5000,GiB/s,9.9");
        let r2 = Row { paper: None, ..r };
        assert!(r2.csv().ends_with("GiB/s,"));
    }

    #[test]
    fn parse_config_flags() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let d = parse_config(args(&[]).into_iter());
        assert_eq!(d.offload_reps, BenchConfig::default().offload_reps);
        let q = parse_config(args(&["--quick"]).into_iter());
        assert_eq!(q.max_transfer, BenchConfig::quick().max_transfer);
        let r = parse_config(args(&["--reps", "7"]).into_iter());
        assert_eq!(r.offload_reps, 7);
        let m = parse_config(args(&["--max-mib", "2"]).into_iter());
        assert_eq!(m.max_transfer, 2 << 20);
        let p = parse_config(args(&["--paper-reps"]).into_iter());
        assert_eq!(
            p.offload_reps as u64,
            aurora_sim_core::calib::PAPER_OFFLOAD_REPS
        );
        // Bad values fall back silently.
        let b = parse_config(args(&["--reps", "x"]).into_iter());
        assert_eq!(b.offload_reps, BenchConfig::default().offload_reps);
    }

    #[test]
    fn udma_bandwidth_peaks_match_table4() {
        let cfg = BenchConfig::quick();
        let m = benchmark_machine(&cfg);
        let bw = transfer_bandwidth(&m, Method::VeUserDma, Dir::Ve2Vh, 16 << 20, &cfg);
        assert!((bw - 11.1).abs() / 11.1 < 0.05, "bw = {bw}");
    }

    #[test]
    fn veo_small_transfers_are_slow() {
        let cfg = BenchConfig::quick();
        let m = benchmark_machine(&cfg);
        let bw = transfer_bandwidth(&m, Method::VeoReadWrite, Dir::Vh2Ve, 8, &cfg);
        assert!(bw < 0.001, "8-byte VEO write at {bw} GiB/s");
    }

    #[test]
    fn shm_beats_lhm() {
        let cfg = BenchConfig::quick();
        let m = benchmark_machine(&cfg);
        let shm = transfer_bandwidth(&m, Method::VeShmLhm, Dir::Ve2Vh, 64 << 10, &cfg);
        let lhm = transfer_bandwidth(&m, Method::VeShmLhm, Dir::Vh2Ve, 64 << 10, &cfg);
        assert!(shm > lhm, "shm {shm} vs lhm {lhm}");
    }
}
