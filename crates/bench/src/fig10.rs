//! Fig. 10 — data-transfer bandwidth vs size, both directions.
//!
//! Series per direction: VEO Read/Write, VE User DMA, VE SHM/LHM (the
//! latter only up to 4 MiB, as in the paper). Sizes: 8 B … 256 MiB in
//! powers of two. Output is one row per point, CSV-renderable.

use crate::harness::{
    benchmark_machine, size_grid, transfer_bandwidth, BenchConfig, Dir, Method, Row, SHM_LHM_MAX,
};

/// Run the full Fig. 10 sweep.
pub fn run(cfg: &BenchConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    let machine = benchmark_machine(cfg);
    for dir in [Dir::Vh2Ve, Dir::Ve2Vh] {
        for method in [Method::VeoReadWrite, Method::VeUserDma, Method::VeShmLhm] {
            let max = if method == Method::VeShmLhm {
                SHM_LHM_MAX.min(cfg.max_transfer)
            } else {
                cfg.max_transfer
            };
            for &bytes in &size_grid(max) {
                let bw = transfer_bandwidth(&machine, method, dir, bytes, cfg);
                rows.push(Row {
                    label: format!("{} {}", dir.label(), method.label()),
                    x: bytes,
                    value: bw,
                    unit: "GiB/s",
                    paper: None,
                });
            }
        }
    }
    rows
}

/// Shape assertions on a completed sweep (used by `repro_claims` and the
/// test suite): every §V-B statement that Fig. 10 supports.
///
/// Small-message comparisons against user DMA use *single* transfers
/// from idle (replenished posted-write credits) — the state a protocol
/// notification sees — while the sweep rows carry saturated-loop
/// bandwidths (what Table IV reports). See EXPERIMENTS.md.
pub fn check_shape(rows: &[Row]) -> Vec<(String, bool)> {
    use crate::harness::single_transfer_bandwidth as single;
    let get = |label: &str, x: u64| -> f64 {
        rows.iter()
            .find(|r| r.label == label && r.x == x)
            .map(|r| r.value)
            .unwrap_or(f64::NAN)
    };
    let series_max = |label: &str| -> f64 {
        rows.iter()
            .filter(|r| r.label == label)
            .map(|r| r.value)
            .fold(f64::NAN, f64::max)
    };

    let veo_w = "VH=>VE VEO Read/Write";
    let veo_r = "VE=>VH VEO Read/Write";
    let dma_w = "VH=>VE VE User DMA";
    let dma_r = "VE=>VH VE User DMA";
    let lhm = "VH=>VE VE SHM/LHM";
    let shm = "VE=>VH VE SHM/LHM";

    let mut checks = Vec::new();
    let mut check = |name: &str, ok: bool| checks.push((name.to_string(), ok));

    // "VE user DMA is always faster than VEO's read and write."
    let dma_always_wins = rows
        .iter()
        .filter(|r| r.label == dma_w)
        .all(|r| r.value > get(veo_w, r.x))
        && rows
            .iter()
            .filter(|r| r.label == dma_r)
            .all(|r| r.value > get(veo_r, r.x));
    check(
        "user DMA beats VEO at every size, both directions",
        dma_always_wins,
    );

    // Peaks (Table IV).
    check(
        "VEO write peak ~9.9 GiB/s",
        (series_max(veo_w) - 9.9).abs() / 9.9 < 0.05,
    );
    check(
        "VEO read peak ~10.4 GiB/s",
        (series_max(veo_r) - 10.4).abs() / 10.4 < 0.05,
    );
    check(
        "uDMA VH=>VE peak ~10.6 GiB/s",
        (series_max(dma_w) - 10.6).abs() / 10.6 < 0.05,
    );
    check(
        "uDMA VE=>VH peak ~11.1 GiB/s",
        (series_max(dma_r) - 11.1).abs() / 11.1 < 0.05,
    );
    check(
        "SHM peak ~0.06 GiB/s",
        (series_max(shm) - 0.06).abs() / 0.06 < 0.10,
    );
    check(
        "LHM peak ~0.01 GiB/s",
        (series_max(lhm) - 0.01).abs() / 0.01 < 0.10,
    );

    // "VE user DMA achieves close to peak already for 1 MiB, vs 64 MiB
    // for VEO."
    check(
        "uDMA ≥95% of peak at 1 MiB",
        get(dma_w, 1 << 20) / series_max(dma_w) > 0.95,
    );
    check(
        "VEO <70% of peak at 1 MiB",
        get(veo_w, 1 << 20) / series_max(veo_w) < 0.70,
    );
    if rows.iter().any(|r| r.label == veo_w && r.x == 64 << 20) {
        check(
            "VEO ≥95% of peak at 64 MiB",
            get(veo_w, 64 << 20) / series_max(veo_w) > 0.95,
        );
    }

    // "Transferring data from the VE to the VH is in general faster."
    check(
        "VE=>VH faster than VH=>VE at peak (both methods)",
        series_max(dma_r) > series_max(dma_w) && series_max(veo_r) > series_max(veo_w),
    );

    // "Peak bandwidths between the directions differ by up to 5 %."
    check(
        "direction asymmetry ≤5%",
        series_max(dma_r) / series_max(dma_w) <= 1.05
            && series_max(veo_r) / series_max(veo_w) <= 1.055,
    );

    // "The store instruction outperforms VE user DMA for payloads up to
    // 256 byte" (and not beyond) — single messages from idle.
    check(
        "SHM beats uDMA for a single 256 B message",
        single(Method::VeShmLhm, Dir::Ve2Vh, 256) > single(Method::VeUserDma, Dir::Ve2Vh, 256),
    );
    check(
        "uDMA beats SHM for a single 512 B message",
        single(Method::VeUserDma, Dir::Ve2Vh, 512) > single(Method::VeShmLhm, Dir::Ve2Vh, 512),
    );
    // "89 % faster transfer times for a single word."
    {
        let shm_1w = 8.0 / single(Method::VeShmLhm, Dir::Ve2Vh, 8); // ∝ time
        let dma_1w = 8.0 / single(Method::VeUserDma, Dir::Ve2Vh, 8);
        let faster = 1.0 - shm_1w / dma_1w;
        check(
            "SHM single word ~89% faster than uDMA",
            (faster - 0.89).abs() < 0.03,
        );
    }

    // "LHM is only faster than user DMA for one or two words."
    check(
        "LHM beats uDMA for one word",
        single(Method::VeShmLhm, Dir::Vh2Ve, 8) > single(Method::VeUserDma, Dir::Vh2Ve, 8),
    );
    check(
        "LHM >= uDMA for two words",
        single(Method::VeShmLhm, Dir::Vh2Ve, 16)
            >= single(Method::VeUserDma, Dir::Vh2Ve, 16) * 0.99,
    );
    check(
        "uDMA beats LHM for four words",
        single(Method::VeUserDma, Dir::Vh2Ve, 32) > single(Method::VeShmLhm, Dir::Vh2Ve, 32),
    );

    // "Compared with VEO's host initiated read, the VE-issued store is
    // faster for small messages" (paper: up to 32 KiB; our smooth VEO
    // model places the crossover near 8 KiB — see EXPERIMENTS.md).
    check(
        "SHM beats VEO read at 4 KiB",
        get(shm, 4 << 10) > get(veo_r, 4 << 10),
    );
    check(
        "VEO read beats SHM at 64 KiB",
        get(veo_r, 64 << 10) > get(shm, 64 << 10),
    );

    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_shape_holds() {
        let cfg = BenchConfig {
            max_transfer: 64 << 20, // enough for every claim incl. 64 MiB
            ..BenchConfig::quick()
        };
        let rows = run(&cfg);
        let checks = check_shape(&rows);
        let failed: Vec<_> = checks.iter().filter(|(_, ok)| !ok).collect();
        assert!(failed.is_empty(), "failed claims: {failed:?}");
    }
}
