//! Tables I & III — hardware specs and benchmark-system configuration.

use aurora_ve::{CpuSpecs, VeSpecs};

/// Render Table I (VH CPU vs VE specifications).
pub fn table1() -> String {
    let cpu = CpuSpecs::xeon_gold_6126();
    let ve = VeSpecs::type_10b();
    let mut out = String::new();
    out.push_str("## Table I — processor specifications\n");
    out.push_str(&format!("{:<24} {:>22} {:>22}\n", "", cpu.name, ve.name));
    let mut row = |k: &str, a: String, b: String| {
        out.push_str(&format!("{k:<24} {a:>22} {b:>22}\n"));
    };
    row("Cores", cpu.cores.to_string(), ve.cores.to_string());
    row("Threads", cpu.threads.to_string(), ve.threads.to_string());
    row(
        "Vector width (double)",
        cpu.vector_width_f64.to_string(),
        ve.vector_width_f64.to_string(),
    );
    row(
        "Clock frequency",
        format!("{} GHz", cpu.clock_ghz),
        format!("{} GHz", ve.clock_ghz),
    );
    row(
        "Peak performance",
        format!("{} GFLOPS", cpu.peak_gflops),
        format!("{} GFLOPS", ve.peak_gflops),
    );
    row(
        "Max. memory",
        format!("{} GiB (DDR4)", cpu.memory_gib),
        format!("{} GiB (HBM2)", ve.memory_gib),
    );
    row(
        "Memory bandwidth",
        format!("{} GB/s", cpu.memory_bw_gb_s),
        format!("{} GB/s", ve.memory_bw_gb_s),
    );
    row(
        "L3/LLC",
        format!("{} MiB", cpu.llc_mib),
        format!("{} MiB", ve.llc_mib),
    );
    row("TDP", format!("{} W", cpu.tdp_w), format!("{} W", ve.tdp_w));
    out
}

/// Render Table III (benchmark system configuration, simulated
/// equivalents noted).
pub fn table3() -> String {
    let mut out = String::new();
    out.push_str("## Table III — benchmark system configuration\n");
    for (k, v) in [
        ("System", "NEC SX-Aurora TSUBASA A300-8 (simulated)"),
        ("VH CPUs", "2x Intel Xeon Gold 6126 (modeled)"),
        (
            "VH Memory",
            "192 GiB DDR4 (modeled; sim regions sized per run)",
        ),
        ("VE Cards", "8x NEC VE Type 10B, 48 GiB HBM2 (modeled)"),
        (
            "PCIe Config.",
            "2 switches, 4 VEs each, UPI between sockets (Fig. 3)",
        ),
        ("VH OS", "host OS of the simulation run"),
        ("VH compiler", "rustc (plays GCC 4.8.5's role)"),
        ("VEOS", "veos-sim, improved '1.3.2-4dma' DMA manager"),
        ("VEO", "veo-api (plays VEO 1.3.2a's role)"),
        ("VE compiler", "rustc (plays NEC NCC 1.6.0's role)"),
    ] {
        out.push_str(&format!("{k:<14} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_render_key_values() {
        let t1 = super::table1();
        assert!(t1.contains("2150.4 GFLOPS"));
        assert!(t1.contains("998.4 GFLOPS"));
        assert!(t1.contains("1228.8 GB/s"));
        let t3 = super::table3();
        assert!(t3.contains("A300-8"));
        assert!(t3.contains("1.3.2-4dma"));
    }
}
