//! Offload break-even analysis (§V-B, closing paragraph).
//!
//! "Offloading only pays off as reduced time to solution, if the gain by
//! either faster program execution on the offload target, or by using
//! host and target in parallel, exceeds the offload overhead. […] Lower
//! overhead means that more code of an application becomes a feasible
//! target for offloading, and offloads can become more fine-grained."
//!
//! This module quantifies that: given the Table I peak rates and the
//! measured per-offload overheads, compute the minimum kernel size at
//! which each offload path wins over host execution.

use crate::harness::Row;
use aurora_sim_core::calib;
use aurora_sim_core::SimTime;
use aurora_ve::{CpuSpecs, VeSpecs};

/// Sustained fraction of peak a well-vectorised kernel achieves (same
/// assumption applied to both sides, so it cancels in the speedup).
pub const EFFICIENCY: f64 = 0.5;

/// The execution-rate model used for the analysis.
#[derive(Clone, Copy, Debug)]
pub struct ExecModel {
    /// Host sustained GFLOPS.
    pub host_gflops: f64,
    /// VE sustained GFLOPS.
    pub ve_gflops: f64,
}

impl ExecModel {
    /// From Table I peaks at [`EFFICIENCY`].
    pub fn table1() -> Self {
        Self {
            host_gflops: CpuSpecs::xeon_gold_6126().peak_gflops * EFFICIENCY,
            ve_gflops: VeSpecs::type_10b().peak_gflops * EFFICIENCY,
        }
    }

    /// Host execution time of a kernel of `flops`.
    pub fn host_time(&self, flops: f64) -> SimTime {
        SimTime::from_secs_f64(flops / (self.host_gflops * 1e9))
    }

    /// VE execution time of a kernel of `flops`.
    pub fn ve_time(&self, flops: f64) -> SimTime {
        SimTime::from_secs_f64(flops / (self.ve_gflops * 1e9))
    }

    /// Minimum kernel size (flops) where `overhead + T_ve < T_host`.
    ///
    /// Solves `overhead = flops/host_rate − flops/ve_rate`.
    pub fn breakeven_flops(&self, overhead: SimTime) -> f64 {
        let host_rate = self.host_gflops * 1e9;
        let ve_rate = self.ve_gflops * 1e9;
        assert!(ve_rate > host_rate, "no win possible");
        overhead.as_secs_f64() / (1.0 / host_rate - 1.0 / ve_rate)
    }

    /// The host-side duration of the break-even kernel — the offload
    /// *granularity* each protocol makes feasible.
    pub fn breakeven_host_time(&self, overhead: SimTime) -> SimTime {
        self.host_time(self.breakeven_flops(overhead))
    }
}

/// Offload paths compared, `(label, per-offload overhead)`.
pub fn overheads() -> Vec<(&'static str, SimTime)> {
    vec![
        ("HAM-Offload (DMA backend)", calib::DMA_OFFLOAD_TARGET),
        ("VEO (native call)", calib::VEO_CALL_ROUNDTRIP),
        (
            "HAM-Offload (VEO backend)",
            calib::VEO_WRITE_BASE * 2 + calib::VEO_READ_BASE * 2,
        ),
    ]
}

/// Run the analysis.
pub fn run() -> Vec<Row> {
    let model = ExecModel::table1();
    let mut rows = Vec::new();
    for (label, overhead) in overheads() {
        let flops = model.breakeven_flops(overhead);
        let granularity = model.breakeven_host_time(overhead);
        rows.push(Row {
            label: format!("{label}: break-even kernel"),
            x: flops as u64,
            value: granularity.as_us_f64(),
            unit: "us host-time",
            paper: None,
        });
    }
    // The headline: how much finer-grained the DMA protocol lets
    // offloads become.
    let dma = model.breakeven_host_time(calib::DMA_OFFLOAD_TARGET);
    let ham_veo = model.breakeven_host_time(calib::VEO_WRITE_BASE * 2 + calib::VEO_READ_BASE * 2);
    rows.push(Row {
        label: "granularity gain, DMA vs VEO backend".into(),
        x: 0,
        value: ham_veo.as_us_f64() / dma.as_us_f64(),
        unit: "x finer",
        paper: Some(70.8),
    });
    rows
}

/// *Measured* break-even: offload `compute_burn` kernels of increasing
/// size through the real DMA-backend protocol (kernels charge modeled VE
/// compute time via the meter) and find the smallest kernel whose
/// offloaded time beats the host execution model.
pub fn run_measured(cfg: &crate::harness::BenchConfig) -> Vec<Row> {
    use aurora_workloads::kernels::{compute_burn, register_all};
    use ham::f2f;
    use ham_backend_dma::DmaBackend;
    use ham_backend_veo::ProtocolConfig;
    use ham_offload::types::NodeId;
    use ham_offload::Offload;

    let o = Offload::new(DmaBackend::spawn(
        crate::harness::benchmark_machine(cfg),
        0,
        &[0],
        ProtocolConfig::default(),
        register_all,
    ));
    for _ in 0..cfg.warmup {
        o.sync(NodeId(1), f2f!(compute_burn, 0)).expect("warmup");
    }
    let model = ExecModel::table1();
    let mut rows = Vec::new();
    let mut crossover_flops = None;
    let mut flops = 1u64 << 20;
    while flops <= 1 << 26 {
        let t0 = o.backend().host_clock().now();
        o.sync(NodeId(1), f2f!(compute_burn, flops))
            .expect("offload");
        let offloaded = o.backend().host_clock().now() - t0;
        let host = model.host_time(flops as f64);
        if crossover_flops.is_none() && offloaded < host {
            crossover_flops = Some(flops);
        }
        rows.push(Row {
            label: format!(
                "{} Mflop kernel: offload {:.1} us vs host {:.1} us",
                flops >> 20,
                offloaded.as_us_f64(),
                host.as_us_f64()
            ),
            x: flops,
            value: offloaded.as_us_f64() / host.as_us_f64(),
            unit: "x of host",
            paper: None,
        });
        flops *= 2;
    }
    o.shutdown();
    let predicted = model.breakeven_flops(calib::DMA_OFFLOAD_TARGET);
    rows.push(Row {
        label: "measured crossover (flops, power-of-two grid)".into(),
        x: crossover_flops.unwrap_or(0),
        value: crossover_flops.unwrap_or(0) as f64 / predicted,
        unit: "x of analytic",
        paper: Some(1.0),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_crossover_brackets_the_analytic_one() {
        let rows = run_measured(&crate::harness::BenchConfig::quick());
        let crossover = rows.last().unwrap();
        assert!(crossover.x > 0, "a crossover must exist in the sweep");
        // Power-of-two grid: the first winning size is within 2x of the
        // analytic break-even point.
        assert!(
            crossover.value >= 0.9 && crossover.value <= 2.1,
            "measured/analytic = {}",
            crossover.value
        );
        // Below the crossover offloading loses, above it wins.
        let below: Vec<&Row> = rows.iter().filter(|r| r.x < crossover.x).collect();
        let above: Vec<&Row> = rows
            .iter()
            .filter(|r| r.x >= crossover.x && r.unit == "x of host")
            .collect();
        assert!(below.iter().all(|r| r.value > 1.0), "{below:?}");
        assert!(above.iter().all(|r| r.value < 1.0), "{above:?}");
    }

    #[test]
    fn ve_is_faster_at_peak() {
        let m = ExecModel::table1();
        assert!(m.ve_gflops > 2.0 * m.host_gflops);
    }

    #[test]
    fn breakeven_scales_linearly_with_overhead() {
        let m = ExecModel::table1();
        let a = m.breakeven_flops(SimTime::from_us(10));
        let b = m.breakeven_flops(SimTime::from_us(20));
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn at_breakeven_offload_equals_host() {
        let m = ExecModel::table1();
        let overhead = calib::DMA_OFFLOAD_TARGET;
        let flops = m.breakeven_flops(overhead);
        let host = m.host_time(flops);
        let offloaded = overhead + m.ve_time(flops);
        let rel = (host.as_ns_f64() - offloaded.as_ns_f64()).abs() / host.as_ns_f64();
        assert!(rel < 1e-6, "host {host}, offloaded {offloaded}");
    }

    #[test]
    fn dma_grants_the_fig9_granularity_factor() {
        let rows = run();
        let gain = rows.last().unwrap();
        // Break-even granularity scales linearly in overhead, so the
        // gain equals the Fig. 9 cost ratio (70.8x).
        assert!(
            (gain.value - 70.8).abs() / 70.8 < 0.02,
            "gain {}",
            gain.value
        );
    }

    #[test]
    fn dma_breakeven_is_tens_of_microseconds() {
        let m = ExecModel::table1();
        let g = m.breakeven_host_time(calib::DMA_OFFLOAD_TARGET);
        // ~6 µs overhead with a ~2.15x speedup → breakeven ~11-12 µs of
        // host work; the VEO backend needs ~800 µs kernels.
        assert!(g.as_us_f64() > 8.0 && g.as_us_f64() < 16.0, "g = {g}");
        let veo = m.breakeven_host_time(calib::VEO_WRITE_BASE * 2 + calib::VEO_READ_BASE * 2);
        assert!(veo.as_us_f64() > 600.0, "veo backend breakeven = {veo}");
    }
}
