//! Table IV — maximum PCIe bandwidths per transfer method and direction.

use crate::harness::{
    benchmark_machine, size_grid, transfer_bandwidth, BenchConfig, Dir, Method, Row, SHM_LHM_MAX,
};

/// The paper's Table IV, as `(method, VH⇒VE, VE⇒VH)` in GiB/s.
pub const PAPER: [(&str, f64, f64); 3] = [
    ("VEO Read/Write", 9.9, 10.4),
    ("VE User DMA", 10.6, 11.1),
    ("VE SHM/LHM", 0.01, 0.06),
];

/// Run the Table IV experiment: max bandwidth over the size sweep.
pub fn run(cfg: &BenchConfig) -> Vec<Row> {
    let machine = benchmark_machine(cfg);
    let mut rows = Vec::new();
    for (method, paper_w, paper_r) in [
        (Method::VeoReadWrite, PAPER[0].1, PAPER[0].2),
        (Method::VeUserDma, PAPER[1].1, PAPER[1].2),
        (Method::VeShmLhm, PAPER[2].1, PAPER[2].2),
    ] {
        for (dir, paper) in [(Dir::Vh2Ve, paper_w), (Dir::Ve2Vh, paper_r)] {
            let max = if method == Method::VeShmLhm {
                SHM_LHM_MAX.min(cfg.max_transfer)
            } else {
                cfg.max_transfer
            };
            let best = size_grid(max)
                .into_iter()
                .map(|b| transfer_bandwidth(&machine, method, dir, b, cfg))
                .fold(f64::NAN, f64::max);
            rows.push(Row {
                label: format!("{} {}", dir.label(), method.label()),
                x: 0,
                value: best,
                unit: "GiB/s",
                paper: Some(paper),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_within_tolerance() {
        let rows = run(&BenchConfig::quick());
        for r in &rows {
            let paper = r.paper.expect("table IV cells have paper values");
            let rel = (r.value - paper).abs() / paper;
            assert!(rel < 0.10, "{}: {} vs paper {}", r.label, r.value, paper);
        }
    }
}
