//! # aurora-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§V) against the simulated platform:
//!
//! | target | paper artefact | binary |
//! |---|---|---|
//! | [`fig9`]   | Fig. 9 offload cost          | `repro_fig9` |
//! | [`fig10`]  | Fig. 10 bandwidth curves     | `repro_fig10` |
//! | [`table4`] | Table IV peak bandwidths     | `repro_table4` |
//! | [`sysinfo`]| Tables I & III               | `repro_tables` |
//! | [`claims`] | §V textual claims, checked   | `repro_claims` |
//! | [`ablation`]| design-choice ablations     | `repro_ablation` |
//!
//! `repro_all` runs everything and writes `EXPERIMENTS`-ready output.
//!
//! Methodology mirrors §V: warm-up iterations, then averages over many
//! repetitions; measurements are deterministic virtual time.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod ablation;
pub mod breakdown;
pub mod breakeven;
pub mod claims;
pub mod fig10;
pub mod fig9;
pub mod harness;
pub mod sysinfo;
pub mod table4;

pub use harness::{BenchConfig, Row};
