//! Regenerate Table IV: maximum PCIe bandwidths per method/direction.

use aurora_bench::{harness, table4};

fn main() {
    let cfg = harness::parse_config(std::env::args().skip(1));
    let rows = table4::run(&cfg);
    print!(
        "{}",
        harness::render_table("Table IV — max PCIe bandwidths", &rows)
    );
}
