//! Regenerate Fig. 10: transfer bandwidth vs size, both directions.
//!
//! Usage: `repro_fig10 [--quick] [--max-mib M]` — prints CSV series
//! (`series,bytes,GiB/s`) suitable for re-plotting the four panels.

use aurora_bench::{fig10, harness};

fn main() {
    let cfg = harness::parse_config(std::env::args().skip(1));
    let rows = fig10::run(&cfg);
    println!("series,bytes,gib_per_s");
    for r in &rows {
        println!("{},{},{:.6}", r.label, r.x, r.value);
    }
    eprintln!();
    for (claim, ok) in fig10::check_shape(&rows) {
        eprintln!("[{}] {claim}", if ok { "PASS" } else { "FAIL" });
    }
}
