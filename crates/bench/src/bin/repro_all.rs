//! Run the complete evaluation: Tables I/III/IV, Figs. 9/10, the claim
//! checks and the ablations — everything EXPERIMENTS.md records.

use aurora_bench::{ablation, breakdown, breakeven, claims, fig10, fig9, harness, sysinfo, table4};

fn main() {
    let cfg = harness::parse_config(std::env::args().skip(1));

    print!("{}", sysinfo::table1());
    println!();
    print!("{}", sysinfo::table3());
    println!();

    print!(
        "{}",
        harness::render_table("Fig. 9 — offload cost (empty kernel)", &fig9::run(&cfg))
    );
    println!();

    print!(
        "{}",
        harness::render_table("Table IV — max PCIe bandwidths", &table4::run(&cfg))
    );
    println!();

    println!("## Fig. 10 — bandwidth sweep (CSV)");
    println!("series,bytes,gib_per_s");
    let rows = fig10::run(&cfg);
    for r in &rows {
        println!("{},{},{:.6}", r.label, r.x, r.value);
    }
    println!();

    println!("## §V claims");
    let (report, _ok) = claims::render(&claims::run(&cfg));
    print!("{report}");
    println!();

    for (title, rows) in [
        ("Ablation: VH page size", ablation::pages(&cfg)),
        ("Ablation: DMA manager", ablation::dma_manager(&cfg)),
        ("Ablation: message slots", ablation::slots(&cfg)),
        ("Ablation: SHM credit window", ablation::shm_window(&cfg)),
        ("Breakdown: DMA offload components (§V-A)", breakdown::run()),
        ("Break-even granularity (§V-B)", breakeven::run()),
    ] {
        print!("{}", harness::render_table(title, &rows));
        println!();
    }
}
