//! Print Tables I and III (specifications and system configuration).
//!
//! Usage: `repro_tables [--table 1|3]` (default: both).

use aurora_bench::sysinfo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .windows(2)
        .find(|w| w[0] == "--table")
        .map(|w| w[1].clone());
    match which.as_deref() {
        Some("1") => print!("{}", sysinfo::table1()),
        Some("3") => print!("{}", sysinfo::table3()),
        _ => {
            print!("{}", sysinfo::table1());
            println!();
            print!("{}", sysinfo::table3());
        }
    }
}
