//! Trace live offloads through the DMA protocol and render their
//! virtual-time timelines — the *measured* counterpart of the §V-A cost
//! breakdown (`repro_breakdown` computes the same table from the
//! calibration constants).
//!
//! Besides the text timeline this harness exports the capture as
//! `repro_trace.trace.json` (Chrome trace-event format — load it in
//! Perfetto / `chrome://tracing` for one track per simulated engine) and
//! `repro_trace.jsonl` (one event per line for ad-hoc tooling), and
//! prints the backend's metric registers. Files land in `target/repro/`
//! by default; override with `--out-dir <dir>`.

use aurora_bench::harness::{benchmark_machine, BenchConfig};
use aurora_sim_core::trace;
use aurora_workloads::kernels::{register_all, whoami};
use ham::f2f;
use ham_backend_dma::DmaBackend;
use ham_backend_veo::ProtocolConfig;
use ham_offload::types::NodeId;
use ham_offload::Offload;

/// `--out-dir <dir>` (default `target/repro/`): where the trace files go.
fn out_dir() -> std::path::PathBuf {
    let mut args = std::env::args().skip(1);
    let mut dir = std::path::PathBuf::from("target/repro");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out-dir" => {
                dir = args.next().expect("--out-dir needs a value").into();
            }
            other => panic!("unknown argument {other:?} (supported: --out-dir <dir>)"),
        }
    }
    dir
}

fn main() {
    let out = out_dir();
    let cfg = BenchConfig::quick();
    let o = Offload::new(DmaBackend::spawn(
        benchmark_machine(&cfg),
        0,
        &[0],
        ProtocolConfig::default(),
        register_all,
    ));
    // Reach steady state so the traced offload is representative.
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }

    let session = trace::TraceSession::start();
    let t0 = o.backend().host_clock().now();
    o.sync(NodeId(1), f2f!(whoami)).unwrap();
    let t1 = o.backend().host_clock().now();
    // A bulk round trip so the capture also shows the put/get path.
    let buf = o.allocate::<u64>(NodeId(1), 512).unwrap();
    let data = vec![7u64; 512];
    o.put(&data, buf).unwrap();
    let mut back = vec![0u64; 512];
    o.get(buf, &mut back).unwrap();
    assert_eq!(back, data);
    o.free(buf).unwrap();
    let capture = session.finish();

    println!("## Measured timeline of one empty offload (DMA protocol)\n");
    let events = trace::sim_events(&capture);
    let offload_events: Vec<_> = events.iter().filter(|e| e.offload != 0).cloned().collect();
    println!("{}", trace::render(&offload_events));
    println!(
        "end-to-end (host clock): {} — paper Fig. 9: 6.1 us",
        t1 - t0
    );
    let traced: f64 = offload_events
        .iter()
        .map(|e| e.duration().as_us_f64())
        .sum();
    println!("sum of traced component durations: {traced:.3} us");
    println!(
        "correlated components: {:?}",
        capture
            .offload_ids()
            .first()
            .map(|&id| {
                let mut engines: Vec<_> = capture
                    .events_for_offload(id)
                    .iter()
                    .map(|e| e.engine())
                    .collect();
                engines.sort_unstable();
                engines.dedup();
                engines
            })
            .unwrap_or_default()
    );

    println!("\n## Backend metric registers\n");
    println!("{}", o.metrics_snapshot().render());

    std::fs::create_dir_all(&out).expect("create out dir");
    let chrome = out.join("repro_trace.trace.json");
    let jsonl = out.join("repro_trace.jsonl");
    std::fs::write(&chrome, capture.to_chrome_json()).expect("write chrome trace");
    std::fs::write(&jsonl, capture.to_jsonl()).expect("write jsonl");
    println!(
        "wrote {} ({} spans) — load in Perfetto / chrome://tracing",
        chrome.display(),
        capture.len()
    );
    println!("wrote {}", jsonl.display());
    o.shutdown();
}
