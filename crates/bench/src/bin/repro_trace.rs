//! Trace one live offload through the DMA protocol and render its
//! virtual-time timeline — the *measured* counterpart of the §V-A cost
//! breakdown (`repro_breakdown` computes the same table from the
//! calibration constants).

use aurora_bench::harness::{benchmark_machine, BenchConfig};
use aurora_sim_core::trace;
use aurora_workloads::kernels::{register_all, whoami};
use ham::f2f;
use ham_backend_dma::DmaBackend;
use ham_backend_veo::ProtocolConfig;
use ham_offload::types::NodeId;
use ham_offload::Offload;

fn main() {
    let cfg = BenchConfig::quick();
    let o = Offload::new(DmaBackend::spawn(
        benchmark_machine(&cfg),
        0,
        &[0],
        ProtocolConfig::default(),
        register_all,
    ));
    // Reach steady state so the traced offload is representative.
    for _ in 0..10 {
        o.sync(NodeId(1), f2f!(whoami)).unwrap();
    }

    trace::enable();
    let t0 = o.backend().host_clock().now();
    o.sync(NodeId(1), f2f!(whoami)).unwrap();
    let t1 = o.backend().host_clock().now();
    let events = trace::disable_and_take();

    println!("## Measured timeline of one empty offload (DMA protocol)\n");
    println!("{}", trace::render(&events));
    println!(
        "end-to-end (host clock): {} — paper Fig. 9: 6.1 us",
        t1 - t0
    );
    let traced: f64 = events.iter().map(|e| e.duration().as_us_f64()).sum();
    println!("sum of traced component durations: {traced:.3} us");
    o.shutdown();
}
