//! Ablation studies of the paper's design choices.
//!
//! Usage: `repro_ablation [--which pages|dma-manager|slots|shm-window]`
//! (default: all).

use aurora_bench::{ablation, harness};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .windows(2)
        .find(|w| w[0] == "--which")
        .map(|w| w[1].clone());
    let cfg = harness::parse_config(args.clone().into_iter());
    let run = |name: &str| match name {
        "pages" => print!(
            "{}",
            harness::render_table("Ablation: VH page size (§V-B)", &ablation::pages(&cfg))
        ),
        "dma-manager" => print!(
            "{}",
            harness::render_table(
                "Ablation: privileged DMA manager (§III-D)",
                &ablation::dma_manager(&cfg)
            )
        ),
        "slots" => print!(
            "{}",
            harness::render_table(
                "Ablation: message slots per direction (Fig. 5)",
                &ablation::slots(&cfg)
            )
        ),
        "shm-window" => print!(
            "{}",
            harness::render_table(
                "Ablation: SHM credit window (§V-B)",
                &ablation::shm_window(&cfg)
            )
        ),
        "dma-contention" => print!(
            "{}",
            harness::render_table(
                "Ablation: shared privileged DMA engine (§I-B)",
                &ablation::dma_contention(&cfg)
            )
        ),
        other => eprintln!("unknown ablation {other:?}"),
    };
    match which.as_deref() {
        Some(name) => run(name),
        None => {
            for name in [
                "pages",
                "dma-manager",
                "slots",
                "shm-window",
                "dma-contention",
            ] {
                run(name);
                println!();
            }
        }
    }
}
