//! Check every §V textual claim against a fresh measurement; exits
//! non-zero if any claim fails to reproduce.

use aurora_bench::{claims, harness};

fn main() {
    let cfg = harness::parse_config(std::env::args().skip(1));
    let all_claims = claims::run(&cfg);
    let (report, ok) = claims::render(&all_claims);
    print!("{report}");
    if !ok {
        std::process::exit(1);
    }
}
