//! Per-component cost breakdown of the 6.1 µs DMA offload (§V-A) and
//! the offload break-even analysis (§V-B closing paragraph).

use aurora_bench::{breakdown, breakeven, harness};

fn main() {
    let cfg = harness::parse_config(std::env::args().skip(1));
    print!(
        "{}",
        harness::render_table(
            "Breakdown: one empty offload over the DMA protocol (Fig. 8 / §V-A)",
            &breakdown::run()
        )
    );
    println!();
    print!(
        "{}",
        harness::render_table(
            "Break-even: minimum kernel granularity per offload path (§V-B)",
            &breakeven::run()
        )
    );
    println!();
    print!(
        "{}",
        harness::render_table(
            "Break-even, measured: compute_burn kernels offloaded through the DMA protocol",
            &breakeven::run_measured(&cfg)
        )
    );
    println!();
    println!("## Why not TCP/IP on this platform (§III-A)");
    println!(
        "estimated per-offload cost of a TCP backend on the SX-Aurora\n\
         (every VE socket operation reverse-offloads a syscall): ~{}\n\
         vs 6.1 us for the DMA protocol — a {:.0}x penalty.",
        ham_backend_tcp::tcp_on_aurora_estimate(),
        ham_backend_tcp::tcp_on_aurora_estimate().as_us_f64() / 6.1
    );
}
