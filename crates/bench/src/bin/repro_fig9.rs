//! Regenerate Fig. 9: function offload cost, VH to local VE.
//!
//! Usage: `repro_fig9 [--reps N] [--quick]`

use aurora_bench::{fig9, harness};

fn main() {
    let cfg = aurora_bench::harness::parse_config(std::env::args().skip(1));
    let rows = fig9::run(&cfg);
    print!(
        "{}",
        harness::render_table("Fig. 9 — offload cost (empty kernel)", &rows)
    );
    println!("\ncsv:");
    for r in &rows {
        println!("{}", r.csv());
    }
}
