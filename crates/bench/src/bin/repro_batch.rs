//! Small-message batching breakdown: per-offload cost and wire-frame
//! count at pipeline depths 1 / 8 / 64 on the DMA protocol, with the
//! channel core's message coalescing off (the default) and on
//! (`BatchConfig::up_to(16)`). Source of the EXPERIMENTS.md batching
//! table; the CI artifact/gate lives in the `pipelined_offloads` bench.

use aurora_bench::harness::{render_table, Row};
use aurora_workloads::kernels::whoami;
use ham::f2f;
use ham_backend_dma::{DmaBackend, ProtocolConfig};
use ham_offload::chan::BatchConfig;
use ham_offload::types::NodeId;
use ham_offload::Offload;
use veos_sim::{AuroraMachine, MachineConfig};

fn spawn(batch: BatchConfig) -> Offload {
    let machine = AuroraMachine::small(
        1,
        MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        },
    );
    Offload::new(DmaBackend::spawn(
        machine,
        0,
        &[0],
        ProtocolConfig {
            recv_slots: 64,
            send_slots: 64,
            ..Default::default()
        }
        .with_batch(batch),
        aurora_workloads::register_all,
    ))
}

/// One depth-`n` `async_` + `wait_all` wave; returns (µs/offload, frames).
fn wave(o: &Offload, n: u32) -> (f64, u64) {
    let t = NodeId(1);
    let before = o.metrics_snapshot();
    let t0 = o.backend().host_clock().now();
    let futures: Vec<_> = (0..n)
        .map(|_| o.async_(t, f2f!(whoami)).expect("post"))
        .collect();
    for r in o.wait_all(futures) {
        assert_eq!(r.expect("offload"), 1);
    }
    let elapsed = o.backend().host_clock().now() - t0;
    let after = o.metrics_snapshot();
    (
        elapsed.as_us_f64() / n as f64,
        after.frames_sent - before.frames_sent,
    )
}

fn main() {
    let off = spawn(BatchConfig::default());
    let on = spawn(BatchConfig::up_to(16));
    for o in [&off, &on] {
        for _ in 0..10 {
            o.sync(NodeId(1), f2f!(whoami)).expect("warmup");
        }
    }
    let mut rows = Vec::new();
    for depth in [1u32, 8, 64] {
        for (label, o) in [("batching off", &off), ("batching on (up_to 16)", &on)] {
            let (us, frames) = wave(o, depth);
            rows.push(Row {
                label: format!("{label}, depth {depth}"),
                x: frames,
                value: us,
                unit: "us/offload",
                paper: None,
            });
        }
    }
    off.shutdown();
    on.shutdown();
    print!(
        "{}",
        render_table(
            "Small-message batching, DMA protocol (x = wire frames sent)",
            &rows
        )
    );
}
