//! Ablations of the design choices the paper calls out.
//!
//! * **pages** — huge (2 MiB) vs small (4 KiB) VH pages for VEO
//!   transfers ("it is important to use huge pages", §V-B);
//! * **dma-manager** — improved (1.3.2-4dma, bulk/overlapped
//!   translation) vs classic per-page translation (§III-D);
//! * **slots** — number of message buffers per direction (the
//!   communication/computation overlap knob of the Fig. 5 protocol);
//! * **shm-window** — sensitivity of SHM small-message wins to the
//!   posted-write credit window (§V-B's two SHM regimes).

use crate::harness::{machine_with, transfer_bandwidth, BenchConfig, Dir, Method, Row};
use aurora_mem::PageSize;
use aurora_sim_core::calib;
use aurora_workloads::kernels::register_all;
use ham_backend_dma::DmaBackend;
use ham_backend_veo::ProtocolConfig;
use ham_offload::types::NodeId;
use ham_offload::Offload;

/// Huge vs small pages at a large transfer size.
pub fn pages(cfg: &BenchConfig) -> Vec<Row> {
    let size = (64u64 << 20).min(cfg.max_transfer);
    let mut rows = Vec::new();
    for (label, page) in [
        ("huge 2MiB pages", PageSize::Huge2M),
        ("small 4KiB pages", PageSize::Small4K),
    ] {
        let m = machine_with(cfg, page, true);
        let bw = transfer_bandwidth(&m, Method::VeoReadWrite, Dir::Vh2Ve, size, cfg);
        rows.push(Row {
            label: format!("VEO write, {label}"),
            x: size,
            value: bw,
            unit: "GiB/s",
            paper: None,
        });
    }
    rows
}

/// Improved vs classic privileged DMA manager.
pub fn dma_manager(cfg: &BenchConfig) -> Vec<Row> {
    let size = (64u64 << 20).min(cfg.max_transfer);
    let mut rows = Vec::new();
    for (label, improved) in [("improved (1.3.2-4dma)", true), ("classic", false)] {
        let m = machine_with(cfg, PageSize::Huge2M, improved);
        let bw = transfer_bandwidth(&m, Method::VeoReadWrite, Dir::Vh2Ve, size, cfg);
        rows.push(Row {
            label: format!("VEO write, {label} manager"),
            x: size,
            value: bw,
            unit: "GiB/s",
            paper: None,
        });
    }
    // The worst case the paper's improvement fixes: classic + 4 KiB.
    let m = machine_with(cfg, PageSize::Small4K, false);
    let bw = transfer_bandwidth(&m, Method::VeoReadWrite, Dir::Vh2Ve, size, cfg);
    rows.push(Row {
        label: "VEO write, classic manager + 4KiB pages".into(),
        x: size,
        value: bw,
        unit: "GiB/s",
        paper: None,
    });
    rows
}

/// Throughput of pipelined async offloads vs slot count: more slots let
/// communication and computation overlap (Fig. 5 discussion).
pub fn slots(cfg: &BenchConfig) -> Vec<Row> {
    use ham::f2f;
    let mut rows = Vec::new();
    for slot_count in [1usize, 2, 4, 8, 16] {
        let m = machine_with(cfg, PageSize::Huge2M, true);
        let o = Offload::new(DmaBackend::spawn(
            m,
            0,
            &[0],
            ProtocolConfig {
                recv_slots: slot_count,
                send_slots: slot_count,
                ..Default::default()
            },
            register_all,
        ));
        // Warm up, then pipeline a burst of kernels with real granularity.
        for _ in 0..cfg.warmup {
            o.sync(NodeId(1), f2f!(aurora_workloads::kernels::whoami))
                .expect("warmup");
        }
        let burst = 32usize;
        let t0 = o.backend().host_clock().now();
        let futures: Vec<_> = (0..burst)
            .map(|_| {
                o.async_(NodeId(1), f2f!(aurora_workloads::kernels::busy_work, 1000))
                    .expect("post")
            })
            .collect();
        for f in futures {
            f.get().expect("result");
        }
        let elapsed = o.backend().host_clock().now() - t0;
        o.shutdown();
        rows.push(Row {
            label: format!("{slot_count} slots/direction"),
            x: burst as u64,
            value: elapsed.as_us_f64() / burst as f64,
            unit: "us/offload",
            paper: None,
        });
    }
    rows
}

/// Contention on the shared privileged DMA engine (§I-B: "the system or
/// privileged DMA engine … is shared by all cores of one VE"): two VH
/// processes transferring to the *same* VE serialize through one engine;
/// to *different* VEs they proceed in parallel.
pub fn dma_contention(cfg: &BenchConfig) -> Vec<Row> {
    use aurora_sim_core::Clock;
    use veo_api::VeoProc;
    let size = (16u64 << 20).min(cfg.max_transfer);
    let mut rows = Vec::new();
    for (label, ves) in [
        ("same VE (shared engine)", [0u8, 0]),
        ("different VEs", [0u8, 1]),
    ] {
        let m = machine_with(cfg, PageSize::Huge2M, true);
        let procs: Vec<_> = ves
            .iter()
            .map(|&ve| VeoProc::create(std::sync::Arc::clone(&m), ve, 0, Clock::new()))
            .collect();
        // Both processes issue one transfer at virtual time zero; the
        // makespan is when the later one completes.
        let makespan = procs
            .iter()
            .map(|p| {
                let vh = m.vh(0);
                let src = vh.alloc(size).expect("VH buffer");
                let dst = p.alloc_mem(size).expect("VE buffer");
                let done = p.write_mem(src, dst, size).expect("transfer");
                vh.free(src).expect("free");
                done
            })
            .max()
            .expect("two transfers");
        rows.push(Row {
            label: format!("2 concurrent VEO writes, {label}"),
            x: size,
            value: makespan.as_ms_f64(),
            unit: "ms makespan",
            paper: None,
        });
    }
    rows
}

/// SHM small-message advantage as a function of the modeled credit
/// window (sensitivity analysis of the §V-B calibration).
pub fn shm_window(_cfg: &BenchConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    let udma_small_ns = calib::UDMA_SETUP.as_ns_f64();
    for window in [8u64, 16, 32, 64] {
        let model = aurora_sim_core::model::BurstModel {
            window_words: window,
            ..calib::shm_stream()
        };
        // Largest store that still beats a small user DMA.
        let mut crossover = 0u64;
        let mut words = 1u64;
        while words <= 4096 {
            if model.transfer_time(words).as_ns_f64() < udma_small_ns {
                crossover = words * 8;
            }
            words *= 2;
        }
        rows.push(Row {
            label: format!("credit window {window} words"),
            x: window,
            value: crossover as f64,
            unit: "B crossover",
            paper: if window == 32 { Some(256.0) } else { None },
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BenchConfig {
        BenchConfig {
            max_transfer: 16 << 20,
            ..BenchConfig::quick()
        }
    }

    #[test]
    fn huge_pages_beat_small_pages() {
        let rows = pages(&quick());
        assert!(rows[0].value > rows[1].value * 1.5, "{rows:?}");
    }

    #[test]
    fn improved_manager_beats_classic() {
        let rows = dma_manager(&quick());
        assert!(rows[0].value > rows[1].value, "{rows:?}");
        // classic + 4 KiB is the worst of the three.
        assert!(rows[2].value < rows[1].value, "{rows:?}");
    }

    #[test]
    fn more_slots_do_not_hurt_throughput() {
        let rows = slots(&quick());
        let one = rows[0].value;
        let eight = rows[3].value;
        assert!(eight <= one * 1.05, "1 slot {one}, 8 slots {eight}");
    }

    #[test]
    fn shared_engine_serializes_different_ves_dont() {
        let rows = dma_contention(&quick());
        let same = rows[0].value;
        let diff = rows[1].value;
        // Same engine: makespan ≈ 2x a single transfer; different VEs:
        // ≈ 1x. Ratio close to 2.
        let ratio = same / diff;
        assert!(ratio > 1.7 && ratio < 2.2, "contention ratio = {ratio}");
    }

    #[test]
    fn paper_window_gives_256b_crossover() {
        let rows = shm_window(&quick());
        let w32 = rows.iter().find(|r| r.x == 32).unwrap();
        assert_eq!(w32.value, 256.0);
        // Larger windows push the crossover out, smaller pull it in.
        let w8 = rows.iter().find(|r| r.x == 8).unwrap();
        let w64 = rows.iter().find(|r| r.x == 64).unwrap();
        assert!(w8.value <= w32.value);
        assert!(w64.value >= w32.value);
    }
}
