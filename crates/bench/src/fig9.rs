//! Fig. 9 — function offload cost, VH to local VE.
//!
//! Four series: native VEO call, HAM-Offload over the VEO backend,
//! HAM-Offload over the DMA backend, and the DMA backend offloading from
//! the second CPU socket (the "+up to 1 µs" note of §V-A).

use crate::harness::{
    benchmark_machine, mean_empty_offload_us, mean_native_veo_call_us, BenchConfig, Row,
};
use aurora_workloads::kernels::register_all;
use ham_backend_dma::DmaBackend;
use ham_backend_veo::{ProtocolConfig, VeoBackend};
use ham_offload::Offload;

/// Paper values (µs), derived in `calib`: VEO native 79.9, HAM/VEO 432,
/// HAM/DMA 6.1.
pub const PAPER_VEO_NATIVE_US: f64 = 79.9;
/// HAM over the VEO backend (5.4× the native call).
pub const PAPER_HAM_VEO_US: f64 = 432.0;
/// HAM over the DMA backend.
pub const PAPER_HAM_DMA_US: f64 = 6.1;

/// Run the Fig. 9 experiment.
pub fn run(cfg: &BenchConfig) -> Vec<Row> {
    let mut rows = Vec::new();

    // Native VEO call.
    let m = benchmark_machine(cfg);
    let veo_native = mean_native_veo_call_us(&m, cfg);
    rows.push(Row {
        label: "VEO (native call)".into(),
        x: 0,
        value: veo_native,
        unit: "us",
        paper: Some(PAPER_VEO_NATIVE_US),
    });

    // HAM-Offload over the VEO backend.
    let m = benchmark_machine(cfg);
    let o = Offload::new(VeoBackend::spawn(
        m,
        0,
        &[0],
        ProtocolConfig::default(),
        register_all,
    ));
    let ham_veo = mean_empty_offload_us(&o, cfg);
    o.shutdown();
    rows.push(Row {
        label: "HAM-Offload (VEO backend)".into(),
        x: 0,
        value: ham_veo,
        unit: "us",
        paper: Some(PAPER_HAM_VEO_US),
    });

    // HAM-Offload over the DMA backend, socket 0.
    let m = benchmark_machine(cfg);
    let o = Offload::new(DmaBackend::spawn(
        m,
        0,
        &[0],
        ProtocolConfig::default(),
        register_all,
    ));
    let ham_dma = mean_empty_offload_us(&o, cfg);
    o.shutdown();
    rows.push(Row {
        label: "HAM-Offload (DMA backend)".into(),
        x: 0,
        value: ham_dma,
        unit: "us",
        paper: Some(PAPER_HAM_DMA_US),
    });

    // DMA backend from the second socket (UPI hops).
    let m = benchmark_machine(cfg);
    let o = Offload::new(DmaBackend::spawn(
        m,
        1,
        &[0],
        ProtocolConfig::default(),
        register_all,
    ));
    let ham_dma_s2 = mean_empty_offload_us(&o, cfg);
    o.shutdown();
    rows.push(Row {
        label: "HAM-Offload (DMA backend, 2nd socket)".into(),
        x: 0,
        value: ham_dma_s2,
        unit: "us",
        paper: Some(PAPER_HAM_DMA_US + 1.0),
    });

    // Derived ratios.
    rows.push(Row {
        label: "ratio HAM/VEO : VEO native (paper 5.4x)".into(),
        x: 0,
        value: ham_veo / veo_native,
        unit: "x",
        paper: Some(5.4),
    });
    rows.push(Row {
        label: "ratio VEO native : HAM/DMA (paper 13.1x)".into(),
        x: 0,
        value: veo_native / ham_dma,
        unit: "x",
        paper: Some(13.1),
    });
    rows.push(Row {
        label: "ratio HAM/VEO : HAM/DMA (paper 70.8x)".into(),
        x: 0,
        value: ham_veo / ham_dma,
        unit: "x",
        paper: Some(70.8),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_reproduces_within_tolerance() {
        let rows = run(&BenchConfig::quick());
        for r in &rows {
            let paper = r.paper.expect("all fig9 rows have paper values");
            let rel = (r.value - paper).abs() / paper;
            // Shape tolerance: 10 % on every bar and ratio.
            assert!(
                rel < 0.10,
                "{}: measured {} vs paper {}",
                r.label,
                r.value,
                paper
            );
        }
    }
}
