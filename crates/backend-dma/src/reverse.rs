//! Reverse active messages: VHcall over the DMA protocol (extension).
//!
//! The platform's native VHcall mechanism (§I-B) lets VE code call VH
//! code "in a synchronous fashion, with syscall semantics" — i.e. at the
//! ~85 µs cost of the three-component software path. This module applies
//! the paper's own medicine to the reverse direction: a VE-initiated
//! request/response slot in the VH shm segment, driven with user DMA and
//! LHM/SHM exactly like the forward protocol of Fig. 8 — making a
//! reverse call cost microseconds instead.
//!
//! Reverse slot layout (appended to the segment after the send array):
//!
//! ```text
//! +0   req_flag  (u64)  0 = free; else landing timestamp (ps)
//! +8   resp_flag (u64)  0 = empty; else landing timestamp (ps)
//! +16  request message:  32-byte header ‖ payload
//! +16+msg_stride  response message: 32-byte header ‖ payload
//! ```
//!
//! One slot suffices: the VE target loop executes kernels serially, so at
//! most one reverse call is in flight per target.

use aurora_mem::{Region, VeAddr, Vehva};
use aurora_proto::ProtocolConfig;
use aurora_sim_core::{calib, Clock, SimTime};
use ham::message::ReverseTransport;
use ham::registry::HandlerKey;
use ham::wire::{MsgHeader, MsgKind, HEADER_BYTES};
use ham::{ExecContext, HamError, Registry};
use ham_offload::target_loop::{frame_result, unframe_result_ref};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Message-area stride inside the reverse slot.
fn msg_stride(cfg: &ProtocolConfig) -> u64 {
    HEADER_BYTES as u64 + cfg.msg_bytes as u64
}

/// Total bytes of the reverse slot.
pub fn reverse_slot_bytes(cfg: &ProtocolConfig) -> u64 {
    16 + 2 * msg_stride(cfg)
}

/// Host-side service: polls the request flag, executes handlers with the
/// *host* registry, posts responses. Runs on its own host thread with
/// its own logical clock (another thread of the VH process).
pub struct ReverseService {
    region: Arc<Region>,
    /// Byte offset of the reverse slot in the segment.
    base: u64,
    cfg: ProtocolConfig,
    registry: Arc<Registry>,
    clock: Clock,
    stop: Arc<AtomicBool>,
    served: std::sync::atomic::AtomicU64,
}

impl ReverseService {
    /// Create a service over the reverse slot at `base`.
    pub fn new(
        region: Arc<Region>,
        base: u64,
        cfg: ProtocolConfig,
        registry: Arc<Registry>,
        stop: Arc<AtomicBool>,
    ) -> Arc<Self> {
        Arc::new(Self {
            region,
            base,
            cfg,
            registry,
            clock: Clock::new(),
            stop,
            served: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Number of reverse calls served so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// The service loop; returns when the stop flag is raised.
    pub fn run(&self) {
        let req_flag = self.base;
        let resp_flag = self.base + 8;
        let req_msg = self.base + 16;
        let resp_msg = req_msg + msg_stride(&self.cfg);
        // Host-side scratch memory for reverse handlers.
        let scratch = ham::message::VecMemory::new(1 << 16);
        loop {
            let ts = match self.region.load_u64(req_flag) {
                Ok(0) => {
                    if self.stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::yield_now();
                    continue;
                }
                Ok(ts) => SimTime::from_ps(ts),
                Err(_) => return,
            };
            // Arrival-driven: join the request's landing time, pay the
            // local poll read.
            self.clock.join(ts);
            self.clock.advance(calib::HAM_LOCAL_MEM_TOUCH);

            let mut hdr = [0u8; HEADER_BYTES];
            if self.region.read(req_msg, &mut hdr).is_err() {
                return;
            }
            let header = match MsgHeader::decode(&hdr) {
                Ok(h) => h,
                Err(_) => return,
            };
            let mut payload = vec![0u8; header.payload_len as usize];
            if self
                .region
                .read(req_msg + HEADER_BYTES as u64, &mut payload)
                .is_err()
            {
                return;
            }
            // Execute on the host, with host-side framework cost.
            self.clock.advance(calib::HAM_TARGET_OVERHEAD);
            let mut ctx = ExecContext::new(0, &scratch);
            let result = self
                .registry
                .execute(header.handler_key, &payload, &mut ctx);
            let mut frame = frame_result(result);
            if frame.len() > self.cfg.msg_bytes {
                frame = frame_result(Err(ham::HamError::Wire(format!(
                    "reverse result of {} bytes exceeds the protocol's {}-byte slots",
                    frame.len(),
                    self.cfg.msg_bytes
                ))));
            }

            // Response message + flag (all host-local writes).
            let resp_header = MsgHeader {
                handler_key: HandlerKey(0),
                payload_len: frame.len() as u32,
                kind: MsgKind::Result,
                reply_slot: 0,
                corr: header.corr,
                seq: header.seq,
            };
            let mut bytes = resp_header.encode().to_vec();
            bytes.extend_from_slice(&frame);
            if self.region.write(resp_msg, &bytes).is_err() {
                return;
            }
            // Free the request slot, then publish the response.
            let landing = self.clock.advance(calib::HAM_LOCAL_MEM_TOUCH);
            let _ = self.region.store_u64(req_flag, 0);
            let _ = self.region.store_u64(resp_flag, landing.as_ps());
            self.served.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// VE-side transport: what `ctx.vhcall(...)` uses inside kernels.
pub struct VeReverseTransport {
    /// The VE process (for clock and staging translation).
    pub proc: Arc<veos_sim::VeProcess>,
    /// This core's user DMA engine.
    pub udma: aurora_ve::UserDma,
    /// This core's LHM/SHM unit.
    pub lhm_shm: aurora_ve::LhmShmUnit,
    /// VEHVA of the reverse slot.
    pub vehva: Vehva,
    /// Protocol geometry.
    pub cfg: ProtocolConfig,
    /// VE-local staging buffer (VEMVA), distinct from the forward one.
    pub staging: VeAddr,
    /// Serialises calls (defensive; the target loop is serial anyway).
    pub seq: Mutex<u64>,
}

impl ReverseTransport for VeReverseTransport {
    fn call_raw(&self, key: HandlerKey, payload: &[u8]) -> Result<Vec<u8>, HamError> {
        if payload.len() > self.cfg.msg_bytes {
            return Err(HamError::Wire(format!(
                "reverse message of {} bytes exceeds {}-byte slots",
                payload.len(),
                self.cfg.msg_bytes
            )));
        }
        let mut seq_guard = self.seq.lock();
        let seq = *seq_guard;
        *seq_guard += 1;

        let clock = self.proc.clock().clone();
        let atb = self.proc.ve().dmaatb();
        let err = |e: aurora_mem::MemError| HamError::Mem(e.to_string());

        let header = MsgHeader {
            handler_key: key,
            payload_len: payload.len() as u32,
            kind: MsgKind::Offload,
            reply_slot: 0,
            corr: aurora_sim_core::trace::current_offload(),
            seq,
        };
        let mut bytes = header.encode().to_vec();
        bytes.extend_from_slice(payload);

        // Stage locally, DMA the request into the host slot, flag it.
        let hbm = Arc::clone(self.proc.hbm());
        let stage = self
            .proc
            .translate(self.staging, bytes.len() as u64)
            .map_err(err)?;
        hbm.write(stage, &bytes).map_err(err)?;
        let req_msg = self.vehva.offset(16);
        self.udma
            .write_host(&clock, atb, &hbm, stage, req_msg, bytes.len() as u64)
            .map_err(err)?;
        self.lhm_shm
            .shm_timestamp(&clock, atb, self.vehva)
            .map_err(err)?;

        // Poll the response flag (arrival-driven), then fetch.
        let resp_flag = self.vehva.offset(8);
        let ts = loop {
            match self.lhm_shm.peek_word(atb, resp_flag) {
                Ok(0) => std::thread::yield_now(),
                Ok(ts) => break SimTime::from_ps(ts),
                Err(e) => return Err(err(e)),
            }
        };
        clock.join(ts);
        self.lhm_shm.lhm(&clock, atb, resp_flag).map_err(err)?;

        let resp_msg = self.vehva.offset(16 + msg_stride(&self.cfg));
        let first =
            (HEADER_BYTES as u64 + 224).min(HEADER_BYTES as u64 + self.cfg.msg_bytes as u64);
        let stage = self
            .proc
            .translate(self.staging, msg_stride(&self.cfg))
            .map_err(err)?;
        self.udma
            .read_host(&clock, atb, resp_msg, &hbm, stage, first)
            .map_err(err)?;
        let mut hdr = [0u8; HEADER_BYTES];
        hbm.read(stage, &mut hdr).map_err(err)?;
        let resp_header = MsgHeader::decode(&hdr)?;
        if resp_header.seq != seq {
            return Err(HamError::Wire(format!(
                "reverse response seq {} != {}",
                resp_header.seq, seq
            )));
        }
        let total = HEADER_BYTES as u64 + resp_header.payload_len as u64;
        if total > first {
            self.udma
                .read_host(
                    &clock,
                    atb,
                    resp_msg.offset(first),
                    &hbm,
                    stage + first,
                    total - first,
                )
                .map_err(err)?;
        }
        let mut frame = vec![0u8; resp_header.payload_len as usize];
        hbm.read(stage + HEADER_BYTES as u64, &mut frame)
            .map_err(err)?;
        // Clear the response flag for the next call.
        self.lhm_shm.shm(&clock, atb, resp_flag, 0).map_err(err)?;

        // Borrow to classify, then reuse the fetched buffer as the
        // result (shift out the frame tag) instead of copying the body.
        match unframe_result_ref(&frame) {
            Ok(_) => {
                frame.drain(..1);
                Ok(frame)
            }
            Err(e) => Err(HamError::Wire(e)),
        }
    }
}
