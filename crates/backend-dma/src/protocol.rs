//! The VE-initiated, DMA-based messaging protocol (paper §IV-B, Fig. 8).
//!
//! Slot layout inside the VH SysV shm segment (all offsets host-local):
//!
//! ```text
//! recv slot i (VH → VE offloads), at i * stride:
//!   +0   flag (u64)  0 = free; else = virtual landing time (ps)
//!   +8   (reserved; the flag doubles as the timestamp)
//!   +16  message: 32-byte header ‖ payload
//! send slots follow the recv array; same layout.
//! ```
//!
//! VH side: posting a message is two local writes (message, then flag
//! with Release ordering); receiving a result is a local flag poll plus
//! local reads. VE side: flags are polled with zero-cost peeks and paid
//! for with one LHM word on success; messages are fetched/deposited with
//! user DMA; flag resets and result notification use SHM stores whose
//! value carries the landing timestamp.
//!
//! The first DMA fetch covers the header plus [`SMALL_FETCH`] payload
//! bytes (one 256-byte TLP); larger payloads cost a second DMA — small
//! offload messages therefore see exactly one LHM + one DMA + SHM
//! accounting, which is where Fig. 9's 6.1 µs comes from.
//!
//! Host-side protocol state (slot rings, pending table, completion
//! queue) lives in [`ham_offload::chan`]; this module implements only
//! the DMA transport verbs. Segment lifetime is RAII-managed: each
//! target holds an [`aurora_mem::ShmGuard`] (IPC_RMID on drop) plus a
//! key lease that returns the SysV key to a free pool for reuse.

use aurora_mem::{ShmGuard, VeAddr, Vehva};
use aurora_proto::{
    AuroraCore, ProtocolConfig, VeComputeMeter, VeTargetMemory, SLOT_META, VE_SEED_BASE,
};
use aurora_sim_core::{calib, Clock, FaultPlan, SimTime};
use ham::registry::HandlerKey;
use ham::wire::{MsgHeader, MsgKind, HEADER_BYTES};
use ham::Registry;
use ham_offload::backend::{CommBackend, RawBuffer};
use ham_offload::chan::pool::{FramePool, PooledFrame};
use ham_offload::chan::{engine, ChannelCore, PendingEntry, RecoveryPolicy, Reservation};
use ham_offload::device::{DeviceConfig, DeviceRuntime};
use ham_offload::target_loop::{Polled, TargetChannel};
use ham_offload::types::{NodeDescriptor, NodeId};
use ham_offload::OffloadError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;
use veo_api::{ArgsStack, KernelLibrary, VeContext, VeoContext};
use veos_sim::AuroraMachine;

/// Payload bytes fetched together with the header in the first DMA (so
/// header + small payload fit one 256-byte PCIe TLP).
pub const SMALL_FETCH: usize = 256 - HEADER_BYTES;

/// SysV shm key pool: keys are unique while leased and reclaimed when a
/// backend is torn down, so long benchmark sweeps cannot exhaust the key
/// space.
struct ShmKeyPool {
    next: AtomicI32,
    free: Mutex<Vec<i32>>,
}

impl ShmKeyPool {
    const fn new() -> Self {
        Self {
            next: AtomicI32::new(0x4841_4D00), // "HAM."
            free: Mutex::new(Vec::new()),
        }
    }

    fn lease(&'static self) -> ShmKeyLease {
        let key = self
            .free
            .lock()
            .pop()
            .unwrap_or_else(|| self.next.fetch_add(1, Ordering::Relaxed));
        ShmKeyLease { pool: self, key }
    }
}

static SHM_KEY_POOL: ShmKeyPool = ShmKeyPool::new();

/// A leased SysV key; returns to the pool on drop.
struct ShmKeyLease {
    pool: &'static ShmKeyPool,
    key: i32,
}

impl Drop for ShmKeyLease {
    fn drop(&mut self) {
        self.pool.free.lock().push(self.key);
    }
}

struct TargetChan {
    /// RAII segment handle: IPC_RMID when the channel goes away, even on
    /// unwind; the VE keeps its attachment until `ham_main` exits.
    seg: ShmGuard,
    /// Key lease for the segment (field order: dropped after `seg`).
    _key: ShmKeyLease,
    /// Host-local byte offset of the send-slot array.
    send_base: u64,
    cfg: ProtocolConfig,
    ctx: Arc<VeoContext>,
    chan: ChannelCore,
    /// Reverse-offload service plumbing (when `cfg.reverse`).
    reverse_stop: Option<Arc<std::sync::atomic::AtomicBool>>,
    reverse_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    reverse_service: Option<Arc<crate::reverse::ReverseService>>,
}

impl TargetChan {
    fn recv_flag(&self, i: usize) -> u64 {
        i as u64 * self.cfg.slot_stride()
    }
    fn recv_msg(&self, i: usize) -> u64 {
        self.recv_flag(i) + SLOT_META
    }
    fn send_flag(&self, i: usize) -> u64 {
        self.send_base + i as u64 * self.cfg.slot_stride()
    }
    fn send_msg(&self, i: usize) -> u64 {
        self.send_flag(i) + SLOT_META
    }
}

/// The DMA communication backend (Fig. 8).
pub struct DmaBackend {
    core: AuroraCore,
    cfg: ProtocolConfig,
    channels: Vec<TargetChan>,
    plan: Arc<FaultPlan>,
}

impl DmaBackend {
    /// Set up the backend: VE processes via VEO, one VH shm segment per
    /// target (Fig. 7), DMAATB registration through the `ham_dma_init`
    /// C-API call, then start `ham_main()` on each VE.
    pub fn spawn(
        machine: Arc<AuroraMachine>,
        host_socket: u8,
        ves: &[u8],
        cfg: ProtocolConfig,
        registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_with_faults(
            machine,
            host_socket,
            ves,
            cfg,
            FaultPlan::none(),
            None,
            registrar,
        )
    }

    /// [`DmaBackend::spawn`] under a deterministic [`FaultPlan`]: each
    /// VE's PCIe link and user-DMA engines are armed with the plan
    /// (actor = node id), and an optional [`RecoveryPolicy`] arms
    /// timeout/retry on every channel. An all-zero plan and `None`
    /// policy behave bit-identically to [`DmaBackend::spawn`].
    pub fn spawn_with_faults(
        machine: Arc<AuroraMachine>,
        host_socket: u8,
        ves: &[u8],
        cfg: ProtocolConfig,
        plan: Arc<FaultPlan>,
        policy: Option<RecoveryPolicy>,
        registrar: impl Fn(&mut ham::RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        cfg.validate();
        let core = AuroraCore::new(machine, host_socket, ves, registrar);
        let mut channels = Vec::with_capacity(ves.len());
        for node in 1..=core.num_targets() {
            let t = core.target(NodeId(node)).expect("just created");
            let proc = &t.proc;
            core.machine()
                .topology()
                .link(proc.ve_id())
                .arm_faults(Arc::clone(&plan), node);
            let stride = cfg.slot_stride();
            let recv_bytes = cfg.array_bytes(cfg.recv_slots);
            let send_bytes = cfg.array_bytes(cfg.send_slots);
            let reverse_bytes = if cfg.reverse {
                crate::reverse::reverse_slot_bytes(&cfg)
            } else {
                0
            };
            let key_lease = SHM_KEY_POOL.lease();
            let key = key_lease.key;
            let seg = core
                .machine()
                .shm()
                .create_guarded(key, recv_bytes + send_bytes + reverse_bytes)
                .expect("shm segment");

            // VE-side staging buffers for DMA fetches/deposits (forward
            // and, when enabled, reverse).
            let staging = proc.alloc_mem(stride).expect("VE staging allocation");
            let reverse_staging = cfg
                .reverse
                .then(|| proc.alloc_mem(stride).expect("reverse staging"));

            let registrar = Arc::clone(core.registrar());
            let node_id = node;
            let cfg2 = cfg;
            let ve_plan = Arc::clone(&plan);
            let lane_stats = Arc::clone(core.metrics().lane_stats());
            type VeInit = (Vehva, Arc<aurora_mem::ShmSegment>);
            let init_state: Arc<Mutex<Option<VeInit>>> = Arc::new(Mutex::new(None));
            let init_state2 = Arc::clone(&init_state);
            let lib = KernelLibrary::new()
                .with("ham_dma_init", move |ve: &VeContext, args| {
                    // Fig. 7 setup, VE side: attach the segment by key and
                    // register it in the DMAATB.
                    let key = args.get_u64(0) as i32;
                    let seg = ve.shm.attach(key).expect("attach shm");
                    let vehva = ve
                        .proc
                        .ve()
                        .dmaatb()
                        .register(
                            aurora_mem::DmaTarget {
                                region: Arc::clone(seg.region()),
                                offset: 0,
                            },
                            seg.len(),
                        )
                        .expect("DMAATB registration");
                    let raw = vehva.get();
                    *init_state2.lock() = Some((vehva, seg));
                    raw
                })
                .with("ham_main", move |ve: &VeContext, _args| {
                    let (vehva, seg) = init_state
                        .lock()
                        .take()
                        .expect("ham_dma_init must run before ham_main");
                    let registry =
                        AuroraCore::build_registry(&registrar, VE_SEED_BASE + node_id as u64);
                    let mem = VeTargetMemory::new(Arc::clone(&ve.proc));
                    let chan = VeSideChannel {
                        ve_proc: Arc::clone(&ve.proc),
                        udma: ve.udma.clone(),
                        lhm_shm: ve.lhm_shm.clone(),
                        vehva,
                        send_base: cfg2.array_bytes(cfg2.recv_slots),
                        cfg: cfg2,
                        staging,
                        next: std::cell::Cell::new(0),
                        node: node_id,
                        plan: Arc::clone(&ve_plan),
                    };
                    let meter = VeComputeMeter::new(ve.proc.clock().clone());
                    let transport = reverse_staging.map(|rstaging| {
                        let reverse_base =
                            cfg2.array_bytes(cfg2.recv_slots) + cfg2.array_bytes(cfg2.send_slots);
                        crate::reverse::VeReverseTransport {
                            proc: Arc::clone(&ve.proc),
                            udma: ve.udma.clone(),
                            lhm_shm: ve.lhm_shm.clone(),
                            vehva: vehva.offset(reverse_base),
                            cfg: cfg2,
                            staging: rstaging,
                            seq: parking_lot::Mutex::new(0),
                        }
                    });
                    let runtime = DeviceRuntime::new(
                        DeviceConfig::new()
                            .with_lanes(cfg2.lanes)
                            .with_clock(ve.proc.clock().clone())
                            .with_stats(Arc::clone(&lane_stats)),
                    );
                    let ret = runtime.run(
                        &ham_offload::target_loop::TargetEnv {
                            node: node_id,
                            registry: &registry,
                            mem: &mem,
                            reverse: transport
                                .as_ref()
                                .map(|t| t as &dyn ham::message::ReverseTransport),
                            meter: Some(&meter),
                            // DMA slot rotation delivers seqs in order,
                            // so recovery re-sends dedup by watermark.
                            dedup: true,
                        },
                        &chan,
                    );
                    // shmdt: drop the VE attachment so a doomed segment
                    // (host guard dropped / explicit IPC_RMID) is
                    // actually destroyed.
                    ve.shm.detach(&seg);
                    ret
                });
            proc.load_library(lib);
            let ctx = proc.open_context();
            let init = proc.get_sym("ham_dma_init").expect("C-API symbol");
            let req = ctx
                .call_async(&init, ArgsStack::new().push_u64(key as u64))
                .expect("init call");
            ctx.wait_result(req).expect("init result");
            let main = proc.get_sym("ham_main").expect("ham_main symbol");
            ctx.call_async(&main, ArgsStack::new())
                .expect("start ham_main");

            // Host-side reverse service thread (when enabled).
            let (reverse_stop, reverse_thread, reverse_service) = if cfg.reverse {
                let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
                let service = crate::reverse::ReverseService::new(
                    Arc::clone(seg.region()),
                    recv_bytes + send_bytes,
                    cfg,
                    Arc::clone(core.host_registry()),
                    Arc::clone(&stop),
                );
                let service2 = Arc::clone(&service);
                let handle = std::thread::Builder::new()
                    .name(format!("ham-reverse-svc-{node}"))
                    .spawn(move || service2.run())
                    .expect("spawn reverse service");
                (Some(stop), Some(handle), Some(service))
            } else {
                (None, None, None)
            };

            channels.push(TargetChan {
                seg,
                _key: key_lease,
                send_base: recv_bytes,
                cfg,
                ctx,
                chan: {
                    let mut c = ChannelCore::bounded(cfg.recv_slots, cfg.send_slots, cfg.msg_bytes)
                        .with_batching(cfg.batch);
                    if cfg.credits > 0 {
                        c = c.with_credit_limit(cfg.credits);
                    }
                    match policy {
                        Some(p) => c.with_recovery(p),
                        None => c,
                    }
                },
                reverse_stop,
                reverse_thread: Mutex::new(reverse_thread),
                reverse_service,
            });
        }
        Arc::new(Self {
            core,
            cfg,
            channels,
            plan,
        })
    }

    /// The shared host-side core.
    pub fn core(&self) -> &AuroraCore {
        &self.core
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The SysV key of `target`'s shm segment.
    pub fn shm_key(&self, target: NodeId) -> Result<i32, OffloadError> {
        Ok(self.chan(target)?.seg.key())
    }

    /// Reverse calls served on behalf of `target` so far (0 when the
    /// reverse extension is disabled).
    pub fn reverse_served(&self, target: NodeId) -> u64 {
        self.chan(target)
            .ok()
            .and_then(|c| c.reverse_service.as_ref())
            .map(|s| s.served())
            .unwrap_or(0)
    }

    fn chan(&self, node: NodeId) -> Result<&TargetChan, OffloadError> {
        self.core.target(node)?;
        Ok(&self.channels[node.0 as usize - 1])
    }
}

impl CommBackend for DmaBackend {
    fn num_targets(&self) -> u16 {
        self.core.num_targets()
    }

    fn host_registry(&self) -> &Arc<Registry> {
        self.core.host_registry()
    }

    fn descriptor(&self, node: NodeId) -> Result<NodeDescriptor, OffloadError> {
        self.core.descriptor(node)
    }

    fn channel(&self, target: NodeId) -> Result<&ChannelCore, OffloadError> {
        Ok(&self.chan(target)?.chan)
    }

    /// Two VH-local writes (Fig. 8): the message, then the flag carrying
    /// its own landing timestamp.
    fn send_frame(
        &self,
        target: NodeId,
        res: &Reservation,
        header: &MsgHeader,
        frame: &[u8],
    ) -> Result<(), OffloadError> {
        let chan = self.chan(target)?;
        if !chan.ctx.is_alive() {
            return Err(OffloadError::TargetLost(target));
        }
        // Injected TLP drop: the frame vanishes in transit — the slot
        // stays reserved, the flag never lands, and only a recovery
        // re-send (same seq, next attempt) can complete the offload.
        // Control frames are exempt: they are the teardown path, the
        // one frame kind the recovery policy cannot re-send.
        if matches!(header.kind, MsgKind::Offload | MsgKind::Batch)
            && self
                .plan
                .drop_frame(target.0, res.seq, res.attempt, self.core.host_clock().now())
        {
            return Ok(());
        }
        let clock = self.core.host_clock();
        let region = chan.seg.region();
        region
            .write(chan.recv_msg(res.recv_slot), frame)
            .map_err(|e| OffloadError::Mem(e.to_string()))?;
        let t0 = clock.now();
        let landing = clock.advance(calib::HAM_LOCAL_MEM_TOUCH);
        aurora_sim_core::trace::record("vh.local_post", frame.len() as u64, t0, landing);
        region
            .store_u64(chan.recv_flag(res.recv_slot), landing.as_ps())
            .map_err(|e| OffloadError::Mem(e.to_string()))
    }

    /// Free local peek of the result flag; a non-zero value is the
    /// result's virtual landing time (the completion token).
    fn poll_flags(
        &self,
        target: NodeId,
        _seq: u64,
        entry: &PendingEntry,
    ) -> Result<Option<u64>, OffloadError> {
        let chan = self.chan(target)?;
        let v = chan
            .seg
            .region()
            .load_u64(chan.send_flag(entry.send_slot))
            .map_err(|e| OffloadError::Mem(e.to_string()))?;
        if v != 0 {
            Ok(Some(v))
        } else if chan.ctx.is_alive() {
            Ok(None)
        } else {
            Err(OffloadError::TargetLost(target))
        }
    }

    /// Consume a ready result from local memory: join the flag's landing
    /// time, pay the successful poll + message read, reset the flag.
    fn fetch_frame(
        &self,
        target: NodeId,
        _seq: u64,
        entry: &PendingEntry,
        token: u64,
    ) -> Result<Vec<u8>, OffloadError> {
        let chan = self.chan(target)?;
        let clock = self.core.host_clock();
        clock.join(SimTime::from_ps(token));
        let t0 = clock.now();
        let t1 = clock.advance(calib::HAM_LOCAL_MEM_TOUCH * 2);
        aurora_sim_core::trace::record("vh.local_consume", 0, t0, t1);

        let region = chan.seg.region();
        let s = entry.send_slot;
        let mut hdr = [0u8; HEADER_BYTES];
        region
            .read(chan.send_msg(s), &mut hdr)
            .map_err(|e| OffloadError::Mem(e.to_string()))?;
        let header = MsgHeader::decode(&hdr).map_err(|e| OffloadError::Backend(e.to_string()))?;
        let mut frame = vec![0u8; header.payload_len as usize];
        region
            .read(chan.send_msg(s) + HEADER_BYTES as u64, &mut frame)
            .map_err(|e| OffloadError::Mem(e.to_string()))?;
        // Reset the (local) flag; the engine frees the slots.
        region
            .store_u64(chan.send_flag(s), 0)
            .map_err(|e| OffloadError::Mem(e.to_string()))?;
        Ok(frame)
    }

    fn allocate(&self, node: NodeId, bytes: u64) -> Result<u64, OffloadError> {
        self.core.allocate(node, bytes)
    }

    fn free(&self, node: NodeId, addr: u64) -> Result<(), OffloadError> {
        self.core.free(node, addr)
    }

    fn put_bytes(&self, dst: RawBuffer, data: &[u8]) -> Result<(), OffloadError> {
        // §IV-B: bulk data exchange still goes through the VEO API.
        self.core.put_bytes(dst, data)
    }

    fn get_bytes(&self, src: RawBuffer, out: &mut [u8]) -> Result<(), OffloadError> {
        self.core.get_bytes(src, out)
    }

    fn host_clock(&self) -> &Clock {
        self.core.host_clock()
    }

    fn metrics(&self) -> &aurora_sim_core::BackendMetrics {
        self.core.metrics()
    }

    /// Kill the VE process abruptly: `ham_main`'s polling loop observes
    /// the plan's kill bit and panics, which clears the context's
    /// liveness flag; the next host flag sweep sees the death and
    /// evicts the channel with [`OffloadError::TargetLost`].
    fn kill_target(&self, target: NodeId) -> Result<(), OffloadError> {
        self.chan(target)?;
        self.plan.kill(target.0, self.core.host_clock().now());
        Ok(())
    }

    fn shutdown(&self) {
        for node in 1..=self.num_targets() {
            let target = NodeId(node);
            let chan = match self.chan(target) {
                Ok(c) => c,
                Err(_) => continue,
            };
            if chan.chan.begin_shutdown() {
                continue;
            }
            if engine::post_control(self, target).is_err() && chan.ctx.is_alive() {
                // The control frame cannot reach the target (evicted
                // channel: its slot cursor is wedged on a lost frame's
                // hole). Reap the stranded VE process — the moral
                // equivalent of SIGKILLing an unreachable peer — or
                // the context join below would wait forever.
                self.plan.kill(node, self.core.host_clock().now());
            }
            chan.ctx.close();
            // Stop the reverse service after ham_main exited (no more
            // reverse calls can be in flight).
            if let Some(stop) = &chan.reverse_stop {
                stop.store(true, std::sync::atomic::Ordering::Release);
            }
            if let Some(h) = chan.reverse_thread.lock().take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for DmaBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The VE side of the protocol (Fig. 8): all transfers VE-initiated.
struct VeSideChannel {
    ve_proc: Arc<veos_sim::VeProcess>,
    udma: aurora_ve::UserDma,
    lhm_shm: aurora_ve::LhmShmUnit,
    /// VEHVA window base of the registered shm segment.
    vehva: Vehva,
    /// Offset of the send-slot array within the segment.
    send_base: u64,
    cfg: ProtocolConfig,
    /// VE-local staging buffer (VEMVA) for DMA.
    staging: VeAddr,
    next: std::cell::Cell<u64>,
    node: u16,
    plan: Arc<FaultPlan>,
}

impl VeSideChannel {
    fn atb(&self) -> &aurora_mem::Dmaatb {
        self.ve_proc.ve().dmaatb()
    }

    fn recv_flag(&self, i: usize) -> Vehva {
        self.vehva.offset(i as u64 * self.cfg.slot_stride())
    }
    fn recv_msg(&self, i: usize) -> Vehva {
        self.recv_flag(i).offset(SLOT_META)
    }
    fn send_flag(&self, i: usize) -> Vehva {
        self.vehva
            .offset(self.send_base + i as u64 * self.cfg.slot_stride())
    }
    fn send_msg(&self, i: usize) -> Vehva {
        self.send_flag(i).offset(SLOT_META)
    }

    fn staging_off(&self, len: u64) -> u64 {
        self.ve_proc
            .translate(self.staging, len)
            .expect("staging is mapped")
    }
}

impl VeSideChannel {
    fn check_killed(&self) {
        if self.plan.killed(self.node) {
            // Injected VE process death: die like a crash, not a
            // shutdown — the panic clears the VEO context's
            // liveness flag and the host evicts the channel.
            panic!("fault injection: VE process {} killed", self.node);
        }
    }

    /// Consume the published message in recv slot `i` whose flag carried
    /// landing time `ts`: pay the LHM word, DMA-fetch the message into a
    /// pooled body, release the slot. `None` means the process died
    /// mid-transfer.
    fn consume(
        &self,
        i: usize,
        ts: SimTime,
        pool: &Arc<FramePool>,
    ) -> Option<(MsgHeader, PooledFrame)> {
        let flag = self.recv_flag(i);
        let clock = self.ve_proc.clock().clone();
        // The successful poll: one charged LHM word after the flag's
        // landing time.
        clock.join(ts);
        let _ = self.lhm_shm.lhm(&clock, self.atb(), flag).ok()?;

        // First DMA: header + up to SMALL_FETCH payload bytes in one TLP.
        let first = (HEADER_BYTES + SMALL_FETCH).min(HEADER_BYTES + self.cfg.msg_bytes) as u64;
        let hbm = Arc::clone(self.ve_proc.hbm());
        let stage = self.staging_off(self.cfg.slot_stride());
        self.udma
            .read_host(&clock, self.atb(), self.recv_msg(i), &hbm, stage, first)
            .ok()?;
        let mut hdr = [0u8; HEADER_BYTES];
        hbm.read(stage, &mut hdr).ok()?;
        let header = MsgHeader::decode(&hdr).ok()?;
        if header.payload_len as usize > self.cfg.msg_bytes {
            return None;
        }
        let mut payload = pool.checkout();
        payload.resize(header.payload_len as usize, 0);
        let small = payload.len().min(SMALL_FETCH);
        hbm.read(stage + HEADER_BYTES as u64, &mut payload[..small])
            .ok()?;
        if payload.len() > SMALL_FETCH {
            // Second DMA for the tail of a large message.
            let rest = (payload.len() - SMALL_FETCH) as u64;
            self.udma
                .read_host(
                    &clock,
                    self.atb(),
                    self.recv_msg(i).offset(first),
                    &hbm,
                    stage + first,
                    rest,
                )
                .ok()?;
            hbm.read(stage + first, &mut payload[SMALL_FETCH..]).ok()?;
        }
        // Release the slot: SHM store of 0 (host reuses after result).
        self.lhm_shm.shm(&clock, self.atb(), flag, 0).ok()?;
        self.next.set(self.next.get() + 1);
        Some((header, payload))
    }
}

impl TargetChannel for VeSideChannel {
    fn recv(&self, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)> {
        let i = (self.next.get() % self.cfg.recv_slots as u64) as usize;
        let flag = self.recv_flag(i);
        // Zero-cost peeks until the host publishes (arrival-driven
        // polling; see DESIGN.md).
        let ts = loop {
            self.check_killed();
            match self.lhm_shm.peek_word(self.atb(), flag) {
                Ok(0) => std::thread::yield_now(),
                Ok(ts) => break SimTime::from_ps(ts),
                Err(_) => return None,
            }
        };
        self.consume(i, ts, pool)
    }

    fn try_recv(&self, pool: &Arc<FramePool>) -> Polled {
        self.check_killed();
        let i = (self.next.get() % self.cfg.recv_slots as u64) as usize;
        // One free peek: slot rotation means an unset flag here implies
        // nothing further has been published yet. A flag whose landing
        // time is still ahead of the device clock has not arrived *in
        // virtual time* either — consuming it would stall the clock on
        // the join instead of overlapping the arrival with the work
        // already drained, so it waits for a later window (or for the
        // blocking recv, where the device is genuinely idle).
        match self.lhm_shm.peek_word(self.atb(), self.recv_flag(i)) {
            Ok(0) => Polled::Empty,
            Ok(ts) if ts > self.ve_proc.clock().now().as_ps() => Polled::Empty,
            Ok(ts) => match self.consume(i, SimTime::from_ps(ts), pool) {
                Some((h, p)) => Polled::Msg(h, p),
                None => Polled::Closed,
            },
            Err(_) => Polled::Closed,
        }
    }

    fn send_result(&self, reply_slot: u16, seq: u64, payload: Vec<u8>) {
        let s = reply_slot as usize;
        debug_assert!(s < self.cfg.send_slots);
        // A result that cannot fit the send slot becomes an error frame
        // (results carry framing bytes on top of the kernel's output, so
        // this can happen even when the request fit).
        let payload = if payload.len() > self.cfg.msg_bytes {
            ham_offload::target_loop::frame_result(Err(ham::HamError::Wire(format!(
                "result of {} bytes exceeds the protocol's {}-byte slots; \
                     return bulk data via target buffers + get",
                payload.len(),
                self.cfg.msg_bytes
            ))))
        } else {
            payload
        };
        let clock = self.ve_proc.clock().clone();
        let t0 = clock.now();
        let t1 = clock.advance(calib::HAM_TARGET_OVERHEAD);
        aurora_sim_core::trace::record("ham.target_overhead", 0, t0, t1);
        let header = MsgHeader {
            handler_key: HandlerKey(0),
            payload_len: payload.len() as u32,
            kind: MsgKind::Result,
            reply_slot,
            corr: 0,
            seq,
        };
        let mut bytes = header.encode().to_vec();
        bytes.extend_from_slice(&payload);
        // Stage locally, deposit with user DMA, notify with an SHM
        // timestamp flag.
        let hbm = Arc::clone(self.ve_proc.hbm());
        let stage = self.staging_off(bytes.len() as u64);
        hbm.write(stage, &bytes).expect("stage result");
        self.udma
            .write_host(
                &clock,
                self.atb(),
                &hbm,
                stage,
                self.send_msg(s),
                bytes.len() as u64,
            )
            .expect("result DMA");
        self.lhm_shm
            .shm_timestamp(&clock, self.atb(), self.send_flag(s))
            .expect("result flag");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham::{f2f, ham_kernel};
    use ham_offload::Offload;
    use veos_sim::MachineConfig;

    ham_kernel! {
        pub fn empty(_ctx) -> () {}
    }

    ham_kernel! {
        pub fn inner_product(ctx, a: u64, b: u64, n: u64) -> f64 {
            let x = ctx.mem.read_f64s(a, n as usize).unwrap();
            let y = ctx.mem.read_f64s(b, n as usize).unwrap();
            x.iter().zip(&y).map(|(p, q)| p * q).sum()
        }
    }

    ham_kernel! {
        pub fn echo_blob(_ctx, data: Vec<u8>) -> Vec<u8> { data }
    }

    fn machine() -> Arc<AuroraMachine> {
        AuroraMachine::small(
            1,
            MachineConfig {
                hbm_bytes: 16 << 20,
                vh_bytes: 32 << 20,
                ..Default::default()
            },
        )
    }

    fn backend(m: Arc<AuroraMachine>) -> Arc<DmaBackend> {
        DmaBackend::spawn(m, 0, &[0], ProtocolConfig::default(), |b| {
            b.register::<empty>();
            b.register::<inner_product>();
            b.register::<echo_blob>();
        })
    }

    /// The paper's methodology (§V): warm-up iterations, then the mean
    /// over many repetitions — absorbing the one-time startup skew of
    /// `ham_main`'s own VEO launch.
    fn mean_offload_us(o: &Offload, reps: u32) -> f64 {
        for _ in 0..10 {
            o.sync(NodeId(1), f2f!(empty)).unwrap();
        }
        let t0 = o.backend().host_clock().now();
        for _ in 0..reps {
            o.sync(NodeId(1), f2f!(empty)).unwrap();
        }
        (o.backend().host_clock().now() - t0).as_us_f64() / reps as f64
    }

    #[test]
    fn empty_offload_costs_fig9_dma_value() {
        let o = Offload::new(backend(machine()));
        let us = mean_offload_us(&o, 100);
        // Fig. 9: 6.1 us, ±3 %.
        assert!((us - 6.1).abs() / 6.1 < 0.03, "HAM/DMA offload = {us} us");
        o.shutdown();
    }

    #[test]
    fn inner_product_over_dma_protocol() {
        let o = Offload::new(backend(machine()));
        let t = NodeId(1);
        let a = o.allocate::<f64>(t, 64).unwrap();
        let b = o.allocate::<f64>(t, 64).unwrap();
        let xs: Vec<f64> = (0..64).map(|i| (i as f64).sqrt()).collect();
        let ys: Vec<f64> = (0..64).map(|i| 1.0 / (1.0 + i as f64)).collect();
        o.put(&xs, a).unwrap();
        o.put(&ys, b).unwrap();
        let r = o
            .sync(t, f2f!(inner_product, a.addr(), b.addr(), 64))
            .unwrap();
        let expect: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        assert!((r - expect).abs() < 1e-12);
        o.shutdown();
    }

    #[test]
    fn large_messages_use_a_second_dma_and_still_arrive() {
        let o = Offload::new(backend(machine()));
        let blob: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        let r = o.sync(NodeId(1), f2f!(echo_blob, blob.clone())).unwrap();
        assert_eq!(r, blob);
        o.shutdown();
    }

    #[test]
    fn pipelined_asyncs_reuse_slots() {
        let o = Offload::new(backend(machine()));
        let futures: Vec<_> = (0..40)
            .map(|_| o.async_(NodeId(1), f2f!(empty)).unwrap())
            .collect();
        for f in futures {
            f.get().unwrap();
        }
        o.shutdown();
    }

    #[test]
    fn wait_any_drains_out_of_order() {
        let o = Offload::new(backend(machine()));
        let mut futures: Vec<_> = (0..12)
            .map(|_| o.async_(NodeId(1), f2f!(empty)).unwrap())
            .collect();
        while !futures.is_empty() {
            let i = o.wait_any(&mut futures).expect("something pending");
            futures.swap_remove(i).get().unwrap();
        }
        o.shutdown();
    }

    #[test]
    fn shm_segment_released_on_shutdown() {
        let m = machine();
        let shm = Arc::clone(m.shm());
        let before = shm.segment_count();
        let backend = backend(Arc::clone(&m));
        assert!(backend.shm_key(NodeId(1)).is_ok());
        assert_eq!(shm.segment_count(), before + 1);
        let o = Offload::new(backend);
        o.sync(NodeId(1), f2f!(empty)).unwrap();
        o.shutdown();
        drop(o);
        assert_eq!(shm.segment_count(), before, "segment leaked");
        // A later generation on the same machine spawns cleanly (no key
        // collision with the departed segment).
        let again = DmaBackend::spawn(m, 0, &[0], ProtocolConfig::default(), |b| {
            b.register::<empty>();
        });
        assert_eq!(shm.segment_count(), before + 1);
        again.shutdown();
    }

    #[test]
    fn key_pool_reuses_released_keys() {
        // A private pool (leaked for the 'static lease bound) shows the
        // reclamation contract deterministically — the process-global
        // pool is shared across concurrently running tests.
        let pool: &'static ShmKeyPool = Box::leak(Box::new(ShmKeyPool::new()));
        let k1 = pool.lease().key; // lease dropped immediately: reclaimed
        let l2 = pool.lease();
        assert_eq!(l2.key, k1, "freed key must be reused");
        let l3 = pool.lease();
        assert_ne!(l3.key, l2.key, "live keys must stay unique");
        let (k2, k3) = (l2.key, l3.key);
        drop(l2);
        drop(l3);
        // LIFO: the most recently freed key comes back first. (Keep the
        // leases bound — a temporary would return its key immediately.)
        let l4 = pool.lease();
        assert_eq!(l4.key, k3);
        let l5 = pool.lease();
        assert_eq!(l5.key, k2);
    }

    #[test]
    fn second_socket_adds_about_one_microsecond() {
        let m = AuroraMachine::a300_8(MachineConfig {
            hbm_bytes: 16 << 20,
            vh_bytes: 32 << 20,
            ..Default::default()
        });
        let near = DmaBackend::spawn(Arc::clone(&m), 0, &[0], ProtocolConfig::default(), |b| {
            b.register::<empty>();
        });
        let far = DmaBackend::spawn(m, 1, &[0], ProtocolConfig::default(), |b| {
            b.register::<empty>();
        });
        let on = Offload::new(near);
        let of = Offload::new(far);
        let near_us = mean_offload_us(&on, 50);
        let far_us = mean_offload_us(&of, 50);
        let delta = far_us - near_us;
        assert!(delta > 0.5 && delta < 1.5, "UPI delta = {delta} us");
        on.shutdown();
        of.shutdown();
    }

    ham_kernel! {
        /// Host-side helper a VE kernel calls back into.
        pub fn host_adder(_ctx, a: u64, b: u64) -> u64 { a + b }
    }

    ham_kernel! {
        /// A VE kernel that reverse-offloads part of its work (VHcall).
        pub fn uses_vhcall(ctx, x: u64) -> u64 {
            assert!(ctx.has_reverse(), "reverse transport must be present");
            let partial = ctx.vhcall(f2f!(host_adder, x, 100)).expect("vhcall");
            partial * 2
        }
    }

    #[test]
    fn reverse_offload_round_trip() {
        let o = Offload::new(DmaBackend::spawn(
            machine(),
            0,
            &[0],
            ProtocolConfig {
                reverse: true,
                ..Default::default()
            },
            |b| {
                b.register::<host_adder>();
                b.register::<uses_vhcall>();
            },
        ));
        // (x + 100) on the host, * 2 back on the VE.
        assert_eq!(o.sync(NodeId(1), f2f!(uses_vhcall, 7)).unwrap(), 214);
        o.shutdown();
    }

    #[test]
    fn reverse_calls_are_counted_and_cheap() {
        let backend = DmaBackend::spawn(
            machine(),
            0,
            &[0],
            ProtocolConfig {
                reverse: true,
                ..Default::default()
            },
            |b| {
                b.register::<host_adder>();
                b.register::<uses_vhcall>();
                b.register::<empty>();
            },
        );
        let o = Offload::new(Arc::<DmaBackend>::clone(&backend));
        // Warm up, then measure an offload whose kernel makes one
        // reverse call.
        for _ in 0..10 {
            o.sync(NodeId(1), f2f!(uses_vhcall, 1)).unwrap();
        }
        let t0 = o.backend().host_clock().now();
        let reps = 20;
        for _ in 0..reps {
            o.sync(NodeId(1), f2f!(uses_vhcall, 1)).unwrap();
        }
        let us = (o.backend().host_clock().now() - t0).as_us_f64() / reps as f64;
        assert!(backend.reverse_served(NodeId(1)) >= 10 + reps);
        // One forward (~6 µs) + one reverse (~6 µs) round trip — far
        // below the ~85 µs syscall-style VHcall path.
        assert!(us > 8.0 && us < 25.0, "offload with vhcall = {us} us");
        o.shutdown();
    }

    #[test]
    fn vhcall_without_reverse_enabled_errors() {
        let o = Offload::new(DmaBackend::spawn(
            machine(),
            0,
            &[0],
            ProtocolConfig::default(),
            |b| {
                b.register::<host_adder>();
                b.register::<vhcall_expect_err>();
            },
        ));
        assert!(o.sync(NodeId(1), f2f!(vhcall_expect_err)).unwrap());
        o.shutdown();
    }

    ham_kernel! {
        pub fn vhcall_expect_err(ctx) -> bool {
            !ctx.has_reverse()
                && ctx.vhcall(f2f!(host_adder, 1, 2)).is_err()
        }
    }

    #[test]
    fn shutdown_then_post_fails() {
        let o = Offload::new(backend(machine()));
        o.shutdown();
        assert!(matches!(
            o.sync(NodeId(1), f2f!(empty)),
            Err(OffloadError::Shutdown)
        ));
    }
}
