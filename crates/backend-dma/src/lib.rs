//! # ham-backend-dma
//!
//! The DMA-based HAM-Offload communication backend (paper §IV,
//! Figs. 7–8) — the fast protocol that cuts the offloading cost by
//! 13.1× relative to a native VEO call and 70.8× relative to the VEO
//! backend (Fig. 9).
//!
//! All communication memory lives in a **SysV shared-memory segment on
//! the VH** (Fig. 7): the VH's protocol operations become local memory
//! accesses, and the **VE initiates every transfer** with hardware it
//! controls directly — the LHM/SHM instructions for flags and the user
//! DMA engine for messages — after registering the segment in its DMAATB.
//! No VEOS involvement, no on-the-fly translation.
//!
//! Application start, initialisation (shm key exchange, DMAATB
//! registration via the `ham_dma_init` C-API call) and bulk data
//! exchange (`put`/`get`) still go through the VEO API (§IV-B), which is
//! why this crate builds on the shared `aurora-proto` [`AuroraCore`].
//! Host-side protocol state (slots, sequences, completions) lives in
//! `ham_offload::chan`; this crate implements only the DMA transport
//! verbs.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod protocol;
pub mod reverse;

pub use protocol::DmaBackend;

pub use aurora_proto::{AuroraCore, ProtocolConfig};
