//! The "VE shared library": named kernels (simulated dlopen/dlsym).
//!
//! In a real VEO program the application is compiled by NCC into a `.so`
//! for the VE, loaded with `veo_load_library`, and functions are fetched
//! by symbol name (§III-C). The simulation's library is a map from symbol
//! names to Rust closures that receive the VE-side world
//! ([`crate::VeContext`]) and the argument stack.

use crate::args::ArgsStack;
use crate::context::VeContext;
use std::collections::HashMap;
use std::sync::Arc;

/// A VE kernel: runs "on the VE" (a VE worker thread) with access to the
/// VE-side world; returns a 64-bit value (the VEO ABI).
pub type KernelFn = Arc<dyn Fn(&VeContext, &ArgsStack) -> u64 + Send + Sync>;

/// Handle to a resolved symbol (`veo_get_sym`).
#[derive(Clone)]
pub struct SymHandle {
    pub(crate) name: String,
    pub(crate) func: KernelFn,
}

impl SymHandle {
    /// The symbol's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl core::fmt::Debug for SymHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SymHandle({:?})", self.name)
    }
}

/// A loadable library of named kernels.
#[derive(Clone, Default)]
pub struct KernelLibrary {
    symbols: HashMap<String, KernelFn>,
}

impl KernelLibrary {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a kernel under `name`; builder-style.
    pub fn with(
        mut self,
        name: &str,
        f: impl Fn(&VeContext, &ArgsStack) -> u64 + Send + Sync + 'static,
    ) -> Self {
        self.symbols.insert(name.to_string(), Arc::new(f));
        self
    }

    /// Look up a symbol.
    pub fn sym(&self, name: &str) -> Option<SymHandle> {
        self.symbols.get(name).map(|f| SymHandle {
            name: name.to_string(),
            func: Arc::clone(f),
        })
    }

    /// Number of exported symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the library exports nothing.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

impl core::fmt::Debug for KernelLibrary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut names: Vec<_> = self.symbols.keys().collect();
        names.sort();
        f.debug_struct("KernelLibrary")
            .field("symbols", &names)
            .finish()
    }
}
