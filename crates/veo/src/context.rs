//! VEO contexts: the command queue executing kernels on the VE.

use crate::args::ArgsStack;
use crate::library::SymHandle;
use crate::VeoError;
use aurora_mem::ShmManager;
use aurora_sim_core::{calib, Clock, SimTime};
use aurora_ve::{LhmShmUnit, UserDma};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use veos_sim::VeProcess;

/// The VE-side world a kernel executes in: what code "running on the VE"
/// can touch. Handed to every [`crate::KernelFn`].
pub struct VeContext {
    /// The VE process (memory, VEMVA translation, clock).
    pub proc: Arc<VeProcess>,
    /// This core's user DMA engine (§IV-A).
    pub udma: UserDma,
    /// This core's LHM/SHM unit (§IV-A).
    pub lhm_shm: LhmShmUnit,
    /// The machine's SysV shm registry (for attaching host segments,
    /// Fig. 7).
    pub shm: Arc<ShmManager>,
}

impl VeContext {
    /// The VE process's virtual clock.
    pub fn clock(&self) -> &Clock {
        self.proc.clock()
    }
}

/// Identifies an in-flight VEO call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReqId(pub u64);

enum Command {
    Call {
        req: ReqId,
        sym: SymHandle,
        args: ArgsStack,
        /// Host virtual time at submission.
        submitted: SimTime,
    },
    Close,
}

/// An open VEO thread context (`veo_context_open`): an in-order command
/// queue served by one VE worker thread.
pub struct VeoContext {
    tx: Sender<Command>,
    results: Arc<Mutex<HashMap<u64, (u64, SimTime)>>>,
    next_req: Mutex<u64>,
    host_clock: Clock,
    worker: Mutex<Option<JoinHandle<()>>>,
    /// Cleared when the worker thread exits — including by panic (a
    /// crashed kernel must turn waiting callers into errors, not hangs).
    alive: Arc<std::sync::atomic::AtomicBool>,
}

impl VeoContext {
    /// Open a context on `proc`; `ve_ctx` is the world kernels see.
    /// `host_clock` is the submitting VH process's clock.
    pub(crate) fn open(ve_ctx: VeContext, host_clock: Clock) -> Arc<Self> {
        let (tx, rx) = unbounded::<Command>();
        let results: Arc<Mutex<HashMap<u64, (u64, SimTime)>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let results2 = Arc::clone(&results);
        let alive = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let alive2 = Arc::clone(&alive);
        let worker = std::thread::Builder::new()
            .name(format!("veo-ctx-ve{}", ve_ctx.proc.ve().id()))
            .spawn(move || {
                // Clear the liveness flag on ANY exit path, panics
                // included.
                struct Liveness(Arc<std::sync::atomic::AtomicBool>);
                impl Drop for Liveness {
                    fn drop(&mut self) {
                        self.0.store(false, std::sync::atomic::Ordering::Release);
                    }
                }
                let _liveness = Liveness(alive2);
                while let Ok(cmd) = rx.recv() {
                    match cmd {
                        Command::Close => break,
                        Command::Call {
                            req,
                            sym,
                            args,
                            submitted,
                        } => {
                            // Command reaches the VE half a round trip
                            // after submission.
                            let clock = ve_ctx.proc.clock().clone();
                            clock.join(submitted + calib::VEO_CALL_ROUNDTRIP / 2);
                            let ret = (sym.func)(&ve_ctx, &args);
                            // Completion notification travels back.
                            let done = clock.now() + calib::VEO_CALL_ROUNDTRIP / 2;
                            results2.lock().insert(req.0, (ret, done));
                        }
                    }
                }
            })
            .expect("spawn veo context worker");
        Arc::new(Self {
            tx,
            results,
            next_req: Mutex::new(1),
            host_clock,
            worker: Mutex::new(Some(worker)),
            alive,
        })
    }

    /// True while the worker thread is running (a long-running kernel
    /// like `ham_main` counts as running). False after close or after a
    /// kernel panic killed the worker.
    pub fn is_alive(&self) -> bool {
        self.alive.load(std::sync::atomic::Ordering::Acquire)
    }

    /// `veo_call_async`: enqueue a kernel call.
    pub fn call_async(&self, sym: &SymHandle, args: ArgsStack) -> Result<ReqId, VeoError> {
        let req = {
            let mut n = self.next_req.lock();
            let r = ReqId(*n);
            *n += 1;
            r
        };
        self.tx
            .send(Command::Call {
                req,
                sym: sym.clone(),
                args,
                submitted: self.host_clock.now(),
            })
            .map_err(|_| VeoError::ContextClosed)?;
        Ok(req)
    }

    /// `veo_call_peek_result`: non-blocking.
    pub fn peek_result(&self, req: ReqId) -> Option<u64> {
        let mut results = self.results.lock();
        if let Some((ret, done)) = results.remove(&req.0) {
            self.host_clock.join(done);
            Some(ret)
        } else {
            None
        }
    }

    /// `veo_call_wait_result`: block until the kernel finished; the host
    /// clock joins the completion time (an empty kernel thus costs
    /// exactly [`calib::VEO_CALL_ROUNDTRIP`]).
    pub fn wait_result(&self, req: ReqId) -> Result<u64, VeoError> {
        loop {
            if let Some(ret) = self.peek_result(req) {
                return Ok(ret);
            }
            if !self.is_alive() {
                return Err(VeoError::ContextClosed);
            }
            std::thread::yield_now();
        }
    }

    /// Close the context and join its worker. Idempotent. A context
    /// blocked inside a long-running kernel (e.g. `ham_main`) only joins
    /// after that kernel returns.
    pub fn close(&self) {
        let _ = self.tx.send(Command::Close);
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for VeoContext {
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Close);
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
    }
}
