//! # veo-api
//!
//! The VEO (Vector Engine Offloading) user API (§I-B, §III), mirroring
//! NEC's libveo against the simulated platform:
//!
//! * [`proc::VeoProc`] — `veo_proc_create`: spawns a VE process via VEOS;
//! * [`library::KernelLibrary`] — `veo_load_library`/`veo_get_sym`: a "VE
//!   shared library" of named kernels (simulating dlopen/dlsym on the VE
//!   binary);
//! * [`context::VeoContext`] — `veo_context_open` + `veo_call_async` /
//!   `veo_call_wait_result`: an in-order command queue executing kernels
//!   on a VE worker thread;
//! * `read_mem`/`write_mem`/`alloc_mem`/`free_mem` on [`proc::VeoProc`] —
//!   data movement through VEOS's privileged DMA manager.
//!
//! Kernels execute with a [`context::VeContext`] in hand: the VE-side
//! world (process memory, the user DMA engine, the LHM/SHM unit, SysV
//! shm attach) — everything the paper's DMA protocol needs from inside
//! `ham_main()`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod args;
pub mod context;
pub mod library;
pub mod proc;

pub use args::ArgsStack;
pub use context::{VeContext, VeoContext};
pub use library::{KernelFn, KernelLibrary, SymHandle};
pub use proc::VeoProc;

/// Errors of the VEO layer.
#[derive(Clone, Debug, PartialEq)]
pub enum VeoError {
    /// Unknown symbol name.
    UnknownSymbol(String),
    /// No library loaded yet.
    NoLibrary,
    /// Memory subsystem failure.
    Mem(String),
    /// The context was closed.
    ContextClosed,
    /// Unknown request id.
    UnknownRequest(u64),
}

impl core::fmt::Display for VeoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VeoError::UnknownSymbol(s) => write!(f, "unknown symbol {s:?}"),
            VeoError::NoLibrary => write!(f, "no library loaded"),
            VeoError::Mem(m) => write!(f, "memory error: {m}"),
            VeoError::ContextClosed => write!(f, "context closed"),
            VeoError::UnknownRequest(r) => write!(f, "unknown request {r}"),
        }
    }
}

impl std::error::Error for VeoError {}

impl From<aurora_mem::MemError> for VeoError {
    fn from(e: aurora_mem::MemError) -> Self {
        VeoError::Mem(e.to_string())
    }
}
