//! `VeoProc`: one VE process handle on the host side.

use crate::context::{VeContext, VeoContext};
use crate::library::{KernelLibrary, SymHandle};
use crate::VeoError;
use aurora_mem::{VeAddr, VhAddr};
use aurora_sim_core::{Clock, SimTime};
use aurora_ve::{LhmShmUnit, UserDma};
use parking_lot::Mutex;
use std::sync::Arc;
use veos_sim::{AuroraMachine, HostSlice, VeProcess};

/// Host-side handle to a VE process (`veo_proc_create`).
pub struct VeoProc {
    machine: Arc<AuroraMachine>,
    ve_id: u8,
    host_socket: u8,
    proc: Arc<VeProcess>,
    lib: Mutex<Option<Arc<KernelLibrary>>>,
    host_clock: Clock,
}

impl VeoProc {
    /// `veo_proc_create(ve_id)`: start a VE process via VEOS.
    /// `host_socket` pins the calling VH process (the UPI knob of §V-A);
    /// `host_clock` is that process's virtual clock.
    pub fn create(
        machine: Arc<AuroraMachine>,
        ve_id: u8,
        host_socket: u8,
        host_clock: Clock,
    ) -> Arc<Self> {
        let proc = machine.veos(ve_id).create_process();
        Arc::new(Self {
            machine,
            ve_id,
            host_socket,
            proc,
            lib: Mutex::new(None),
            host_clock,
        })
    }

    /// The underlying VE process.
    pub fn process(&self) -> &Arc<VeProcess> {
        &self.proc
    }

    /// The machine this process runs on.
    pub fn machine(&self) -> &Arc<AuroraMachine> {
        &self.machine
    }

    /// The VE's index.
    pub fn ve_id(&self) -> u8 {
        self.ve_id
    }

    /// The host process's clock.
    pub fn host_clock(&self) -> &Clock {
        &self.host_clock
    }

    /// Extra one-way link latency for this host-socket / VE pairing.
    pub fn extra_one_way(&self) -> SimTime {
        self.machine
            .topology()
            .extra_one_way(self.host_socket, self.ve_id)
    }

    /// `veo_load_library`: make `lib`'s symbols callable in the process.
    pub fn load_library(&self, lib: KernelLibrary) {
        *self.lib.lock() = Some(Arc::new(lib));
    }

    /// `veo_get_sym`.
    pub fn get_sym(&self, name: &str) -> Result<SymHandle, VeoError> {
        let guard = self.lib.lock();
        let lib = guard.as_ref().ok_or(VeoError::NoLibrary)?;
        lib.sym(name)
            .ok_or_else(|| VeoError::UnknownSymbol(name.to_string()))
    }

    /// `veo_context_open`: a command queue with a VE worker thread. The
    /// worker's engines carry the UPI penalty of this proc's pairing.
    pub fn open_context(&self) -> Arc<VeoContext> {
        let extra = self.extra_one_way();
        let link = Arc::clone(self.proc.ve().link());
        let ve_ctx = VeContext {
            proc: Arc::clone(&self.proc),
            udma: UserDma::with_extra_latency(Arc::clone(&link), extra),
            lhm_shm: LhmShmUnit::with_extra_latency(link, extra),
            shm: Arc::clone(self.machine.shm()),
        };
        VeoContext::open(ve_ctx, self.host_clock.clone())
    }

    /// `veo_alloc_mem`.
    pub fn alloc_mem(&self, len: u64) -> Result<VeAddr, VeoError> {
        Ok(self.proc.alloc_mem(len)?)
    }

    /// `veo_free_mem`.
    pub fn free_mem(&self, addr: VeAddr) -> Result<(), VeoError> {
        Ok(self.proc.free_mem(addr)?)
    }

    /// `veo_write_mem`: VH buffer → VE memory through the privileged DMA
    /// manager. The buffer must live in this machine's VH memory (so the
    /// page-wise translation cost is accounted against real pages).
    pub fn write_mem(&self, vh_src: VhAddr, ve_dst: VeAddr, len: u64) -> Result<SimTime, VeoError> {
        let host = HostSlice {
            vh: Arc::clone(self.machine.vh(self.host_socket)),
            vaddr: vh_src,
        };
        Ok(self.machine.veos(self.ve_id).dma().write_ve(
            &self.host_clock,
            &host,
            &self.proc,
            ve_dst,
            len,
        )?)
    }

    /// `veo_read_mem`: VE memory → VH buffer.
    pub fn read_mem(&self, ve_src: VeAddr, vh_dst: VhAddr, len: u64) -> Result<SimTime, VeoError> {
        let host = HostSlice {
            vh: Arc::clone(self.machine.vh(self.host_socket)),
            vaddr: vh_dst,
        };
        Ok(self.machine.veos(self.ve_id).dma().read_ve(
            &self.host_clock,
            &host,
            &self.proc,
            ve_src,
            len,
        )?)
    }

    /// Destroy the process (`veo_proc_destroy`).
    pub fn destroy(&self) {
        self.machine
            .veos(self.ve_id)
            .destroy_process(self.proc.pid());
    }
}

impl core::fmt::Debug for VeoProc {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "VeoProc(ve {}, pid {}, socket {})",
            self.ve_id,
            self.proc.pid(),
            self.host_socket
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ArgsStack;
    use aurora_sim_core::calib;
    use veos_sim::MachineConfig;

    fn small_machine() -> Arc<AuroraMachine> {
        AuroraMachine::small(
            1,
            MachineConfig {
                hbm_bytes: 8 << 20,
                vh_bytes: 8 << 20,
                ..Default::default()
            },
        )
    }

    fn create(machine: &Arc<AuroraMachine>) -> Arc<VeoProc> {
        VeoProc::create(Arc::clone(machine), 0, 0, Clock::new())
    }

    #[test]
    fn library_and_symbols() {
        let m = small_machine();
        let p = create(&m);
        assert!(matches!(p.get_sym("f"), Err(VeoError::NoLibrary)));
        p.load_library(KernelLibrary::new().with("f", |_, _| 42));
        assert_eq!(p.get_sym("f").unwrap().name(), "f");
        assert!(matches!(
            p.get_sym("missing"),
            Err(VeoError::UnknownSymbol(_))
        ));
    }

    #[test]
    fn empty_call_costs_the_fig9_veo_value() {
        let m = small_machine();
        let p = create(&m);
        p.load_library(KernelLibrary::new().with("empty", |_, _| 0));
        let ctx = p.open_context();
        let sym = p.get_sym("empty").unwrap();
        let t0 = p.host_clock().now();
        let req = ctx.call_async(&sym, ArgsStack::new()).unwrap();
        let ret = ctx.wait_result(req).unwrap();
        assert_eq!(ret, 0);
        let elapsed = p.host_clock().now() - t0;
        assert_eq!(elapsed, calib::VEO_CALL_ROUNDTRIP, "79.9 us empty offload");
        ctx.close();
    }

    #[test]
    fn kernel_receives_args_and_ve_world() {
        let m = small_machine();
        let p = create(&m);
        let addr = p.alloc_mem(64).unwrap();
        p.load_library(KernelLibrary::new().with("store", |ve, args| {
            let target = VeAddr(args.get_u64(0));
            let value = args.get_f64(1);
            ve.proc.write(target, &value.to_le_bytes()).unwrap();
            1
        }));
        let ctx = p.open_context();
        let sym = p.get_sym("store").unwrap();
        let req = ctx
            .call_async(&sym, ArgsStack::new().push_u64(addr.get()).push_f64(3.25))
            .unwrap();
        assert_eq!(ctx.wait_result(req).unwrap(), 1);
        let mut out = [0u8; 8];
        p.process().read(addr, &mut out).unwrap();
        assert_eq!(f64::from_le_bytes(out), 3.25);
        ctx.close();
    }

    #[test]
    fn write_and_read_mem_through_priv_dma() {
        let m = small_machine();
        let p = create(&m);
        let vh = m.vh(0);
        let src = vh.alloc(256).unwrap();
        let dst_back = vh.alloc(256).unwrap();
        vh.write(src, b"veo transfer payload").unwrap();
        let ve_buf = p.alloc_mem(256).unwrap();
        p.write_mem(src, ve_buf, 20).unwrap();
        p.read_mem(ve_buf, dst_back, 20).unwrap();
        let mut out = [0u8; 20];
        vh.read(dst_back, &mut out).unwrap();
        assert_eq!(&out, b"veo transfer payload");
        // Two ops: one write (85 us) + one read (131 us) minimum.
        let total = p.host_clock().now();
        assert!(total >= calib::VEO_WRITE_BASE + calib::VEO_READ_BASE);
    }

    #[test]
    fn calls_are_in_order_on_one_context() {
        let m = small_machine();
        let p = create(&m);
        let counter_addr = p.alloc_mem(8).unwrap();
        p.load_library(KernelLibrary::new().with("inc", |ve, args| {
            let addr = VeAddr(args.get_u64(0));
            let mut b = [0u8; 8];
            ve.proc.read(addr, &mut b).unwrap();
            let v = u64::from_le_bytes(b) + 1;
            ve.proc.write(addr, &v.to_le_bytes()).unwrap();
            v
        }));
        let ctx = p.open_context();
        let sym = p.get_sym("inc").unwrap();
        let reqs: Vec<_> = (0..10)
            .map(|_| {
                ctx.call_async(&sym, ArgsStack::new().push_u64(counter_addr.get()))
                    .unwrap()
            })
            .collect();
        let results: Vec<u64> = reqs.iter().map(|r| ctx.wait_result(*r).unwrap()).collect();
        assert_eq!(results, (1..=10).collect::<Vec<u64>>(), "FIFO queue");
        ctx.close();
    }

    #[test]
    fn peek_is_nonblocking() {
        let m = small_machine();
        let p = create(&m);
        p.load_library(KernelLibrary::new().with("slow", |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            7
        }));
        let ctx = p.open_context();
        let sym = p.get_sym("slow").unwrap();
        let req = ctx.call_async(&sym, ArgsStack::new()).unwrap();
        // Immediately after submission the result is (almost certainly)
        // not there; peek must not block either way.
        let _ = ctx.peek_result(req);
        assert_eq!(ctx.wait_result(req).unwrap(), 7);
        ctx.close();
    }

    #[test]
    fn wait_on_closed_context_errors() {
        let m = small_machine();
        let p = create(&m);
        p.load_library(KernelLibrary::new().with("f", |_, _| 1));
        let ctx = p.open_context();
        let sym = p.get_sym("f").unwrap();
        // Consume a successful call first.
        let req = ctx.call_async(&sym, ArgsStack::new()).unwrap();
        assert_eq!(ctx.wait_result(req).unwrap(), 1);
        ctx.close();
        ctx.close(); // idempotent
                     // New calls after close fail cleanly.
        assert!(matches!(
            ctx.call_async(&sym, ArgsStack::new()),
            Err(crate::VeoError::ContextClosed)
        ));
    }

    #[test]
    fn contexts_are_independent_queues() {
        let m = small_machine();
        let p = create(&m);
        p.load_library(KernelLibrary::new().with("id", |_, args| args.get_u64(0)));
        let c1 = p.open_context();
        let c2 = p.open_context();
        let sym = p.get_sym("id").unwrap();
        let r1 = c1.call_async(&sym, ArgsStack::new().push_u64(10)).unwrap();
        let r2 = c2.call_async(&sym, ArgsStack::new().push_u64(20)).unwrap();
        assert_eq!(c2.wait_result(r2).unwrap(), 20);
        assert_eq!(c1.wait_result(r1).unwrap(), 10);
        c1.close();
        c2.close();
    }

    #[test]
    fn destroy_removes_the_process() {
        let m = small_machine();
        let p = create(&m);
        let pid = p.process().pid();
        assert!(m.veos(0).process(pid).is_some());
        p.destroy();
        assert!(m.veos(0).process(pid).is_none());
    }
}
