//! `veo_args`: the flat argument stack of a VEO call.
//!
//! Native VEO calls are "limited to a few basic types for arguments and
//! return types" (§V-A) — exactly why HAM-Offload's rich message-based
//! semantics are worth their framework cost. The stack holds 64-bit
//! slots; wider types are bit-cast.

/// Arguments for one VEO kernel call.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ArgsStack {
    slots: Vec<u64>,
}

impl ArgsStack {
    /// Empty stack (`veo_args_alloc`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Push a `u64` (`veo_args_set_u64`).
    pub fn push_u64(mut self, v: u64) -> Self {
        self.slots.push(v);
        self
    }

    /// Push an `i64`.
    pub fn push_i64(self, v: i64) -> Self {
        self.push_u64(v as u64)
    }

    /// Push a `f64` (bit-cast into a slot).
    pub fn push_f64(self, v: f64) -> Self {
        self.push_u64(v.to_bits())
    }

    /// Push a 32-bit value (zero-extended).
    pub fn push_u32(self, v: u32) -> Self {
        self.push_u64(v as u64)
    }

    /// Number of argument slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no arguments were pushed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Read slot `i` as `u64`. Panics on out-of-range (the simulated ABI
    /// violation).
    pub fn get_u64(&self, i: usize) -> u64 {
        self.slots[i]
    }

    /// Read slot `i` as `i64`.
    pub fn get_i64(&self, i: usize) -> i64 {
        self.slots[i] as i64
    }

    /// Read slot `i` as `f64`.
    pub fn get_f64(&self, i: usize) -> f64 {
        f64::from_bits(self.slots[i])
    }

    /// Read slot `i` as `u32` (truncating).
    pub fn get_u32(&self, i: usize) -> u32 {
        self.slots[i] as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let a = ArgsStack::new()
            .push_u64(7)
            .push_f64(2.5)
            .push_i64(-3)
            .push_u32(9);
        assert_eq!(a.len(), 4);
        assert_eq!(a.get_u64(0), 7);
        assert_eq!(a.get_f64(1), 2.5);
        assert_eq!(a.get_i64(2), -3);
        assert_eq!(a.get_u32(3), 9);
    }

    #[test]
    fn empty() {
        assert!(ArgsStack::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        ArgsStack::new().get_u64(0);
    }
}
