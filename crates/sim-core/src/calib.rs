//! Calibration constants for the simulated SX-Aurora TSUBASA A300-8.
//!
//! Every constant is derived from a number in the paper (section given in
//! the comment). Where the paper reports only a derived quantity (a ratio,
//! a crossover), the primitive constant is solved from it; the derivation
//! is spelled out so reviewers can re-check the arithmetic.
//!
//! Known tension in the paper's own numbers (documented in
//! `EXPERIMENTS.md`): §V-B states SHM beats VEO's host-initiated read up to
//! 32 KiB *and* SHM tops out at 0.06 GiB/s *and* (via Fig. 9) the
//! HAM-over-VEO offload costs 432 µs built from a handful of VEO
//! read/write operations. No smooth `latency + size/bandwidth` model for
//! VEO satisfies all three; we prioritise Fig. 9 and Table IV exactly,
//! which places our SHM-vs-VEO-read crossover near 8 KiB instead of
//! 32 KiB (inequality direction preserved).

use crate::model::{BurstModel, LinkModel, SegmentedModel};
use crate::time::SimTime;

// ---------------------------------------------------------------------------
// PCIe Gen3 x16 (§V, first paragraph)
// ---------------------------------------------------------------------------

/// Theoretical peak of a PCIe Gen3 x16 card: 14.7 GiB/s (§V).
pub const PCIE_RAW_GIB_S: f64 = 14.7;

/// Achievable ceiling given the VE's 256 B max payload and PCIe protocol
/// overhead: 91 % of raw, i.e. 13.4 GiB/s (§V, citing \[25\]).
pub const PCIE_EFFECTIVE_GIB_S: f64 = 13.4;

/// Maximum TLP payload of the NEC Vector Engine (§V): 256 byte.
pub const PCIE_MAX_PAYLOAD: u64 = 256;

/// One-way PCIe latency. The paper reports a measured PCIe round-trip
/// time of 1.2 µs (§V-A, citing \[4\]); we split it evenly.
pub const PCIE_ONE_WAY: SimTime = SimTime::from_ns(600);

/// Extra one-way latency per UPI hop when the offloading process runs on
/// the second CPU socket. §V-A: "adds up to 1 µs to the DMA measurement";
/// the DMA round trip crosses the link six times (LHM poll = 2, DMA fetch
/// = 2, DMA result write = 1, SHM flag = 1), so ~170 ns per crossing.
pub const UPI_HOP: SimTime = SimTime::from_ns(170);

// ---------------------------------------------------------------------------
// VE user DMA (§IV-A, §V-B)
// ---------------------------------------------------------------------------

/// Setup cost of one user-DMA request issued by VE code.
///
/// Solved from §V-B: the SHM store of a single 64-bit word is "89 %
/// faster" than user DMA and at 256 byte still "16 %" faster; with the SHM
/// model below (160 ns for one word, 1.214 µs for 32 words) both pin the
/// small-transfer user-DMA cost at ≈ 1.45 µs. The same value makes LHM
/// (720 ns/word) "only faster for one or two words" (§V-B).
pub const UDMA_SETUP: SimTime = SimTime::from_ns(1450);

/// Sustained user-DMA bandwidth VH ⇒ VE (Table IV): 10.6 GiB/s.
pub const UDMA_VH2VE_GIB_S: f64 = 10.6;

/// Sustained user-DMA bandwidth VE ⇒ VH (Table IV): 11.1 GiB/s.
///
/// VE⇒VH are posted PCIe writes, VH⇒VE are non-posted reads — hence the
/// ≤ 5 % direction asymmetry the paper observes (§V-B).
pub const UDMA_VE2VH_GIB_S: f64 = 11.1;

/// User-DMA transfer model, VH ⇒ VE (a DMA *read* of host memory).
pub fn udma_vh2ve() -> LinkModel {
    LinkModel::new(UDMA_SETUP, UDMA_VH2VE_GIB_S)
}

/// User-DMA transfer model, VE ⇒ VH (a DMA *write* to host memory).
pub fn udma_ve2vh() -> LinkModel {
    LinkModel::new(UDMA_SETUP, UDMA_VE2VH_GIB_S)
}

// ---------------------------------------------------------------------------
// LHM / SHM instructions (§IV-A, §V-B)
// ---------------------------------------------------------------------------

/// Cost of one LHM (Load Host Memory) 64-bit word: a synchronous,
/// non-pipelined PCIe read round trip. 720 ns/word yields the 0.01 GiB/s
/// of Table IV and keeps LHM ahead of user DMA only for 1–2 words (§V-B):
/// 2 × 720 ns = 1.44 µs ≤ 1.45 µs, 3 × 720 ns = 2.16 µs > 1.45 µs.
pub const LHM_WORD: SimTime = SimTime::from_ns(720);

/// SHM (Store Host Memory) instruction-stream model. Posted writes
/// pipeline through the PCIe credit window; once credits are exhausted the
/// stream throttles to a steady-state rate.
///
/// Solved from §V-B + Table IV:
/// * 1 word 89 % faster than user DMA (1.45 µs) → T(1) ≈ 160 ns,
/// * 32 words (256 B) 16 % faster → T(32) ≈ 1.214 µs,
///   ⇒ setup = 126 ns, fast word = 34 ns,
/// * steady state 0.06 GiB/s → 124 ns/word,
/// * window = 32 words = 256 B = one max-payload TLP of write-combining.
pub fn shm_stream() -> BurstModel {
    BurstModel {
        setup: SimTime::from_ns(126),
        window_words: 32,
        word_fast: SimTime::from_ps(34_000),
        word_steady: SimTime::from_ps(124_000),
    }
}

/// Idle time after which the SHM posted-write credit window is fully
/// replenished. In a back-to-back bandwidth loop credits never recover,
/// so sustained SHM streams run at the steady rate (Table IV's
/// 0.06 GiB/s), while a single small message after idle — the protocol's
/// result-notification pattern — gets the fast window (§V-B's 89 %/16 %
/// wins over user DMA).
pub const SHM_CREDIT_REPLENISH: SimTime = SimTime::from_ns(2_000);

// ---------------------------------------------------------------------------
// VEO data transfers (§III-D, §V-B)
// ---------------------------------------------------------------------------

/// Base latency of one `veo_write_mem` (VH ⇒ VE), small transfer.
///
/// Solved jointly with [`VEO_READ_BASE`] from Fig. 9: the HAM-over-VEO
/// offload (two writes: message + flag; two reads: result flag poll +
/// result message) costs 70.8 × 6.1 µs ≈ 432 µs, and one VEO operation is
/// on the order of the 79.9 µs native VEO call: 85 + 85 + 131 + 131 =
/// 432 µs. The cost reflects the three-component VH software path
/// (pseudo-process → VEOS → kernel modules) plus on-the-fly V2P
/// translation (§III-D).
pub const VEO_WRITE_BASE: SimTime = SimTime::from_us(85);

/// Base latency of one `veo_read_mem` (VE ⇒ VH), small transfer.
/// See [`VEO_WRITE_BASE`]. Reads are non-posted and dearer.
pub const VEO_READ_BASE: SimTime = SimTime::from_us(131);

/// Sustained VEO write bandwidth VH ⇒ VE with huge pages + improved DMA
/// manager (Table IV): 9.9 GiB/s.
pub const VEO_WRITE_GIB_S: f64 = 9.9;

/// Sustained VEO read bandwidth VE ⇒ VH (Table IV): 10.4 GiB/s.
pub const VEO_READ_GIB_S: f64 = 10.4;

/// Per-page translation overhead of the *improved* (1.3.2-4dma) DMA
/// manager: bulk translations overlapped with descriptor generation and
/// the DMA itself (§III-D), so the residual per-2-MiB-page cost is small.
pub const VEOS_PAGE_COST_IMPROVED: SimTime = SimTime::from_ns(400);

/// Per-page translation overhead of the *classic* DMA manager: each page
/// translated on the fly, synchronously, inside VEOS (§III-D). Dominates
/// large transfers when not overlapped.
pub const VEOS_PAGE_COST_CLASSIC: SimTime = SimTime::from_ns(2_500);

/// Huge-page size used on the VH side for peak bandwidth (§V-B: "at least
/// 2 MiB").
pub const HUGE_PAGE_BYTES: u64 = 2 * 1024 * 1024;

/// Default small-page size.
pub const SMALL_PAGE_BYTES: u64 = 4 * 1024;

/// VEO transfer model for a given direction / page size / DMA manager
/// generation. The `improved + huge pages` configuration reproduces the
/// Fig. 10 VEO series; the others are the ablation the paper motivates
/// (§III-D: ≥ 11 GB/s only "with the improved DMA manager … when huge
/// pages are employed").
pub fn veo_transfer(write: bool, page_bytes: u64, improved: bool) -> SegmentedModel {
    let per_page = if improved {
        VEOS_PAGE_COST_IMPROVED
    } else {
        VEOS_PAGE_COST_CLASSIC
    };
    SegmentedModel {
        setup: if write { VEO_WRITE_BASE } else { VEO_READ_BASE },
        segment_bytes: page_bytes,
        per_segment: per_page,
        gib_per_sec: if write {
            VEO_WRITE_GIB_S
        } else {
            VEO_READ_GIB_S
        },
    }
}

// ---------------------------------------------------------------------------
// VEO native function offload (Fig. 9)
// ---------------------------------------------------------------------------

/// Cost of one native VEO function call round trip (`veo_call_async` +
/// `veo_call_wait_result` of an empty kernel). Fig. 9: the DMA protocol is
/// "13.1× faster than a native VEO offload" at 6.1 µs ⇒ 79.9 µs.
pub const VEO_CALL_ROUNDTRIP: SimTime = SimTime::from_ns(79_910);

// ---------------------------------------------------------------------------
// HAM framework costs (Fig. 9, §V-A)
// ---------------------------------------------------------------------------

/// Target end-to-end cost of an empty offload over the DMA backend
/// (Fig. 9): 6.1 µs — "only 5 µs of framework overhead on top of the
/// 1.2 µs PCIe round-trip time".
pub const DMA_OFFLOAD_TARGET: SimTime = SimTime::from_ns(6_100);

/// Host-side per-message framework cost: functor serialisation, buffer
/// bookkeeping, future creation.
pub const HAM_HOST_OVERHEAD: SimTime = SimTime::from_ns(700);

/// Target-side per-message framework cost: handler-key lookup, functor
/// deserialisation and invocation, result serialisation.
pub const HAM_TARGET_OVERHEAD: SimTime = SimTime::from_ns(900);

/// Host-side cost of writing a message + flag into local (shared) memory
/// and, later, of polling/consuming the result from local memory.
pub const HAM_LOCAL_MEM_TOUCH: SimTime = SimTime::from_ns(150);

// ---------------------------------------------------------------------------
// Compute rates (Table I)
// ---------------------------------------------------------------------------

/// Sustained fraction of peak a well-vectorised kernel achieves; applied
/// to both sides so the VE/VH speedup matches the Table I peak ratio.
pub const SUSTAINED_EFFICIENCY: f64 = 0.5;

/// VE sustained compute rate: Table I peak (2150.4 GFLOPS) x efficiency.
pub const VE_SUSTAINED_GFLOPS: f64 = 2150.4 * SUSTAINED_EFFICIENCY;

/// VH sustained compute rate: Table I peak (998.4 GFLOPS) x efficiency.
pub const VH_SUSTAINED_GFLOPS: f64 = 998.4 * SUSTAINED_EFFICIENCY;

/// Virtual compute time of `flops` on the VE.
pub fn ve_compute_time(flops: u64) -> SimTime {
    SimTime::from_secs_f64(flops as f64 / (VE_SUSTAINED_GFLOPS * 1e9))
}

/// Virtual compute time of `flops` on the VH.
pub fn vh_compute_time(flops: u64) -> SimTime {
    SimTime::from_secs_f64(flops as f64 / (VH_SUSTAINED_GFLOPS * 1e9))
}

// ---------------------------------------------------------------------------
// Local memories (Table I)
// ---------------------------------------------------------------------------

/// VE HBM2: 1228.8 GB/s ≈ 1144 GiB/s (Table I), ~150 ns latency.
pub fn hbm2() -> LinkModel {
    LinkModel::new(SimTime::from_ns(150), 1144.4)
}

/// VH DDR4: 128 GB/s ≈ 119 GiB/s per socket (Table I), ~90 ns latency.
pub fn ddr4() -> LinkModel {
    LinkModel::new(SimTime::from_ns(90), 119.2)
}

// ---------------------------------------------------------------------------
// Benchmark methodology (§V)
// ---------------------------------------------------------------------------

/// Offload-cost repetitions used by the paper: 10⁶ (§V). The simulator is
/// deterministic, so the repro binaries default to fewer but accept the
/// paper's count.
pub const PAPER_OFFLOAD_REPS: u64 = 1_000_000;

/// Data-transfer repetitions per size used by the paper: 10³ (§V).
pub const PAPER_TRANSFER_REPS: u64 = 1_000;

/// Warm-up iterations before timing (§V).
pub const PAPER_WARMUP: u64 = 10;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::gib_per_sec;

    const US: f64 = 1.0; // readability for literals below

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs()
    }

    #[test]
    fn fig9_component_sum_matches_432us() {
        // HAM over VEO: write msg + write flag + read flag + read result.
        let total = VEO_WRITE_BASE + VEO_WRITE_BASE + VEO_READ_BASE + VEO_READ_BASE;
        assert!(
            close(total.as_us_f64(), 432.0 * US, 0.01),
            "HAM/VEO = {total}"
        );
        // Ratios of Fig. 9.
        let veo = VEO_CALL_ROUNDTRIP.as_us_f64();
        assert!(close(total.as_us_f64() / veo, 5.4, 0.02));
        assert!(close(veo / 6.1, 13.1, 0.02));
        assert!(close(total.as_us_f64() / 6.1, 70.8, 0.02));
    }

    #[test]
    fn shm_claims() {
        let shm = shm_stream();
        let udma_small = UDMA_SETUP.as_ns_f64(); // wire time of 8..256 B is negligible
        let one = shm.transfer_time(1).as_ns_f64();
        let w32 = shm.transfer_time(32).as_ns_f64();
        // §V-B: "89 % faster transfer times for a single word"
        assert!(close(1.0 - one / udma_small, 0.89, 0.02), "one = {one}");
        // "... down to 16 % for 256 Byte"
        assert!(close(1.0 - w32 / udma_small, 0.16, 0.05), "w32 = {w32}");
        // Beyond 256 B user DMA wins (crossover at max payload).
        let w64 = shm.transfer_time(64).as_ns_f64();
        assert!(w64 > udma_small);
        // Table IV: SHM max 0.06 GiB/s (large transfers).
        let big_words = (4u64 << 20) / 8;
        let bw = gib_per_sec(4 << 20, shm.transfer_time(big_words));
        assert!(close(bw, 0.06, 0.08), "shm bw = {bw}");
    }

    #[test]
    fn lhm_claims() {
        // Table IV: LHM 0.01 GiB/s.
        let bw = gib_per_sec(4 << 20, LHM_WORD * ((4u64 << 20) / 8));
        assert!(close(bw, 0.01, 0.08), "lhm bw = {bw}");
        // §V-B: faster than user DMA only for one or two words.
        assert!((LHM_WORD * 2).as_ns_f64() <= UDMA_SETUP.as_ns_f64());
        assert!((LHM_WORD * 3).as_ns_f64() > UDMA_SETUP.as_ns_f64());
    }

    #[test]
    fn table4_veo_and_udma_peaks() {
        let big = 256u64 << 20;
        let w = veo_transfer(true, HUGE_PAGE_BYTES, true);
        let r = veo_transfer(false, HUGE_PAGE_BYTES, true);
        let bw_w = gib_per_sec(big, w.transfer_time(big));
        let bw_r = gib_per_sec(big, r.transfer_time(big));
        assert!(close(bw_w, 9.9, 0.02), "veo write peak = {bw_w}");
        assert!(close(bw_r, 10.4, 0.02), "veo read peak = {bw_r}");
        let bw_u_w = gib_per_sec(big, udma_vh2ve().transfer_time(big));
        let bw_u_r = gib_per_sec(big, udma_ve2vh().transfer_time(big));
        assert!(close(bw_u_w, 10.6, 0.02));
        assert!(close(bw_u_r, 11.1, 0.02));
        // §V-B: "at least 7 %" difference for large transfers,
        assert!(bw_u_w / bw_w >= 1.05);
        assert!(bw_u_r / bw_r >= 1.05);
        // and ≤ 5 % asymmetry between directions per method.
        assert!(bw_r / bw_w <= 1.055);
        assert!(bw_u_r / bw_u_w <= 1.05);
    }

    #[test]
    fn saturation_points() {
        // §V-B: user DMA close to peak already at 1 MiB; VEO needs tens of
        // MiB.
        let udma = udma_vh2ve();
        let at_1mib = gib_per_sec(1 << 20, udma.transfer_time(1 << 20));
        assert!(at_1mib / UDMA_VH2VE_GIB_S > 0.95, "udma@1MiB = {at_1mib}");
        let veo = veo_transfer(true, HUGE_PAGE_BYTES, true);
        let veo_1mib = gib_per_sec(1 << 20, veo.transfer_time(1 << 20));
        assert!(veo_1mib / VEO_WRITE_GIB_S < 0.7, "veo@1MiB = {veo_1mib}");
        let veo_64mib = gib_per_sec(64 << 20, veo.transfer_time(64 << 20));
        assert!(
            veo_64mib / VEO_WRITE_GIB_S > 0.95,
            "veo@64MiB = {veo_64mib}"
        );
    }

    #[test]
    fn classic_dma_manager_is_translation_bound() {
        let classic = veo_transfer(true, SMALL_PAGE_BYTES, false);
        let bw = gib_per_sec(256 << 20, classic.transfer_time(256 << 20));
        // 4 KiB / 2.5 µs ≈ 1.5 GiB/s: an order of magnitude below peak —
        // the motivation for the 1.3.2-4dma manager (§III-D).
        assert!(bw < 2.0, "classic bw = {bw}");
    }

    #[test]
    fn small_message_ratios_are_large() {
        // §V-B reports 24× (VH⇒VE) / 35× (VE⇒VH) advantages of user DMA
        // over VEO for small messages; our Fig.-9-exact calibration makes
        // these ~59×/~90×. Assert the inequality direction and order of
        // magnitude (see EXPERIMENTS.md).
        let ratio_w = VEO_WRITE_BASE.as_ns_f64() / UDMA_SETUP.as_ns_f64();
        let ratio_r = VEO_READ_BASE.as_ns_f64() / UDMA_SETUP.as_ns_f64();
        assert!(ratio_w > 20.0 && ratio_w < 120.0);
        assert!(ratio_r > ratio_w && ratio_r < 150.0);
    }
}
