//! Transfer cost models.
//!
//! Three building blocks cover every mechanism in the paper:
//!
//! * [`LinkModel`] — the classic `latency + size/bandwidth` model of a
//!   point-to-point link.
//! * [`SegmentedModel`] — a transfer that is chopped into fixed-size
//!   segments, each paying a per-segment overhead (PCIe TLPs with 256 B
//!   max payload, VEOS DMA descriptors, page-wise address translation).
//! * [`TransferCost`] — a fully-broken-down cost (setup + wire + per-unit
//!   overhead) so benches can report *why* a mechanism is slow.

use crate::time::{time_at_gib_per_sec, SimTime};

/// `latency + bytes / bandwidth` link model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// One-way latency paid once per transfer.
    pub latency: SimTime,
    /// Sustained bandwidth in GiB/s.
    pub gib_per_sec: f64,
}

impl LinkModel {
    /// Construct a link model.
    pub fn new(latency: SimTime, gib_per_sec: f64) -> Self {
        assert!(gib_per_sec > 0.0);
        Self {
            latency,
            gib_per_sec,
        }
    }

    /// Time to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.latency + time_at_gib_per_sec(bytes, self.gib_per_sec)
    }

    /// The wire-only (no latency) time for `bytes`.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        time_at_gib_per_sec(bytes, self.gib_per_sec)
    }
}

/// Segment-wise transfer: `setup + ceil(bytes/segment) * per_segment +
/// bytes / bandwidth`.
///
/// Degenerates to [`LinkModel`] when `per_segment` is zero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentedModel {
    /// One-time setup cost.
    pub setup: SimTime,
    /// Segment size in bytes (e.g. 256 B PCIe TLP payload, 64 KiB DMA
    /// descriptor, 2 MiB huge page).
    pub segment_bytes: u64,
    /// Overhead paid per segment.
    pub per_segment: SimTime,
    /// Streaming bandwidth in GiB/s for the payload itself.
    pub gib_per_sec: f64,
}

impl SegmentedModel {
    /// Number of segments a transfer of `bytes` needs (at least one for a
    /// non-empty transfer).
    pub fn segments(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.segment_bytes)
        }
    }

    /// Total time to move `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        self.setup
            + self.per_segment * self.segments(bytes)
            + time_at_gib_per_sec(bytes, self.gib_per_sec)
    }

    /// Cost breakdown for reporting.
    pub fn cost(&self, bytes: u64) -> TransferCost {
        TransferCost {
            setup: self.setup,
            per_unit: self.per_segment * self.segments(bytes),
            wire: time_at_gib_per_sec(bytes, self.gib_per_sec),
        }
    }
}

/// A transfer cost broken into the three terms benches report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferCost {
    /// Fixed setup (software path, engine programming, syscall hops).
    pub setup: SimTime,
    /// Sum of per-segment / per-page / per-descriptor overheads.
    pub per_unit: SimTime,
    /// Pure wire time at the sustained rate.
    pub wire: SimTime,
}

impl TransferCost {
    /// Total duration.
    pub fn total(&self) -> SimTime {
        self.setup + self.per_unit + self.wire
    }

    /// A cost that is pure setup.
    pub fn setup_only(setup: SimTime) -> Self {
        TransferCost {
            setup,
            ..Default::default()
        }
    }
}

/// Piecewise-linear word-cost model used for the VE SHM (store host
/// memory) instruction stream: the first `window_words` stores pipeline
/// through the PCIe posted-write credits at a fast per-word cost; once the
/// credit window is exhausted the stream is throttled to a slower
/// steady-state per-word cost (§V-B: SHM wins below 256 B, tops out at
/// 0.06 GiB/s for large transfers).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstModel {
    /// Setup cost per instruction stream.
    pub setup: SimTime,
    /// Number of words that fit in the fast (credit-backed) window.
    pub window_words: u64,
    /// Per-word cost inside the window.
    pub word_fast: SimTime,
    /// Per-word cost once credits are exhausted.
    pub word_steady: SimTime,
}

impl BurstModel {
    /// Time to move `words` 64-bit words with a full credit window.
    pub fn transfer_time(&self, words: u64) -> SimTime {
        self.transfer_time_with_window(words, self.window_words)
    }

    /// Time to move `words` words when only `window` credits are
    /// available (0 after a saturating stream; see
    /// `calib::SHM_CREDIT_REPLENISH`).
    pub fn transfer_time_with_window(&self, words: u64, window: u64) -> SimTime {
        if words == 0 {
            return SimTime::ZERO;
        }
        let fast = words.min(window);
        let steady = words - fast;
        self.setup + self.word_fast * fast + self.word_steady * steady
    }

    /// Time to move `bytes`, rounded up to whole 8-byte words (the
    /// instructions move one 64-bit word at a time).
    pub fn transfer_time_bytes(&self, bytes: u64) -> SimTime {
        self.transfer_time(bytes.div_ceil(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::gib_per_sec;

    #[test]
    fn link_model_is_latency_plus_wire() {
        let m = LinkModel::new(SimTime::from_us(1), 10.0);
        let t = m.transfer_time(10 * 1024 * 1024 * 1024);
        // 10 GiB at 10 GiB/s = 1 s, plus 1 us latency.
        assert_eq!(t, SimTime::from_secs_f64(1.0) + SimTime::from_us(1));
        assert_eq!(m.wire_time(0), SimTime::ZERO);
    }

    #[test]
    fn segmented_model_counts_segments() {
        let m = SegmentedModel {
            setup: SimTime::from_ns(100),
            segment_bytes: 256,
            per_segment: SimTime::from_ns(10),
            gib_per_sec: 13.4,
        };
        assert_eq!(m.segments(0), 0);
        assert_eq!(m.segments(1), 1);
        assert_eq!(m.segments(256), 1);
        assert_eq!(m.segments(257), 2);
        let c = m.cost(512);
        assert_eq!(c.setup, SimTime::from_ns(100));
        assert_eq!(c.per_unit, SimTime::from_ns(20));
        assert_eq!(c.total(), m.transfer_time(512));
    }

    #[test]
    fn segmented_bandwidth_asymptote() {
        // With per-segment overhead, large-transfer bandwidth approaches
        // 1 / (1/bw + per_segment/segment_bytes).
        let m = SegmentedModel {
            setup: SimTime::from_us(80),
            segment_bytes: 64 * 1024,
            per_segment: SimTime::from_ns(500),
            gib_per_sec: 13.4,
        };
        let big = 256u64 << 20;
        let bw = gib_per_sec(big, m.transfer_time(big));
        assert!(bw < 13.4);
        assert!(bw > 10.0, "bw = {bw}");
    }

    #[test]
    fn burst_model_two_regimes() {
        let m = BurstModel {
            setup: SimTime::from_ns(126),
            window_words: 32,
            word_fast: SimTime::from_ps(34_000),
            word_steady: SimTime::from_ps(124_000),
        };
        assert_eq!(m.transfer_time(0), SimTime::ZERO);
        // 1 word: setup + fast word.
        assert_eq!(m.transfer_time(1), SimTime::from_ps(126_000 + 34_000));
        // 33 words: 32 fast + 1 steady.
        assert_eq!(
            m.transfer_time(33),
            SimTime::from_ps(126_000 + 32 * 34_000 + 124_000)
        );
        // bytes are rounded up to words.
        assert_eq!(m.transfer_time_bytes(9), m.transfer_time(2));
    }
}
