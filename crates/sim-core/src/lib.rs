//! # aurora-sim-core
//!
//! Foundation of the simulated NEC SX-Aurora TSUBASA platform: a virtual
//! time base, per-process logical clocks, shared hardware-resource
//! timelines, transfer cost models, calibration constants derived from the
//! paper, and measurement statistics.
//!
//! ## Why virtual time?
//!
//! The paper evaluates *latencies* (Fig. 9) and *bandwidths* (Fig. 10,
//! Table IV) of communication mechanisms that only exist on real SX-Aurora
//! hardware. The reproduction executes every protocol for real (threads,
//! atomics, memcpys) but accounts the *duration* of each simulated hardware
//! operation on a virtual time base with picosecond resolution. Virtual
//! durations compose along the protocol's critical path exactly like a
//! conservative parallel discrete-event simulation: every message carries
//! the virtual timestamp at which it becomes visible, and a receiver joins
//! that timestamp into its own clock (`Clock::join`).
//!
//! This makes the reported numbers deterministic — independent of host OS
//! scheduling — while the code paths remain genuinely concurrent.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod calib;
pub mod clock;
pub mod fault;
pub mod metrics;
pub mod model;
pub mod resource;
pub mod rng;
pub mod slo;
pub mod stats;
pub mod time;
pub mod trace;

pub use aurora_telemetry::{
    HealthEvent, HealthEventKind, HealthRegistry, TargetState, HISTOGRAM_BUCKETS,
};
pub use clock::Clock;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultSite};
pub use metrics::{
    BackendMetrics, LaneMetricsSnapshot, LaneStats, MetricsSnapshot, NodeMetricsSnapshot,
};
pub use model::{LinkModel, SegmentedModel, TransferCost};
pub use resource::Timeline;
pub use slo::{SloReport, SloSpec};
pub use stats::{Histogram, OnlineStats, Sampler};
pub use time::SimTime;
