//! Measurement statistics for the benchmark harness.
//!
//! Mirrors the paper's methodology (§V): repeated measurements with
//! warm-up, reported as averages; we additionally keep min/max/stddev,
//! percentiles and log₂ histograms because a reproduction should expose
//! its variance.

use crate::time::SimTime;

/// Numerically stable online mean/variance (Welford) plus min/max.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            ..Default::default()
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration in nanoseconds.
    pub fn record_time(&mut self, t: SimTime) {
        self.record(t.as_ns_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 if < 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest sample (`NaN` if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (`NaN` if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Sample reservoir with exact percentiles (sorts on demand).
#[derive(Clone, Debug, Default)]
pub struct Sampler {
    samples: Vec<f64>,
}

impl Sampler {
    /// Empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocate for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n),
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Record a duration in nanoseconds.
    pub fn record_time(&mut self, t: SimTime) {
        self.record(t.as_ns_f64());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact percentile `p` in [0, 100] via nearest-rank on a sorted copy.
    /// `NaN` if empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).floor() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Arithmetic mean (`NaN` if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }
}

/// Log₂-bucketed histogram of durations, for latency distributions.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))` picoseconds.
    buckets: Vec<u64>,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram (64 buckets cover the whole `u64` ps range).
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 64],
            count: 0,
        }
    }

    /// Record a duration.
    pub fn record(&mut self, t: SimTime) {
        let ps = t.as_ps();
        let idx = if ps == 0 {
            0
        } else {
            63 - ps.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// A histogram from a plain bucket array (e.g. an
    /// `AtomicHistogram` snapshot).
    pub fn from_buckets(buckets: [u64; 64]) -> Self {
        Self {
            count: buckets.iter().sum(),
            buckets: buckets.to_vec(),
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The raw buckets (`buckets[i]` counts `[2^i, 2^(i+1))` ps).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Nearest-rank percentile `p` in [0, 100], resolved to the
    /// *floor* of the bucket the rank lands in (log₂ resolution).
    /// `None` if empty.
    pub fn percentile(&self, p: f64) -> Option<SimTime> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(SimTime::from_ps(1u64 << i));
            }
        }
        // p > 100 lands past the last sample; report the top bucket.
        self.nonzero().last().map(|(floor, _)| floor)
    }

    /// Add another histogram's counts into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
    }

    /// Iterate non-empty buckets as `(bucket_floor, count)`.
    pub fn nonzero(&self) -> impl Iterator<Item = (SimTime, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (SimTime::from_ps(1u64 << i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..37].iter().for_each(|&x| a.record(x));
        xs[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn empty_stats_are_nan_or_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn sampler_percentiles() {
        let mut s = Sampler::new();
        for i in 1..=100 {
            s.record(i as f64);
        }
        assert_eq!(s.median(), 50.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
        assert!(Sampler::new().median().is_nan());
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(SimTime::from_ps(1));
        h.record(SimTime::from_ps(3));
        h.record(SimTime::from_ps(1024));
        h.record(SimTime::ZERO);
        assert_eq!(h.count(), 4);
        let buckets: Vec<_> = h.nonzero().collect();
        assert!(buckets.contains(&(SimTime::from_ps(1), 2))); // 0 and 1
        assert!(buckets.contains(&(SimTime::from_ps(2), 1))); // 3
        assert!(buckets.contains(&(SimTime::from_ps(1024), 1)));
    }

    #[test]
    fn histogram_percentiles_are_bucket_floors() {
        let mut h = Histogram::new();
        // 90 samples in bucket 10 (1024 ps), 10 in bucket 20.
        for _ in 0..90 {
            h.record(SimTime::from_ps(1500));
        }
        for _ in 0..10 {
            h.record(SimTime::from_ps(1 << 20));
        }
        assert_eq!(h.percentile(50.0), Some(SimTime::from_ps(1 << 10)));
        assert_eq!(h.percentile(90.0), Some(SimTime::from_ps(1 << 10)));
        assert_eq!(h.percentile(99.0), Some(SimTime::from_ps(1 << 20)));
        assert_eq!(h.percentile(100.0), Some(SimTime::from_ps(1 << 20)));
        assert_eq!(Histogram::new().percentile(50.0), None);
    }

    #[test]
    fn histogram_from_buckets_and_merge() {
        let mut buckets = [0u64; 64];
        buckets[3] = 5;
        buckets[63] = 1;
        let h = Histogram::from_buckets(buckets);
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets()[3], 5);

        let mut a = Histogram::new();
        a.record(SimTime::from_ps(8));
        a.merge(&h);
        assert_eq!(a.count(), 7);
        assert_eq!(a.buckets()[3], 6);
        assert_eq!(a.buckets()[63], 1);
    }

    #[test]
    fn sampler_record_time_uses_ns() {
        let mut s = Sampler::new();
        s.record_time(SimTime::from_us(1));
        assert_eq!(s.mean(), 1000.0);
    }
}
