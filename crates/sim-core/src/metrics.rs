//! Per-backend metric registers.
//!
//! Every communication backend owns a [`BackendMetrics`]; the offload
//! runtime bumps it on the paper's API operations (post, poll, put/get,
//! allocate/free), so all four backends are measured identically and for
//! free — counters are single relaxed atomics (see
//! [`aurora_telemetry::metrics`]) and stay on even when no trace session
//! is recording. [`BackendMetrics::snapshot`] returns a plain-data
//! [`MetricsSnapshot`] with derived statistics (offload latency
//! mean/stddev and a log₂ histogram, payload size distribution).

use crate::stats::{Histogram, OnlineStats};
use crate::time::SimTime;
use aurora_telemetry::{Counter, Gauge};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Live metric registers of one backend instance.
#[derive(Debug)]
pub struct BackendMetrics {
    posts: Counter,
    frames: Counter,
    msgs: Counter,
    polls: Counter,
    retries: Counter,
    resends: Counter,
    timeouts: Counter,
    evictions: Counter,
    completions: Counter,
    puts: Counter,
    gets: Counter,
    bytes_put: Counter,
    bytes_get: Counter,
    allocs: Counter,
    frees: Counter,
    /// Offloads posted but not yet completed.
    inflight: Gauge,
    /// Bytes currently allocated on targets via `allocate`.
    alloc_live: Gauge,
    payload: Mutex<OnlineStats>,
    batch_occupancy: Mutex<OnlineStats>,
    latency: Mutex<OnlineStats>,
    latency_hist: Mutex<Histogram>,
    /// Per-target EWMA of completion latency (ns) — feeds the
    /// scheduler's `WeightedByLatency` policy.
    node_latency: Mutex<HashMap<u16, f64>>,
    /// `(node, addr) → bytes`, to credit frees against the live gauge.
    allocations: Mutex<HashMap<(u16, u64), u64>>,
}

/// Smoothing factor of the per-node latency EWMA: each completion moves
/// the estimate 20% toward the new sample.
const LATENCY_EWMA_ALPHA: f64 = 0.2;

impl Default for BackendMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl BackendMetrics {
    /// Zeroed registers.
    pub fn new() -> Self {
        BackendMetrics {
            posts: Counter::new(),
            frames: Counter::new(),
            msgs: Counter::new(),
            polls: Counter::new(),
            retries: Counter::new(),
            resends: Counter::new(),
            timeouts: Counter::new(),
            evictions: Counter::new(),
            completions: Counter::new(),
            puts: Counter::new(),
            gets: Counter::new(),
            bytes_put: Counter::new(),
            bytes_get: Counter::new(),
            allocs: Counter::new(),
            frees: Counter::new(),
            inflight: Gauge::new(),
            alloc_live: Gauge::new(),
            payload: Mutex::new(OnlineStats::new()),
            batch_occupancy: Mutex::new(OnlineStats::new()),
            latency: Mutex::new(OnlineStats::new()),
            latency_hist: Mutex::new(Histogram::new()),
            node_latency: Mutex::new(HashMap::new()),
            allocations: Mutex::new(HashMap::new()),
        }
    }

    /// An offload message of `payload_bytes` was posted.
    pub fn on_post(&self, payload_bytes: u64) {
        self.posts.incr();
        self.inflight.add(1);
        self.payload.lock().record(payload_bytes as f64);
    }

    /// One wire frame carrying `msgs` offload messages went onto the
    /// transport (`msgs == 1` for an unbatched post, the batch size for
    /// a coalesced envelope). The frames/msgs ratio is the transport
    /// transaction saving batching buys.
    pub fn on_frame(&self, msgs: u64) {
        self.frames.incr();
        self.msgs.add(msgs);
        self.batch_occupancy.lock().record(msgs as f64);
    }

    /// The host polled a future; `ready` tells whether the result had
    /// arrived (a miss counts as a retry).
    pub fn on_poll(&self, ready: bool) {
        self.polls.incr();
        if !ready {
            self.retries.incr();
        }
    }

    /// The recovery policy re-sent an in-flight frame whose completion
    /// flag stayed cold past its deadline.
    pub fn on_resend(&self) {
        self.resends.incr();
    }

    /// An offload was failed with `OffloadError::Timeout` after its
    /// bounded retries were exhausted.
    pub fn on_timeout(&self) {
        self.timeouts.incr();
    }

    /// A target was evicted: its channel failed every in-flight offload
    /// and refuses new posts.
    pub fn on_evict(&self) {
        self.evictions.incr();
    }

    /// An offload completed after `latency` of virtual time post→result.
    pub fn on_complete(&self, latency: SimTime) {
        self.completions.incr();
        self.inflight.add(-1);
        self.latency.lock().record_time(latency);
        self.latency_hist.lock().record(latency);
    }

    /// [`Self::on_complete`] attributed to the target `node` that served
    /// the offload — also updates the per-node latency EWMA the
    /// scheduler's latency-weighted policy reads.
    pub fn on_complete_on(&self, node: u16, latency: SimTime) {
        self.on_complete(latency);
        let sample = latency.as_ns_f64();
        let mut map = self.node_latency.lock();
        map.entry(node)
            .and_modify(|e| *e += LATENCY_EWMA_ALPHA * (sample - *e))
            .or_insert(sample);
    }

    /// The EWMA completion latency (ns) of offloads served by `node`,
    /// or `None` before its first completion.
    pub fn latency_ewma(&self, node: u16) -> Option<f64> {
        self.node_latency.lock().get(&node).copied()
    }

    /// `put` moved `bytes` host → target.
    pub fn on_put(&self, bytes: u64) {
        self.puts.incr();
        self.bytes_put.add(bytes);
    }

    /// `get` moved `bytes` target → host.
    pub fn on_get(&self, bytes: u64) {
        self.gets.incr();
        self.bytes_get.add(bytes);
    }

    /// `allocate` reserved `bytes` at `(node, addr)`.
    pub fn on_alloc(&self, node: u16, addr: u64, bytes: u64) {
        self.allocs.incr();
        self.alloc_live.add(bytes as i64);
        self.allocations.lock().insert((node, addr), bytes);
    }

    /// `free` released the buffer at `(node, addr)`.
    pub fn on_free(&self, node: u16, addr: u64) {
        self.frees.incr();
        if let Some(bytes) = self.allocations.lock().remove(&(node, addr)) {
            self.alloc_live.add(-(bytes as i64));
        }
    }

    /// Copy the registers into a plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            posts: self.posts.get(),
            frames_sent: self.frames.get(),
            msgs_sent: self.msgs.get(),
            polls: self.polls.get(),
            retries: self.retries.get(),
            resends: self.resends.get(),
            timeouts: self.timeouts.get(),
            evictions: self.evictions.get(),
            completions: self.completions.get(),
            puts: self.puts.get(),
            gets: self.gets.get(),
            bytes_put: self.bytes_put.get(),
            bytes_get: self.bytes_get.get(),
            allocs: self.allocs.get(),
            frees: self.frees.get(),
            inflight: self.inflight.get(),
            inflight_peak: self.inflight.peak(),
            alloc_bytes_live: self.alloc_live.get(),
            alloc_bytes_peak: self.alloc_live.peak(),
            payload_bytes: self.payload.lock().clone(),
            batch_occupancy: self.batch_occupancy.lock().clone(),
            latency: self.latency.lock().clone(),
            latency_hist: self.latency_hist.lock().clone(),
            node_latency_ewma: {
                let mut v: Vec<(u16, f64)> = self
                    .node_latency
                    .lock()
                    .iter()
                    .map(|(n, e)| (*n, *e))
                    .collect();
                v.sort_unstable_by_key(|(n, _)| *n);
                v
            },
        }
    }
}

/// Point-in-time copy of a backend's metrics.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Offload messages posted.
    pub posts: u64,
    /// Wire frames put on the transport (batch envelopes count once).
    pub frames_sent: u64,
    /// Offload messages those frames carried (`== frames_sent` with
    /// batching off; the `msgs_sent / frames_sent` ratio is the
    /// transaction saving with it on).
    pub msgs_sent: u64,
    /// Future polls (`test()` calls reaching the backend).
    pub polls: u64,
    /// Polls that found no result yet.
    pub retries: u64,
    /// Frames re-sent by the recovery policy (deadline passed).
    pub resends: u64,
    /// Offloads failed with `Timeout` (bounded retries exhausted).
    pub timeouts: u64,
    /// Targets evicted after transport death.
    pub evictions: u64,
    /// Offloads whose result was consumed.
    pub completions: u64,
    /// `put` operations.
    pub puts: u64,
    /// `get` operations.
    pub gets: u64,
    /// Total bytes moved host → target by `put`.
    pub bytes_put: u64,
    /// Total bytes moved target → host by `get`.
    pub bytes_get: u64,
    /// `allocate` calls.
    pub allocs: u64,
    /// `free` calls.
    pub frees: u64,
    /// Offloads currently in flight.
    pub inflight: i64,
    /// Highest concurrent in-flight count observed.
    pub inflight_peak: i64,
    /// Bytes currently allocated on targets.
    pub alloc_bytes_live: i64,
    /// Highest live allocation level observed.
    pub alloc_bytes_peak: i64,
    /// Distribution of posted payload sizes (bytes).
    pub payload_bytes: OnlineStats,
    /// Distribution of messages per sent frame (all 1s with batching
    /// off).
    pub batch_occupancy: OnlineStats,
    /// Offload latency distribution (recorded in nanoseconds).
    pub latency: OnlineStats,
    /// Log₂ histogram of offload latencies.
    pub latency_hist: Histogram,
    /// Per-target latency EWMA (ns), sorted by node id. Not rendered —
    /// scheduler food, surfaced here for tests and tooling.
    pub node_latency_ewma: Vec<(u16, f64)>,
}

impl MetricsSnapshot {
    /// Aligned text rendering for reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| out.push_str(&format!("{k:<22} {v}\n"));
        line("posts", self.posts.to_string());
        // Only interesting when batching actually coalesced something;
        // keeping quiet otherwise preserves the unbatched reports
        // byte-for-byte.
        if self.msgs_sent > self.frames_sent {
            line(
                "frames (msgs/frame)",
                format!("{} ({:.2})", self.frames_sent, self.batch_occupancy.mean()),
            );
        }
        line("polls", self.polls.to_string());
        line("retries", self.retries.to_string());
        if self.resends + self.timeouts + self.evictions > 0 {
            line(
                "recovery (resend/timeout/evict)",
                format!("{}/{}/{}", self.resends, self.timeouts, self.evictions),
            );
        }
        line("completions", self.completions.to_string());
        line(
            "inflight (now/peak)",
            format!("{}/{}", self.inflight, self.inflight_peak),
        );
        line("puts", format!("{} ({} bytes)", self.puts, self.bytes_put));
        line("gets", format!("{} ({} bytes)", self.gets, self.bytes_get));
        line("allocs/frees", format!("{}/{}", self.allocs, self.frees));
        line(
            "alloc bytes (now/peak)",
            format!("{}/{}", self.alloc_bytes_live, self.alloc_bytes_peak),
        );
        if self.payload_bytes.count() > 0 {
            line(
                "payload bytes",
                format!(
                    "mean {:.1} min {:.0} max {:.0}",
                    self.payload_bytes.mean(),
                    self.payload_bytes.min(),
                    self.payload_bytes.max()
                ),
            );
        }
        if self.latency.count() > 0 {
            line(
                "offload latency",
                format!(
                    "mean {:.3} us (sd {:.3}, min {:.3}, max {:.3})",
                    self.latency.mean() / 1e3,
                    self.latency.stddev() / 1e3,
                    self.latency.min() / 1e3,
                    self.latency.max() / 1e3
                ),
            );
            for (floor, count) in self.latency_hist.nonzero() {
                line(&format!("  latency ≥ {floor}"), count.to_string());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = BackendMetrics::new();
        m.on_post(100);
        m.on_post(300);
        m.on_poll(false);
        m.on_poll(true);
        m.on_complete(SimTime::from_us(6));
        let s = m.snapshot();
        assert_eq!(s.posts, 2);
        assert_eq!(s.polls, 2);
        assert_eq!(s.retries, 1);
        assert_eq!(s.completions, 1);
        assert_eq!(s.inflight, 1);
        assert_eq!(s.inflight_peak, 2);
        assert_eq!(s.payload_bytes.count(), 2);
        assert!((s.payload_bytes.mean() - 200.0).abs() < 1e-9);
        assert_eq!(s.latency_hist.count(), 1);
    }

    #[test]
    fn allocation_gauge_credits_frees() {
        let m = BackendMetrics::new();
        m.on_alloc(1, 0x1000, 512);
        m.on_alloc(1, 0x2000, 256);
        m.on_free(1, 0x1000);
        // Double free of an unknown address must not underflow.
        m.on_free(1, 0x1000);
        let s = m.snapshot();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.alloc_bytes_live, 256);
        assert_eq!(s.alloc_bytes_peak, 768);
    }

    #[test]
    fn transfer_bytes_totalled() {
        let m = BackendMetrics::new();
        m.on_put(1024);
        m.on_put(1024);
        m.on_get(64);
        let s = m.snapshot();
        assert_eq!(s.puts, 2);
        assert_eq!(s.bytes_put, 2048);
        assert_eq!(s.gets, 1);
        assert_eq!(s.bytes_get, 64);
    }

    #[test]
    fn frame_counters_track_batching() {
        let m = BackendMetrics::new();
        m.on_frame(1);
        // Unbatched traffic: frames == msgs, render stays silent.
        let s = m.snapshot();
        assert_eq!((s.frames_sent, s.msgs_sent), (1, 1));
        assert!(!s.render().contains("frames"), "{}", s.render());
        // A coalesced envelope of 8 shows up.
        m.on_frame(8);
        let s = m.snapshot();
        assert_eq!((s.frames_sent, s.msgs_sent), (2, 9));
        assert!((s.batch_occupancy.mean() - 4.5).abs() < 1e-9);
        assert!(s.render().contains("frames (msgs/frame)"));
    }

    #[test]
    fn node_latency_ewma_converges_per_target() {
        let m = BackendMetrics::new();
        assert_eq!(m.latency_ewma(1), None, "no completions yet");
        m.on_post(8);
        m.on_complete_on(1, SimTime::from_us(10));
        assert!(
            (m.latency_ewma(1).unwrap() - 10_000.0).abs() < 1e-9,
            "first sample seeds"
        );
        m.on_post(8);
        m.on_complete_on(1, SimTime::from_us(20));
        // 10000 + 0.2·(20000 − 10000) = 12000.
        assert!((m.latency_ewma(1).unwrap() - 12_000.0).abs() < 1e-9);
        m.on_post(8);
        m.on_complete_on(2, SimTime::from_us(5));
        assert!((m.latency_ewma(2).unwrap() - 5_000.0).abs() < 1e-9);
        let s = m.snapshot();
        assert_eq!(s.completions, 3, "on_complete_on feeds the totals too");
        assert_eq!(s.node_latency_ewma.len(), 2);
        assert_eq!(s.node_latency_ewma[0].0, 1);
        assert_eq!(s.node_latency_ewma[1].0, 2);
        // The per-node vector is scheduler food, not report noise.
        assert!(!s.render().contains("ewma"));
    }

    #[test]
    fn render_mentions_key_registers() {
        let m = BackendMetrics::new();
        m.on_post(64);
        m.on_complete(SimTime::from_us(6));
        let text = m.snapshot().render();
        assert!(text.contains("posts"));
        assert!(text.contains("offload latency"));
        assert!(
            text.contains("6.000 us") || text.contains("mean 6.000"),
            "{text}"
        );
    }
}
