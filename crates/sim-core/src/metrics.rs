//! Per-backend metric registers.
//!
//! Every communication backend owns a [`BackendMetrics`]; the offload
//! runtime bumps it on the paper's API operations (post, poll, put/get,
//! allocate/free), so all four backends are measured identically and for
//! free — counters are single relaxed atomics (see
//! [`aurora_telemetry::metrics`]) and stay on even when no trace session
//! is recording. The latency registers are always-on lock-free log₂
//! histograms ([`aurora_telemetry::AtomicHistogram`]): offload
//! completion latency (aggregate and per target), batch flush latency,
//! and retry/backoff delay, all in virtual time. Each backend also owns
//! a [`HealthRegistry`] its targets register with.
//!
//! [`BackendMetrics::snapshot`] returns a plain-data [`MetricsSnapshot`]
//! with derived statistics, renderable as text ([`MetricsSnapshot::render`]),
//! Prometheus exposition text ([`MetricsSnapshot::to_prometheus_text`]) or
//! JSON ([`MetricsSnapshot::to_json`]).

use crate::stats::{Histogram, OnlineStats};
use crate::time::SimTime;
use aurora_telemetry::{AtomicHistogram, Counter, Gauge, HealthRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Targets that get their own completion-latency register. Node ids at
/// or past the cap share the last register — harmless for this
/// simulation (at most 8 VEs + the host) and it keeps the hot path a
/// bounds-checked array index instead of a map lookup.
pub const MAX_TRACKED_NODES: usize = 64;

/// Device worker lanes that get their own occupancy register. Lane ids
/// at or past the cap share the last register (the VE has 8 cores, so
/// this never triggers in practice).
pub const MAX_TRACKED_LANES: usize = 16;

/// Smoothing factor of the per-node latency EWMA: each completion moves
/// the estimate 20% toward the new sample.
const LATENCY_EWMA_ALPHA: f64 = 0.2;

/// Sentinel bit pattern for "no EWMA sample yet". The pattern is a NaN,
/// which an EWMA of finite samples can never produce.
const EWMA_UNSET: u64 = u64::MAX;

/// Per-target completion-latency register: log₂ histogram, EWMA and
/// completion count, all lock-free and preallocated so the warm
/// completion path never touches the heap.
#[derive(Debug)]
struct NodeRegister {
    hist: AtomicHistogram,
    /// `f64` bits of the EWMA in ns; [`EWMA_UNSET`] before the first
    /// sample.
    ewma_bits: AtomicU64,
    completions: Counter,
}

impl NodeRegister {
    const fn new() -> Self {
        NodeRegister {
            hist: AtomicHistogram::new(),
            ewma_bits: AtomicU64::new(EWMA_UNSET),
            completions: Counter::new(),
        }
    }

    #[inline]
    fn record(&self, latency: SimTime) {
        self.hist.record_ps(latency.as_ps());
        self.completions.incr();
        let sample = latency.as_ns_f64();
        let mut cur = self.ewma_bits.load(Ordering::Relaxed);
        loop {
            let next = if cur == EWMA_UNSET {
                sample // first sample seeds the estimate
            } else {
                let e = f64::from_bits(cur);
                e + LATENCY_EWMA_ALPHA * (sample - e)
            };
            match self.ewma_bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn ewma(&self) -> Option<f64> {
        let bits = self.ewma_bits.load(Ordering::Relaxed);
        (bits != EWMA_UNSET).then(|| f64::from_bits(bits))
    }
}

/// Per-lane occupancy registers of the device runtimes behind one
/// backend: work items executed and virtual busy time per lane, plus
/// the cross-lane steal count. Shared with the target side via `Arc`
/// (the same pattern as the health registry) because device loops run
/// on their own threads.
#[derive(Debug)]
pub struct LaneStats {
    tasks: Vec<Counter>,
    busy_ps: Vec<Counter>,
    steals: Counter,
}

impl Default for LaneStats {
    fn default() -> Self {
        Self::new()
    }
}

impl LaneStats {
    /// Zeroed lane registers.
    pub fn new() -> Self {
        LaneStats {
            tasks: (0..MAX_TRACKED_LANES).map(|_| Counter::new()).collect(),
            busy_ps: (0..MAX_TRACKED_LANES).map(|_| Counter::new()).collect(),
            steals: Counter::new(),
        }
    }

    #[inline]
    fn idx(lane: usize) -> usize {
        lane.min(MAX_TRACKED_LANES - 1)
    }

    /// `lane` executed one work item of `busy_ps` virtual compute.
    #[inline]
    pub fn on_task(&self, lane: usize, busy_ps: u64) {
        let i = Self::idx(lane);
        self.tasks[i].incr();
        self.busy_ps[i].add(busy_ps);
    }

    /// An idle lane took a work item from another lane's deque.
    #[inline]
    pub fn on_steal(&self) {
        self.steals.incr();
    }

    /// Total cross-lane steals.
    pub fn steals(&self) -> u64 {
        self.steals.get()
    }

    /// Work items executed by `lane`.
    pub fn tasks(&self, lane: usize) -> u64 {
        self.tasks[Self::idx(lane)].get()
    }

    /// Per-lane `(tasks, busy_ps)`, trimmed to the last active lane.
    pub fn per_lane(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self
            .tasks
            .iter()
            .zip(&self.busy_ps)
            .map(|(t, b)| (t.get(), b.get()))
            .collect();
        while v.last() == Some(&(0, 0)) {
            v.pop();
        }
        v
    }
}

/// Live metric registers of one backend instance.
#[derive(Debug)]
pub struct BackendMetrics {
    posts: Counter,
    frames: Counter,
    msgs: Counter,
    polls: Counter,
    retries: Counter,
    resends: Counter,
    timeouts: Counter,
    evictions: Counter,
    reconnect_attempts: Counter,
    reconnects: Counter,
    replayed: Counter,
    /// Background liveness probes that answered.
    probes: Counter,
    /// Background liveness probes that went unanswered.
    probe_misses: Counter,
    /// Targets added to a running pool's membership.
    member_joins: Counter,
    /// Targets removed (drained) from a running pool's membership.
    member_leaves: Counter,
    completions: Counter,
    puts: Counter,
    gets: Counter,
    bytes_put: Counter,
    bytes_get: Counter,
    allocs: Counter,
    frees: Counter,
    /// Adaptive-batching controller: widen decisions (watermark ×2).
    batch_widens: Counter,
    /// Adaptive-batching controller: narrow decisions (watermark ÷2).
    batch_narrows: Counter,
    /// Envelope flushes forced by the `slo_micros` age bound.
    batch_slo_flushes: Counter,
    /// Offloads posted but not yet completed.
    inflight: Gauge,
    /// Bytes currently allocated on targets via `allocate`.
    alloc_live: Gauge,
    payload: Mutex<OnlineStats>,
    batch_occupancy: Mutex<OnlineStats>,
    latency: Mutex<OnlineStats>,
    /// Aggregate offload completion latency (post → result, virtual
    /// time).
    latency_hist: AtomicHistogram,
    /// Batch flush latency: first stage → frame handed to the
    /// transport.
    flush_hist: AtomicHistogram,
    /// Post → recovery-policy re-send delay, one sample per re-sent
    /// frame.
    retry_hist: AtomicHistogram,
    /// Per-target completion-latency registers — the single source of
    /// truth the scheduler's `WeightedByLatency` policy reads.
    nodes: Vec<NodeRegister>,
    /// Per-target health state + structured event log.
    health: Arc<HealthRegistry>,
    /// Device-lane occupancy + steal registers, shared with the
    /// target-side runtimes.
    lanes: Arc<LaneStats>,
    /// `(node, addr) → bytes`, to credit frees against the live gauge.
    allocations: Mutex<HashMap<(u16, u64), u64>>,
}

impl Default for BackendMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl BackendMetrics {
    /// Zeroed registers.
    pub fn new() -> Self {
        BackendMetrics {
            posts: Counter::new(),
            frames: Counter::new(),
            msgs: Counter::new(),
            polls: Counter::new(),
            retries: Counter::new(),
            resends: Counter::new(),
            timeouts: Counter::new(),
            evictions: Counter::new(),
            reconnect_attempts: Counter::new(),
            reconnects: Counter::new(),
            replayed: Counter::new(),
            probes: Counter::new(),
            probe_misses: Counter::new(),
            member_joins: Counter::new(),
            member_leaves: Counter::new(),
            completions: Counter::new(),
            puts: Counter::new(),
            gets: Counter::new(),
            bytes_put: Counter::new(),
            bytes_get: Counter::new(),
            allocs: Counter::new(),
            frees: Counter::new(),
            batch_widens: Counter::new(),
            batch_narrows: Counter::new(),
            batch_slo_flushes: Counter::new(),
            inflight: Gauge::new(),
            alloc_live: Gauge::new(),
            payload: Mutex::new(OnlineStats::new()),
            batch_occupancy: Mutex::new(OnlineStats::new()),
            latency: Mutex::new(OnlineStats::new()),
            latency_hist: AtomicHistogram::new(),
            flush_hist: AtomicHistogram::new(),
            retry_hist: AtomicHistogram::new(),
            nodes: (0..MAX_TRACKED_NODES)
                .map(|_| NodeRegister::new())
                .collect(),
            health: Arc::new(HealthRegistry::new()),
            lanes: Arc::new(LaneStats::new()),
            allocations: Mutex::new(HashMap::new()),
        }
    }

    #[inline]
    fn node_register(&self, node: u16) -> &NodeRegister {
        &self.nodes[(node as usize).min(MAX_TRACKED_NODES - 1)]
    }

    /// The backend's health registry: per-target state and the
    /// structured event log. Backends register their targets here at
    /// spawn; fault paths record events.
    pub fn health(&self) -> &Arc<HealthRegistry> {
        &self.health
    }

    /// The backend's device-lane registers. Backends hand a clone to
    /// each target's `DeviceRuntime` at spawn.
    pub fn lane_stats(&self) -> &Arc<LaneStats> {
        &self.lanes
    }

    /// An offload message of `payload_bytes` was posted.
    pub fn on_post(&self, payload_bytes: u64) {
        self.posts.incr();
        self.inflight.add(1);
        self.payload.lock().record(payload_bytes as f64);
    }

    /// One wire frame carrying `msgs` offload messages went onto the
    /// transport (`msgs == 1` for an unbatched post, the batch size for
    /// a coalesced envelope). The frames/msgs ratio is the transport
    /// transaction saving batching buys.
    pub fn on_frame(&self, msgs: u64) {
        self.frames.incr();
        self.msgs.add(msgs);
        self.batch_occupancy.lock().record(msgs as f64);
    }

    /// The host polled a future; `ready` tells whether the result had
    /// arrived (a miss counts as a retry).
    pub fn on_poll(&self, ready: bool) {
        self.polls.incr();
        if !ready {
            self.retries.incr();
        }
    }

    /// The recovery policy re-sent an in-flight frame whose completion
    /// flag stayed cold past its deadline.
    pub fn on_resend(&self) {
        self.resends.incr();
    }

    /// An offload was failed with `OffloadError::Timeout` after its
    /// bounded retries were exhausted.
    pub fn on_timeout(&self) {
        self.timeouts.incr();
    }

    /// A target was evicted: its channel failed every in-flight offload
    /// and refuses new posts.
    pub fn on_evict(&self) {
        self.evictions.incr();
    }

    /// The transport tried to re-establish a dropped connection (one
    /// count per attempt, successful or not).
    pub fn on_reconnect_attempt(&self) {
        self.reconnect_attempts.incr();
    }

    /// A dropped connection was re-established and its session resumed.
    pub fn on_reconnect(&self) {
        self.reconnects.incr();
    }

    /// A session resume replayed `frames` provably-unexecuted in-flight
    /// frames onto the fresh connection.
    pub fn on_replay(&self, frames: u64) {
        self.replayed.add(frames);
    }

    /// A background liveness probe completed its ping round trip.
    pub fn on_probe(&self) {
        self.probes.incr();
    }

    /// A background liveness probe went unanswered (the target is
    /// unreachable or its link is degraded).
    pub fn on_probe_miss(&self) {
        self.probe_misses.incr();
    }

    /// A target joined a running pool's membership.
    pub fn on_member_join(&self) {
        self.member_joins.incr();
    }

    /// A target was removed (drained) from a running pool's membership.
    pub fn on_member_leave(&self) {
        self.member_leaves.incr();
    }

    /// A batch (or single-message frame) was flushed `delay` of virtual
    /// time after its first member was staged.
    pub fn on_flush(&self, delay: SimTime) {
        self.flush_hist.record_ps(delay.as_ps());
    }

    /// The adaptive controller widened a channel's batch watermark.
    pub fn on_batch_widen(&self) {
        self.batch_widens.incr();
    }

    /// The adaptive controller narrowed a channel's batch watermark.
    pub fn on_batch_narrow(&self) {
        self.batch_narrows.incr();
    }

    /// An envelope flush was forced by the `slo_micros` staged-age
    /// bound rather than a count/byte watermark.
    pub fn on_slo_flush(&self) {
        self.batch_slo_flushes.incr();
    }

    /// Raw log₂ bucket counts of the flush-latency histogram — a stack
    /// copy, allocation-free. The adaptive batching controller's tick
    /// input.
    pub fn flush_hist_buckets(&self) -> [u64; aurora_telemetry::HISTOGRAM_BUCKETS] {
        self.flush_hist.snapshot()
    }

    /// A recovery re-send fired `delay` of virtual time after the
    /// offload was posted (the retry/backoff delay distribution).
    pub fn on_retry_delay(&self, delay: SimTime) {
        self.retry_hist.record_ps(delay.as_ps());
    }

    /// An offload completed after `latency` of virtual time post→result.
    pub fn on_complete(&self, latency: SimTime) {
        self.completions.incr();
        self.inflight.add(-1);
        self.latency.lock().record_time(latency);
        self.latency_hist.record_ps(latency.as_ps());
    }

    /// [`Self::on_complete`] attributed to the target `node` that served
    /// the offload — also feeds the per-target register (histogram +
    /// EWMA) the scheduler's latency-weighted policy reads.
    pub fn on_complete_on(&self, node: u16, latency: SimTime) {
        self.on_complete(latency);
        self.node_register(node).record(latency);
    }

    /// The EWMA completion latency (ns) of offloads served by `node`,
    /// or `None` before its first completion. Derived from the same
    /// per-target register as [`MetricsSnapshot::per_node`], and
    /// lock-free.
    pub fn latency_ewma(&self, node: u16) -> Option<f64> {
        self.node_register(node).ewma()
    }

    /// `put` moved `bytes` host → target.
    pub fn on_put(&self, bytes: u64) {
        self.puts.incr();
        self.bytes_put.add(bytes);
    }

    /// `get` moved `bytes` target → host.
    pub fn on_get(&self, bytes: u64) {
        self.gets.incr();
        self.bytes_get.add(bytes);
    }

    /// `allocate` reserved `bytes` at `(node, addr)`.
    pub fn on_alloc(&self, node: u16, addr: u64, bytes: u64) {
        self.allocs.incr();
        self.alloc_live.add(bytes as i64);
        self.allocations.lock().insert((node, addr), bytes);
    }

    /// `free` released the buffer at `(node, addr)`.
    pub fn on_free(&self, node: u16, addr: u64) {
        self.frees.incr();
        if let Some(bytes) = self.allocations.lock().remove(&(node, addr)) {
            self.alloc_live.add(-(bytes as i64));
        }
    }

    /// Copy the registers into a plain-data snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let per_node: Vec<NodeMetricsSnapshot> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.completions.get() > 0)
            .map(|(n, r)| NodeMetricsSnapshot {
                node: n as u16,
                completions: r.completions.get(),
                ewma_ns: r.ewma().unwrap_or(0.0),
                latency_hist: Histogram::from_buckets(r.hist.snapshot()),
            })
            .collect();
        MetricsSnapshot {
            posts: self.posts.get(),
            frames_sent: self.frames.get(),
            msgs_sent: self.msgs.get(),
            polls: self.polls.get(),
            retries: self.retries.get(),
            resends: self.resends.get(),
            timeouts: self.timeouts.get(),
            evictions: self.evictions.get(),
            reconnect_attempts: self.reconnect_attempts.get(),
            reconnects: self.reconnects.get(),
            replayed_frames: self.replayed.get(),
            probes: self.probes.get(),
            probe_misses: self.probe_misses.get(),
            member_joins: self.member_joins.get(),
            member_leaves: self.member_leaves.get(),
            completions: self.completions.get(),
            puts: self.puts.get(),
            gets: self.gets.get(),
            bytes_put: self.bytes_put.get(),
            bytes_get: self.bytes_get.get(),
            allocs: self.allocs.get(),
            frees: self.frees.get(),
            batch_widens: self.batch_widens.get(),
            batch_narrows: self.batch_narrows.get(),
            batch_slo_flushes: self.batch_slo_flushes.get(),
            inflight: self.inflight.get(),
            inflight_peak: self.inflight.peak(),
            alloc_bytes_live: self.alloc_live.get(),
            alloc_bytes_peak: self.alloc_live.peak(),
            payload_bytes: self.payload.lock().clone(),
            batch_occupancy: self.batch_occupancy.lock().clone(),
            latency: self.latency.lock().clone(),
            latency_hist: Histogram::from_buckets(self.latency_hist.snapshot()),
            flush_hist: Histogram::from_buckets(self.flush_hist.snapshot()),
            retry_hist: Histogram::from_buckets(self.retry_hist.snapshot()),
            node_latency_ewma: per_node.iter().map(|n| (n.node, n.ewma_ns)).collect(),
            per_node,
            lanes: self
                .lanes
                .per_lane()
                .into_iter()
                .enumerate()
                .map(|(i, (tasks, busy_ps))| LaneMetricsSnapshot {
                    lane: i as u16,
                    tasks,
                    busy_ps,
                })
                .collect(),
            steals: self.lanes.steals(),
        }
    }
}

/// One device lane's slice of a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct LaneMetricsSnapshot {
    /// The lane index (0-based simulated VE core).
    pub lane: u16,
    /// Work items this lane executed.
    pub tasks: u64,
    /// Virtual compute time this lane accumulated (ps).
    pub busy_ps: u64,
}

/// One target's slice of a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub struct NodeMetricsSnapshot {
    /// The target node.
    pub node: u16,
    /// Offloads this target completed.
    pub completions: u64,
    /// EWMA completion latency (ns).
    pub ewma_ns: f64,
    /// Log₂ histogram of this target's completion latencies.
    pub latency_hist: Histogram,
}

/// Point-in-time copy of a backend's metrics.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Offload messages posted.
    pub posts: u64,
    /// Wire frames put on the transport (batch envelopes count once).
    pub frames_sent: u64,
    /// Offload messages those frames carried (`== frames_sent` with
    /// batching off; the `msgs_sent / frames_sent` ratio is the
    /// transaction saving with it on).
    pub msgs_sent: u64,
    /// Future polls (`test()` calls reaching the backend).
    pub polls: u64,
    /// Polls that found no result yet.
    pub retries: u64,
    /// Frames re-sent by the recovery policy (deadline passed).
    pub resends: u64,
    /// Offloads failed with `Timeout` (bounded retries exhausted).
    pub timeouts: u64,
    /// Targets evicted after transport death.
    pub evictions: u64,
    /// Connection re-establishment attempts (successful or not).
    pub reconnect_attempts: u64,
    /// Dropped connections re-established with their session resumed.
    pub reconnects: u64,
    /// In-flight frames replayed onto a fresh connection at resume.
    pub replayed_frames: u64,
    /// Background liveness probes answered.
    pub probes: u64,
    /// Background liveness probes unanswered.
    pub probe_misses: u64,
    /// Targets added to a running pool's membership.
    pub member_joins: u64,
    /// Targets removed (drained) from a running pool's membership.
    pub member_leaves: u64,
    /// Offloads whose result was consumed.
    pub completions: u64,
    /// `put` operations.
    pub puts: u64,
    /// `get` operations.
    pub gets: u64,
    /// Total bytes moved host → target by `put`.
    pub bytes_put: u64,
    /// Total bytes moved target → host by `get`.
    pub bytes_get: u64,
    /// `allocate` calls.
    pub allocs: u64,
    /// `free` calls.
    pub frees: u64,
    /// Adaptive-controller widen decisions across all channels.
    pub batch_widens: u64,
    /// Adaptive-controller narrow decisions across all channels.
    pub batch_narrows: u64,
    /// Envelope flushes forced by the `slo_micros` age bound.
    pub batch_slo_flushes: u64,
    /// Offloads currently in flight.
    pub inflight: i64,
    /// Highest concurrent in-flight count observed.
    pub inflight_peak: i64,
    /// Bytes currently allocated on targets.
    pub alloc_bytes_live: i64,
    /// Highest live allocation level observed.
    pub alloc_bytes_peak: i64,
    /// Distribution of posted payload sizes (bytes).
    pub payload_bytes: OnlineStats,
    /// Distribution of messages per sent frame (all 1s with batching
    /// off).
    pub batch_occupancy: OnlineStats,
    /// Offload latency distribution (recorded in nanoseconds).
    pub latency: OnlineStats,
    /// Log₂ histogram of offload completion latencies (ps buckets).
    pub latency_hist: Histogram,
    /// Log₂ histogram of batch flush latencies (first stage → send).
    pub flush_hist: Histogram,
    /// Log₂ histogram of retry/backoff delays (post → re-send).
    pub retry_hist: Histogram,
    /// Per-target registers, sorted by node id (only targets with at
    /// least one completion appear).
    pub per_node: Vec<NodeMetricsSnapshot>,
    /// Per-target latency EWMA (ns), sorted by node id. Not rendered —
    /// scheduler food, surfaced here for tests and tooling.
    pub node_latency_ewma: Vec<(u16, f64)>,
    /// Per-lane occupancy registers, trimmed to the last active lane
    /// (empty when no device runtime recorded lane work).
    pub lanes: Vec<LaneMetricsSnapshot>,
    /// Work items an idle lane took from another lane's deque.
    pub steals: u64,
}

/// Append one Prometheus counter sample (with its `# TYPE` line).
fn prom_counter(out: &mut String, name: &str, v: u64) {
    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
}

/// Append one Prometheus gauge sample (with its `# TYPE` line).
fn prom_gauge(out: &mut String, name: &str, v: i64) {
    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
}

/// Append a log₂ histogram as cumulative `_bucket` samples. Bucket `i`
/// covers `[2^i, 2^(i+1))` ps, so its `le` bound is `2^(i+1)` ps;
/// buckets past the last non-empty one collapse into `+Inf`.
fn prom_hist(out: &mut String, name: &str, h: &Histogram) {
    out.push_str(&format!("# TYPE {name} histogram\n"));
    if let Some(last) = h.buckets().iter().rposition(|&c| c > 0) {
        let mut cum = 0u64;
        for (i, &c) in h.buckets().iter().enumerate().take(last + 1) {
            cum += c;
            let le = 1u128 << (i + 1);
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
    }
    let n = h.count();
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {n}\n{name}_count {n}\n"
    ));
}

/// Append a histogram as a JSON array of `[bucket_floor_ps, count]`
/// pairs (non-empty buckets only).
fn json_hist(out: &mut String, h: &Histogram) {
    out.push('[');
    let mut first = true;
    for (floor, count) in h.nonzero() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("[{},{}]", floor.as_ps(), count));
    }
    out.push(']');
}

impl MetricsSnapshot {
    /// Aligned text rendering for reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: String| out.push_str(&format!("{k:<22} {v}\n"));
        line("posts", self.posts.to_string());
        // Only interesting when batching actually coalesced something;
        // keeping quiet otherwise preserves the unbatched reports
        // byte-for-byte.
        if self.msgs_sent > self.frames_sent {
            line(
                "frames (msgs/frame)",
                format!("{} ({:.2})", self.frames_sent, self.batch_occupancy.mean()),
            );
        }
        line("polls", self.polls.to_string());
        line("retries", self.retries.to_string());
        if self.resends + self.timeouts + self.evictions > 0 {
            line(
                "recovery (resend/timeout/evict)",
                format!("{}/{}/{}", self.resends, self.timeouts, self.evictions),
            );
        }
        if self.reconnect_attempts + self.reconnects + self.replayed_frames > 0 {
            line(
                "reconnect (attempt/ok/replayed)",
                format!(
                    "{}/{}/{}",
                    self.reconnect_attempts, self.reconnects, self.replayed_frames
                ),
            );
        }
        if self.probes + self.probe_misses > 0 {
            line(
                "probes (ok/miss)",
                format!("{}/{}", self.probes, self.probe_misses),
            );
        }
        if self.member_joins + self.member_leaves > 0 {
            line(
                "membership (join/leave)",
                format!("{}/{}", self.member_joins, self.member_leaves),
            );
        }
        line("completions", self.completions.to_string());
        line(
            "inflight (now/peak)",
            format!("{}/{}", self.inflight, self.inflight_peak),
        );
        line("puts", format!("{} ({} bytes)", self.puts, self.bytes_put));
        line("gets", format!("{} ({} bytes)", self.gets, self.bytes_get));
        line("allocs/frees", format!("{}/{}", self.allocs, self.frees));
        line(
            "alloc bytes (now/peak)",
            format!("{}/{}", self.alloc_bytes_live, self.alloc_bytes_peak),
        );
        if self.payload_bytes.count() > 0 {
            line(
                "payload bytes",
                format!(
                    "mean {:.1} min {:.0} max {:.0}",
                    self.payload_bytes.mean(),
                    self.payload_bytes.min(),
                    self.payload_bytes.max()
                ),
            );
        }
        if self.latency.count() > 0 {
            line(
                "offload latency",
                format!(
                    "mean {:.3} us (sd {:.3}, min {:.3}, max {:.3})",
                    self.latency.mean() / 1e3,
                    self.latency.stddev() / 1e3,
                    self.latency.min() / 1e3,
                    self.latency.max() / 1e3
                ),
            );
            for (floor, count) in self.latency_hist.nonzero() {
                line(&format!("  latency ≥ {floor}"), count.to_string());
            }
        }
        out
    }

    /// Prometheus text exposition (version 0.0.4) of every register.
    ///
    /// Counters end in `_total`, latency histograms are cumulative
    /// `_bucket` series with `le` bounds in **picoseconds** (powers of
    /// two — the registers are log₂), per-target series carry a
    /// `node="N"` label. The format is pinned by
    /// `tests/exposition_golden.rs`; extend it, don't reshape it.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        prom_counter(&mut out, "aurora_posts_total", self.posts);
        prom_counter(&mut out, "aurora_frames_sent_total", self.frames_sent);
        prom_counter(&mut out, "aurora_msgs_sent_total", self.msgs_sent);
        prom_counter(&mut out, "aurora_polls_total", self.polls);
        prom_counter(&mut out, "aurora_poll_misses_total", self.retries);
        prom_counter(&mut out, "aurora_resends_total", self.resends);
        prom_counter(&mut out, "aurora_timeouts_total", self.timeouts);
        prom_counter(&mut out, "aurora_evictions_total", self.evictions);
        prom_counter(
            &mut out,
            "aurora_reconnect_attempts_total",
            self.reconnect_attempts,
        );
        prom_counter(&mut out, "aurora_reconnects_total", self.reconnects);
        prom_counter(
            &mut out,
            "aurora_replayed_frames_total",
            self.replayed_frames,
        );
        prom_counter(&mut out, "aurora_probes_total", self.probes);
        prom_counter(&mut out, "aurora_probe_misses_total", self.probe_misses);
        prom_counter(
            &mut out,
            "aurora_membership_joins_total",
            self.member_joins,
        );
        prom_counter(
            &mut out,
            "aurora_membership_leaves_total",
            self.member_leaves,
        );
        prom_counter(&mut out, "aurora_completions_total", self.completions);
        prom_counter(&mut out, "aurora_puts_total", self.puts);
        prom_counter(&mut out, "aurora_gets_total", self.gets);
        prom_counter(&mut out, "aurora_bytes_put_total", self.bytes_put);
        prom_counter(&mut out, "aurora_bytes_get_total", self.bytes_get);
        prom_counter(&mut out, "aurora_allocs_total", self.allocs);
        prom_counter(&mut out, "aurora_frees_total", self.frees);
        prom_counter(&mut out, "aurora_lane_steals_total", self.steals);
        prom_counter(&mut out, "aurora_batch_widens_total", self.batch_widens);
        prom_counter(&mut out, "aurora_batch_narrows_total", self.batch_narrows);
        prom_counter(
            &mut out,
            "aurora_batch_slo_flushes_total",
            self.batch_slo_flushes,
        );
        prom_gauge(&mut out, "aurora_inflight", self.inflight);
        prom_gauge(&mut out, "aurora_inflight_peak", self.inflight_peak);
        prom_gauge(&mut out, "aurora_alloc_bytes_live", self.alloc_bytes_live);
        prom_gauge(&mut out, "aurora_alloc_bytes_peak", self.alloc_bytes_peak);
        prom_hist(&mut out, "aurora_completion_latency_ps", &self.latency_hist);
        prom_hist(&mut out, "aurora_flush_latency_ps", &self.flush_hist);
        prom_hist(&mut out, "aurora_retry_delay_ps", &self.retry_hist);
        if !self.lanes.is_empty() {
            out.push_str("# TYPE aurora_lane_tasks_total counter\n");
            for l in &self.lanes {
                out.push_str(&format!(
                    "aurora_lane_tasks_total{{lane=\"{}\"}} {}\n",
                    l.lane, l.tasks
                ));
            }
            out.push_str("# TYPE aurora_lane_busy_ps_total counter\n");
            for l in &self.lanes {
                out.push_str(&format!(
                    "aurora_lane_busy_ps_total{{lane=\"{}\"}} {}\n",
                    l.lane, l.busy_ps
                ));
            }
        }
        if !self.per_node.is_empty() {
            out.push_str("# TYPE aurora_target_completions_total counter\n");
            for n in &self.per_node {
                out.push_str(&format!(
                    "aurora_target_completions_total{{node=\"{}\"}} {}\n",
                    n.node, n.completions
                ));
            }
            out.push_str("# TYPE aurora_target_latency_ewma_ns gauge\n");
            for n in &self.per_node {
                out.push_str(&format!(
                    "aurora_target_latency_ewma_ns{{node=\"{}\"}} {:.3}\n",
                    n.node, n.ewma_ns
                ));
            }
            for (name, p) in [
                ("aurora_target_latency_p50_ps", 50.0),
                ("aurora_target_latency_p99_ps", 99.0),
            ] {
                out.push_str(&format!("# TYPE {name} gauge\n"));
                for n in &self.per_node {
                    let v = n.latency_hist.percentile(p).map_or(0, |t| t.as_ps());
                    out.push_str(&format!("{name}{{node=\"{}\"}} {v}\n", n.node));
                }
            }
        }
        out
    }

    /// JSON exposition of every register. Histograms are arrays of
    /// `[bucket_floor_ps, count]` pairs; floats are fixed to three
    /// decimals so the output is byte-stable for golden tests.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in [
            ("posts", self.posts),
            ("frames_sent", self.frames_sent),
            ("msgs_sent", self.msgs_sent),
            ("polls", self.polls),
            ("poll_misses", self.retries),
            ("resends", self.resends),
            ("timeouts", self.timeouts),
            ("evictions", self.evictions),
            ("reconnect_attempts", self.reconnect_attempts),
            ("reconnects", self.reconnects),
            ("replayed_frames", self.replayed_frames),
            ("probes", self.probes),
            ("probe_misses", self.probe_misses),
            ("membership_joins", self.member_joins),
            ("membership_leaves", self.member_leaves),
            ("completions", self.completions),
            ("puts", self.puts),
            ("gets", self.gets),
            ("bytes_put", self.bytes_put),
            ("bytes_get", self.bytes_get),
            ("allocs", self.allocs),
            ("frees", self.frees),
            ("lane_steals", self.steals),
            ("batch_widens", self.batch_widens),
            ("batch_narrows", self.batch_narrows),
            ("batch_slo_flushes", self.batch_slo_flushes),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\": {v}"));
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, v)) in [
            ("inflight", self.inflight),
            ("inflight_peak", self.inflight_peak),
            ("alloc_bytes_live", self.alloc_bytes_live),
            ("alloc_bytes_peak", self.alloc_bytes_peak),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\": {v}"));
        }
        let (mean, min, max) = if self.latency.count() == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (self.latency.mean(), self.latency.min(), self.latency.max())
        };
        out.push_str(&format!(
            "}},\n  \"latency_ns\": {{\"count\": {}, \"mean\": {:.3}, \"min\": {:.3}, \"max\": {:.3}}},\n",
            self.latency.count(),
            mean,
            min,
            max
        ));
        out.push_str("  \"completion_latency_ps\": ");
        json_hist(&mut out, &self.latency_hist);
        out.push_str(",\n  \"flush_latency_ps\": ");
        json_hist(&mut out, &self.flush_hist);
        out.push_str(",\n  \"retry_delay_ps\": ");
        json_hist(&mut out, &self.retry_hist);
        out.push_str(",\n  \"lanes\": [");
        for (i, l) in self.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{},{}]", l.lane, l.tasks, l.busy_ps));
        }
        out.push(']');
        out.push_str(",\n  \"targets\": [");
        for (i, n) in self.per_node.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"node\": {}, \"completions\": {}, \"ewma_ns\": {:.3}, \"latency_ps\": ",
                n.node, n.completions, n.ewma_ns
            ));
            json_hist(&mut out, &n.latency_hist);
            out.push('}');
        }
        if !self.per_node.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let m = BackendMetrics::new();
        m.on_post(100);
        m.on_post(300);
        m.on_poll(false);
        m.on_poll(true);
        m.on_complete(SimTime::from_us(6));
        let s = m.snapshot();
        assert_eq!(s.posts, 2);
        assert_eq!(s.polls, 2);
        assert_eq!(s.retries, 1);
        assert_eq!(s.completions, 1);
        assert_eq!(s.inflight, 1);
        assert_eq!(s.inflight_peak, 2);
        assert_eq!(s.payload_bytes.count(), 2);
        assert!((s.payload_bytes.mean() - 200.0).abs() < 1e-9);
        assert_eq!(s.latency_hist.count(), 1);
    }

    #[test]
    fn allocation_gauge_credits_frees() {
        let m = BackendMetrics::new();
        m.on_alloc(1, 0x1000, 512);
        m.on_alloc(1, 0x2000, 256);
        m.on_free(1, 0x1000);
        // Double free of an unknown address must not underflow.
        m.on_free(1, 0x1000);
        let s = m.snapshot();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 2);
        assert_eq!(s.alloc_bytes_live, 256);
        assert_eq!(s.alloc_bytes_peak, 768);
    }

    #[test]
    fn transfer_bytes_totalled() {
        let m = BackendMetrics::new();
        m.on_put(1024);
        m.on_put(1024);
        m.on_get(64);
        let s = m.snapshot();
        assert_eq!(s.puts, 2);
        assert_eq!(s.bytes_put, 2048);
        assert_eq!(s.gets, 1);
        assert_eq!(s.bytes_get, 64);
    }

    #[test]
    fn frame_counters_track_batching() {
        let m = BackendMetrics::new();
        m.on_frame(1);
        // Unbatched traffic: frames == msgs, render stays silent.
        let s = m.snapshot();
        assert_eq!((s.frames_sent, s.msgs_sent), (1, 1));
        assert!(!s.render().contains("frames"), "{}", s.render());
        // A coalesced envelope of 8 shows up.
        m.on_frame(8);
        let s = m.snapshot();
        assert_eq!((s.frames_sent, s.msgs_sent), (2, 9));
        assert!((s.batch_occupancy.mean() - 4.5).abs() < 1e-9);
        assert!(s.render().contains("frames (msgs/frame)"));
    }

    #[test]
    fn node_latency_ewma_converges_per_target() {
        let m = BackendMetrics::new();
        assert_eq!(m.latency_ewma(1), None, "no completions yet");
        m.on_post(8);
        m.on_complete_on(1, SimTime::from_us(10));
        assert!(
            (m.latency_ewma(1).unwrap() - 10_000.0).abs() < 1e-9,
            "first sample seeds"
        );
        m.on_post(8);
        m.on_complete_on(1, SimTime::from_us(20));
        // 10000 + 0.2·(20000 − 10000) = 12000.
        assert!((m.latency_ewma(1).unwrap() - 12_000.0).abs() < 1e-9);
        m.on_post(8);
        m.on_complete_on(2, SimTime::from_us(5));
        assert!((m.latency_ewma(2).unwrap() - 5_000.0).abs() < 1e-9);
        let s = m.snapshot();
        assert_eq!(s.completions, 3, "on_complete_on feeds the totals too");
        assert_eq!(s.node_latency_ewma.len(), 2);
        assert_eq!(s.node_latency_ewma[0].0, 1);
        assert_eq!(s.node_latency_ewma[1].0, 2);
        // The per-node vector is scheduler food, not report noise.
        assert!(!s.render().contains("ewma"));
    }

    #[test]
    fn per_node_registers_sum_to_aggregate() {
        let m = BackendMetrics::new();
        for (node, us) in [(1, 10), (1, 20), (2, 5), (2, 40)] {
            m.on_post(8);
            m.on_complete_on(node, SimTime::from_us(us));
        }
        let s = m.snapshot();
        assert_eq!(s.per_node.len(), 2);
        let summed: u64 = s.per_node.iter().map(|n| n.completions).sum();
        assert_eq!(summed, s.completions);
        let mut merged = Histogram::new();
        for n in &s.per_node {
            merged.merge(&n.latency_hist);
        }
        assert_eq!(merged.buckets(), s.latency_hist.buckets());
        // Per-node percentiles come from the same buckets: node 1's
        // median lands in the 10 µs sample's bucket.
        let b10 = 63 - SimTime::from_us(10).as_ps().leading_zeros();
        assert_eq!(
            s.per_node[0].latency_hist.percentile(50.0),
            Some(SimTime::from_ps(1u64 << b10))
        );
    }

    #[test]
    fn flush_and_retry_histograms_record() {
        let m = BackendMetrics::new();
        m.on_flush(SimTime::from_ns(100));
        m.on_flush(SimTime::from_us(3));
        m.on_retry_delay(SimTime::from_us(50));
        let s = m.snapshot();
        assert_eq!(s.flush_hist.count(), 2);
        assert_eq!(s.retry_hist.count(), 1);
    }

    #[test]
    fn prometheus_text_is_parseable_shape() {
        let m = BackendMetrics::new();
        m.on_post(64);
        m.on_complete_on(1, SimTime::from_us(6));
        let text = m.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE aurora_posts_total counter"));
        assert!(text.contains("aurora_posts_total 1"));
        assert!(text.contains("aurora_completion_latency_ps_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("aurora_target_completions_total{node=\"1\"} 1"));
        assert!(text.contains("aurora_target_latency_ewma_ns{node=\"1\"} 6000.000"));
        // Every sample line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn json_is_valid_and_carries_registers() {
        let m = BackendMetrics::new();
        m.on_post(64);
        m.on_complete_on(1, SimTime::from_us(6));
        let doc = m.snapshot().to_json();
        let v = aurora_telemetry::json::parse(&doc).expect("valid json");
        assert_eq!(
            v.get("counters").unwrap().get("posts").unwrap().as_u64(),
            Some(1)
        );
        let targets = v.get("targets").unwrap().as_array().unwrap();
        assert_eq!(targets[0].get("node").unwrap().as_u64(), Some(1));
        assert_eq!(targets[0].get("ewma_ns").unwrap().as_f64(), Some(6000.0));
    }

    #[test]
    fn lane_registers_accumulate_and_trim() {
        let m = BackendMetrics::new();
        let s = m.snapshot();
        assert!(s.lanes.is_empty(), "no lane work → no lane rows");
        assert_eq!(s.steals, 0);
        let lanes = m.lane_stats();
        lanes.on_task(0, 100);
        lanes.on_task(2, 50);
        lanes.on_task(2, 50);
        lanes.on_steal();
        let s = m.snapshot();
        assert_eq!(s.lanes.len(), 3, "trimmed past lane 2");
        assert_eq!((s.lanes[0].tasks, s.lanes[0].busy_ps), (1, 100));
        assert_eq!((s.lanes[1].tasks, s.lanes[1].busy_ps), (0, 0));
        assert_eq!((s.lanes[2].tasks, s.lanes[2].busy_ps), (2, 100));
        assert_eq!(s.steals, 1);
        let text = s.to_prometheus_text();
        assert!(text.contains("aurora_lane_steals_total 1"));
        assert!(text.contains("aurora_lane_tasks_total{lane=\"2\"} 2"));
        assert!(text.contains("aurora_lane_busy_ps_total{lane=\"0\"} 100"));
        let v = aurora_telemetry::json::parse(&s.to_json()).expect("valid json");
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("lane_steals")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        // Out-of-range lanes fold into the last register, never panic.
        lanes.on_task(MAX_TRACKED_LANES + 5, 1);
        assert_eq!(lanes.tasks(MAX_TRACKED_LANES - 1), 1);
    }

    #[test]
    fn health_registry_is_per_backend() {
        use aurora_telemetry::{HealthEventKind, TargetState};
        let a = BackendMetrics::new();
        let b = BackendMetrics::new();
        a.health().register(1);
        a.health().record(1, HealthEventKind::Eviction, 0, 0);
        assert_eq!(a.health().state(1), Some(TargetState::Evicted));
        assert_eq!(b.health().state(1), None, "registries are independent");
    }
}
