//! Shared hardware resources as FIFO virtual-time timelines.
//!
//! A DMA engine, a PCIe link direction, or the VEOS DMA manager can only
//! serve one request at a time. A [`Timeline`] serializes virtual-time
//! reservations: a request that arrives (in virtual time) while the
//! resource is busy is queued behind the in-flight work, exactly like a
//! hardware queue. This is what makes contention (e.g. two VE processes
//! sharing the privileged DMA engine) visible in the modeled numbers.

use crate::time::SimTime;
use parking_lot::Mutex;
use std::sync::Arc;

/// A single-server FIFO resource on the virtual time base.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    inner: Arc<Mutex<TimelineInner>>,
}

#[derive(Debug, Default)]
struct TimelineInner {
    busy_until: SimTime,
    total_busy: SimTime,
    reservations: u64,
}

/// Result of a [`Timeline::reserve`]: when service started and ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Virtual time at which the resource began serving the request.
    pub start: SimTime,
    /// Virtual time at which the request completed.
    pub end: SimTime,
}

impl Reservation {
    /// Time spent queued before service began.
    pub fn queueing(&self, requested_at: SimTime) -> SimTime {
        self.start.saturating_sub(requested_at)
    }
}

impl Timeline {
    /// A fresh, idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the resource for `duration`, no earlier than `earliest`.
    ///
    /// Returns the actual service window. FIFO within the lock: the
    /// reservation starts at `max(earliest, busy_until)`.
    pub fn reserve(&self, earliest: SimTime, duration: SimTime) -> Reservation {
        let mut inner = self.inner.lock();
        let start = earliest.max(inner.busy_until);
        let end = start + duration;
        inner.busy_until = end;
        inner.total_busy += duration;
        inner.reservations += 1;
        Reservation { start, end }
    }

    /// Virtual time until which the resource is currently committed.
    pub fn busy_until(&self) -> SimTime {
        self.inner.lock().busy_until
    }

    /// Total busy time accumulated across all reservations.
    pub fn total_busy(&self) -> SimTime {
        self.inner.lock().total_busy
    }

    /// Number of reservations served.
    pub fn reservations(&self) -> u64 {
        self.inner.lock().reservations
    }

    /// Reset utilization accounting and availability (benchmark reuse).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = TimelineInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let tl = Timeline::new();
        let r = tl.reserve(SimTime::from_ns(10), SimTime::from_ns(5));
        assert_eq!(r.start, SimTime::from_ns(10));
        assert_eq!(r.end, SimTime::from_ns(15));
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let tl = Timeline::new();
        let a = tl.reserve(SimTime::ZERO, SimTime::from_ns(100));
        let b = tl.reserve(SimTime::from_ns(30), SimTime::from_ns(50));
        assert_eq!(a.end, SimTime::from_ns(100));
        assert_eq!(b.start, SimTime::from_ns(100), "b waits for a");
        assert_eq!(b.end, SimTime::from_ns(150));
        assert_eq!(b.queueing(SimTime::from_ns(30)), SimTime::from_ns(70));
    }

    #[test]
    fn late_request_after_idle_gap() {
        let tl = Timeline::new();
        tl.reserve(SimTime::ZERO, SimTime::from_ns(10));
        let r = tl.reserve(SimTime::from_ns(100), SimTime::from_ns(10));
        assert_eq!(r.start, SimTime::from_ns(100), "idle gap is not billed");
    }

    #[test]
    fn accounting() {
        let tl = Timeline::new();
        tl.reserve(SimTime::ZERO, SimTime::from_ns(10));
        tl.reserve(SimTime::ZERO, SimTime::from_ns(20));
        assert_eq!(tl.total_busy(), SimTime::from_ns(30));
        assert_eq!(tl.reservations(), 2);
        assert_eq!(tl.busy_until(), SimTime::from_ns(30));
        tl.reset();
        assert_eq!(tl.total_busy(), SimTime::ZERO);
        assert_eq!(tl.reservations(), 0);
    }

    proptest::proptest! {
        /// Reservations are FIFO, non-overlapping, and busy-time adds up,
        /// for any interleaving of requested start times and durations.
        #[test]
        fn prop_fifo_no_overlap(ops in proptest::collection::vec((0u64..10_000, 1u64..1_000), 1..50)) {
            let tl = Timeline::new();
            let mut windows = Vec::new();
            let mut total = 0u64;
            for (earliest, dur) in ops {
                let r = tl.reserve(SimTime::from_ns(earliest), SimTime::from_ns(dur));
                proptest::prop_assert!(r.start >= SimTime::from_ns(earliest));
                proptest::prop_assert_eq!(r.end - r.start, SimTime::from_ns(dur));
                if let Some(prev) = windows.last() {
                    let prev: &Reservation = prev;
                    proptest::prop_assert!(r.start >= prev.end, "FIFO ordering");
                }
                windows.push(r);
                total += dur;
            }
            proptest::prop_assert_eq!(tl.total_busy(), SimTime::from_ns(total));
        }
    }

    #[test]
    fn concurrent_reservations_never_overlap() {
        let tl = Timeline::new();
        let windows: Vec<Reservation> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    let tl = tl.clone();
                    s.spawn(move || tl.reserve(SimTime::ZERO, SimTime::from_ns(7)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = windows.clone();
        sorted.sort_by_key(|r| r.start);
        for pair in sorted.windows(2) {
            assert!(pair[0].end <= pair[1].start, "overlap: {pair:?}");
        }
        assert_eq!(tl.total_busy(), SimTime::from_ns(7 * 16));
    }
}
