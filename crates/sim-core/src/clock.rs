//! Per-process logical clocks for conservative parallel simulation.
//!
//! Every simulated process (the Vector Host process, each Vector Engine
//! process, the VEOS daemon) owns a [`Clock`]. Hardware operations advance
//! the local clock by their modeled cost. Cross-process events (a message
//! becoming visible in remote memory) carry the sender-side completion
//! timestamp; the receiver *joins* it — Lamport-style — so that the
//! critical path of a round trip accumulates exactly the modeled durations
//! regardless of how the real OS schedules the threads.
//!
//! The clock is internally atomic, so one simulated process may be touched
//! by several host threads (e.g. a VEO context worker completing a call on
//! behalf of the VE process); `Relaxed` ordering suffices because clock
//! values are data, not synchronization — protocol synchronization happens
//! through the protocols' own Acquire/Release flags.

use crate::time::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically advancing logical clock, cheaply cloneable (shared).
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now_ps: Arc<AtomicU64>,
}

impl Clock {
    /// A new clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A new clock starting at `t`.
    pub fn starting_at(t: SimTime) -> Self {
        let c = Self::new();
        c.now_ps.store(t.as_ps(), Ordering::Relaxed);
        c
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        SimTime::from_ps(self.now_ps.load(Ordering::Relaxed))
    }

    /// Advance by a duration, returning the new time.
    #[inline]
    pub fn advance(&self, d: SimTime) -> SimTime {
        let prev = self.now_ps.fetch_add(d.as_ps(), Ordering::Relaxed);
        SimTime::from_ps(prev + d.as_ps())
    }

    /// Join a remote timestamp: move forward to `max(now, t)` and return
    /// the resulting time. Never moves backwards.
    pub fn join(&self, t: SimTime) -> SimTime {
        let target = t.as_ps();
        let mut cur = self.now_ps.load(Ordering::Relaxed);
        while cur < target {
            match self.now_ps.compare_exchange_weak(
                cur,
                target,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime::from_ps(cur)
    }

    /// Join a remote timestamp, then advance by `d` (a receive cost).
    pub fn join_then_advance(&self, t: SimTime, d: SimTime) -> SimTime {
        self.join(t);
        self.advance(d)
    }

    /// Reset to zero. Only for benchmark-harness reuse between repetitions;
    /// never called while other threads are advancing the clock.
    pub fn reset(&self) {
        self.now_ps.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimTime::from_ns(5));
        c.advance(SimTime::from_ns(7));
        assert_eq!(c.now(), SimTime::from_ns(12));
    }

    #[test]
    fn join_moves_forward_only() {
        let c = Clock::starting_at(SimTime::from_ns(100));
        c.join(SimTime::from_ns(50));
        assert_eq!(c.now(), SimTime::from_ns(100), "join must not go back");
        c.join(SimTime::from_ns(250));
        assert_eq!(c.now(), SimTime::from_ns(250));
    }

    #[test]
    fn join_then_advance_composes() {
        let c = Clock::new();
        let t = c.join_then_advance(SimTime::from_ns(10), SimTime::from_ns(3));
        assert_eq!(t, SimTime::from_ns(13));
        assert_eq!(c.now(), SimTime::from_ns(13));
    }

    #[test]
    fn clones_share_state() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(SimTime::from_us(1));
        assert_eq!(b.now(), SimTime::from_us(1));
    }

    #[test]
    fn concurrent_joins_settle_at_max() {
        let c = Clock::new();
        std::thread::scope(|s| {
            for i in 1..=8u64 {
                let c = c.clone();
                s.spawn(move || {
                    c.join(SimTime::from_ns(i * 10));
                });
            }
        });
        assert_eq!(c.now(), SimTime::from_ns(80));
    }

    #[test]
    fn reset_goes_to_zero() {
        let c = Clock::starting_at(SimTime::from_ms(1));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }
}
