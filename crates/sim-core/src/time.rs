//! Virtual time with picosecond resolution.
//!
//! Bandwidth modelling needs sub-nanosecond resolution: 8 bytes at
//! 10 GiB/s take ~0.745 ns. A `u64` picosecond counter covers ~213 days of
//! simulated time, far beyond any benchmark run.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in, or span of, virtual time. Unit: picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero / the empty duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Construct from a floating-point number of nanoseconds (rounded).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        SimTime((ns * 1e3).round() as u64)
    }

    /// Construct from a floating-point number of microseconds (rounded).
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        SimTime((us * 1e6).round() as u64)
    }

    /// Construct from a floating-point number of seconds (rounded).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        SimTime((s * 1e12).round() as u64)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// As floating-point nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// As floating-point microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As floating-point milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As floating-point seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction (useful when computing waiting times).
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// Scale a duration by an integer factor.
    #[inline]
    pub fn scaled(self, factor: u64) -> SimTime {
        SimTime(self.0 * factor)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow");
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", self)
    }
}

impl fmt::Display for SimTime {
    /// Human-readable rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{}ps", ps)
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

/// Compute the bandwidth, in GiB/s, achieved by moving `bytes` in `t`.
///
/// Returns `f64::INFINITY` for a zero duration (used to guard against
/// division by zero when very small transfers round to zero cost).
pub fn gib_per_sec(bytes: u64, t: SimTime) -> f64 {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    if t == SimTime::ZERO {
        return f64::INFINITY;
    }
    bytes as f64 / GIB / t.as_secs_f64()
}

/// Compute the time a transfer of `bytes` takes at `gib_s` GiB/s.
pub fn time_at_gib_per_sec(bytes: u64, gib_s: f64) -> SimTime {
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    assert!(gib_s > 0.0, "bandwidth must be positive");
    SimTime::from_secs_f64(bytes as f64 / (gib_s * GIB))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_us_f64(1.5), SimTime::from_ns(1_500));
        assert_eq!(SimTime::from_ns_f64(0.5), SimTime::from_ps(500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!(a + b, SimTime::from_ns(14));
        assert_eq!(a - b, SimTime::from_ns(6));
        assert_eq!(a * 3, SimTime::from_ns(30));
        assert_eq!(a / 2, SimTime::from_ns(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_us_f64(6.1);
        assert!((t.as_us_f64() - 6.1).abs() < 1e-9);
        assert!((t.as_ns_f64() - 6_100.0).abs() < 1e-6);
        assert!((t.as_secs_f64() - 6.1e-6).abs() < 1e-15);
    }

    #[test]
    fn bandwidth_helpers_are_inverses() {
        let bytes = 1u64 << 20; // 1 MiB
        let t = time_at_gib_per_sec(bytes, 10.0);
        let bw = gib_per_sec(bytes, t);
        assert!((bw - 10.0).abs() < 1e-3, "bw = {bw}");
    }

    #[test]
    fn zero_duration_bandwidth_is_infinite() {
        assert!(gib_per_sec(8, SimTime::ZERO).is_infinite());
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_ps(5)), "5ps");
        assert_eq!(format!("{}", SimTime::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", SimTime::from_us_f64(6.1)), "6.100us");
        assert_eq!(format!("{}", SimTime::from_ms(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::ZERO), "0s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }
}
