//! Small deterministic RNG (SplitMix64) for simulation-internal choices.
//!
//! Used where the simulator itself needs pseudo-randomness that must be
//! reproducible regardless of the `rand` crate's version-dependent stream
//! semantics: scrambling per-process handler tables (emulating differing
//! code addresses in heterogeneous binaries) and jittering workloads.

/// SplitMix64: tiny, fast, passes BigCrush for this purpose.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded constructor; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Multiply-shift reduction; bias is negligible for simulation use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(9);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is (astronomically)
        // unlikely; a fixed seed makes this deterministic.
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }
}
