//! Virtual-time event tracing.
//!
//! When enabled, simulated hardware components record every costed
//! operation (engine reservations, wire occupancy, instruction streams)
//! into a global buffer; the `repro_trace` harness renders the resulting
//! per-offload timeline — the measured counterpart of the §V-A cost
//! breakdown.
//!
//! Tracing is process-global and off by default; recording is a single
//! relaxed atomic load when disabled.

use crate::time::SimTime;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// One recorded operation on the virtual timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Component category (e.g. `"udma.read"`, `"veo.write"`).
    pub category: &'static str,
    /// Operation size in bytes (0 when not applicable).
    pub bytes: u64,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time.
    pub end: SimTime,
}

impl Event {
    /// The operation's duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Start recording (clears previously captured events).
pub fn enable() {
    EVENTS.lock().clear();
    ENABLED.store(true, Ordering::Release);
}

/// Stop recording and return the captured events sorted by start time.
pub fn disable_and_take() -> Vec<Event> {
    ENABLED.store(false, Ordering::Release);
    let mut events = std::mem::take(&mut *EVENTS.lock());
    events.sort_by_key(|e| (e.start, e.end));
    events
}

/// True while tracing is active.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Record one operation (no-op unless tracing is enabled).
#[inline]
pub fn record(category: &'static str, bytes: u64, start: SimTime, end: SimTime) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    EVENTS.lock().push(Event {
        category,
        bytes,
        start,
        end,
    });
}

/// Render events as an aligned text timeline.
pub fn render(events: &[Event]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>10} {:>14} {:>14} {:>12}\n",
        "component", "bytes", "start", "end", "duration"
    ));
    for e in events {
        out.push_str(&format!(
            "{:<20} {:>10} {:>14} {:>14} {:>12}\n",
            e.category,
            e.bytes,
            format!("{}", e.start),
            format!("{}", e.end),
            format!("{}", e.duration()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global; run the whole lifecycle in one
    // test to avoid cross-test interference.
    #[test]
    fn lifecycle_capture_and_render() {
        assert!(!enabled());
        record("ignored", 0, SimTime::ZERO, SimTime::from_ns(1));
        enable();
        assert!(enabled());
        record("b.op", 8, SimTime::from_ns(10), SimTime::from_ns(20));
        record("a.op", 64, SimTime::from_ns(5), SimTime::from_ns(9));
        let events = disable_and_take();
        assert!(!enabled());
        assert_eq!(events.len(), 2, "pre-enable event must be dropped");
        assert_eq!(events[0].category, "a.op", "sorted by start");
        assert_eq!(events[1].duration(), SimTime::from_ns(10));
        let rendered = render(&events);
        assert!(rendered.contains("a.op"));
        assert!(rendered.contains("b.op"));
        // Buffer drained; a second take is empty.
        enable();
        assert!(disable_and_take().is_empty());
    }
}
