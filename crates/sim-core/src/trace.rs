//! Virtual-time event tracing — `SimTime`-typed facade over the
//! [`aurora_telemetry`] flight recorder.
//!
//! Simulated hardware components call [`record`] for every costed
//! operation (engine reservations, wire occupancy, framework overheads).
//! A [`TraceSession`] collects those spans; the returned [`Trace`] exports
//! text, JSONL, and Chrome trace-event JSON (see
//! [`aurora_telemetry::export`]). The `repro_trace` harness renders the
//! per-offload timeline — the measured counterpart of the §V-A cost
//! breakdown.
//!
//! Recording state is process-global but guarded: sessions are RAII
//! ([`TraceSession`]) and mutually exclusive, so concurrently running
//! traced tests serialize instead of polluting each other. When no
//! session is active, [`record`] costs a single relaxed atomic load.

use crate::time::SimTime;

pub use aurora_telemetry::{
    current_offload, enabled, mark, next_offload_id, node_scope, offload_scope, retag_since,
    ContextGuard, Mark, OffloadId, Trace, NODE_UNKNOWN,
};

/// One recorded operation on the virtual timeline, `SimTime`-typed.
///
/// The raw [`Trace`] keeps picoseconds; this view is for consumers that
/// compare against simulation clocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Component category, `"<engine>.<phase>"` (e.g. `"udma.read"`).
    pub category: &'static str,
    /// Correlation id of the offload this span served (0 = unattributed).
    pub offload: u64,
    /// Node the work ran on ([`NODE_UNKNOWN`] if outside a `node_scope`).
    pub node: u16,
    /// Operation size in bytes (0 when not applicable).
    pub bytes: u64,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time.
    pub end: SimTime,
}

impl Event {
    /// The operation's duration.
    pub fn duration(&self) -> SimTime {
        self.end.saturating_sub(self.start)
    }

    /// The engine (category up to the first `'.'`).
    pub fn engine(&self) -> &'static str {
        match self.category.split_once('.') {
            Some((engine, _)) => engine,
            None => self.category,
        }
    }

    /// The phase (category after the first `'.'`).
    pub fn phase(&self) -> &'static str {
        match self.category.split_once('.') {
            Some((_, phase)) => phase,
            None => self.category,
        }
    }
}

/// RAII recording session (see [`aurora_telemetry::TraceSession`]).
///
/// Starting a session waits for any other live session to end; dropping
/// without [`TraceSession::finish`] discards the captured spans. This
/// replaces the old free-running `enable()`/`disable_and_take()` pair,
/// whose process-global toggle let concurrent tests corrupt each other's
/// captures.
pub struct TraceSession(aurora_telemetry::TraceSession);

impl TraceSession {
    /// Begin recording.
    pub fn start() -> TraceSession {
        TraceSession(aurora_telemetry::TraceSession::start())
    }

    /// Stop recording; spans come back sorted by `(start, end)`.
    pub fn finish(self) -> Trace {
        self.0.finish()
    }
}

/// Record one operation (no-op unless a session is active). Attribution
/// comes from the calling thread's [`offload_scope`] / [`node_scope`].
#[inline]
pub fn record(category: &'static str, bytes: u64, start: SimTime, end: SimTime) {
    aurora_telemetry::record(category, bytes, start.as_ps(), end.as_ps());
}

/// `SimTime`-typed copies of a trace's spans, in timeline order.
pub fn sim_events(trace: &Trace) -> Vec<Event> {
    trace
        .events
        .iter()
        .map(|e| Event {
            category: e.category,
            offload: e.offload,
            node: e.node,
            bytes: e.bytes,
            start: SimTime::from_ps(e.start_ps),
            end: SimTime::from_ps(e.end_ps),
        })
        .collect()
}

/// Render `SimTime`-typed events as an aligned text timeline.
pub fn render(events: &[Event]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>8} {:>6} {:>10} {:>14} {:>14} {:>12}\n",
        "component", "offload", "node", "bytes", "start", "end", "duration"
    ));
    for e in events {
        let offload = if e.offload == 0 {
            "-".to_string()
        } else {
            format!("of{}", e.offload)
        };
        let node = if e.node == NODE_UNKNOWN {
            "-".to_string()
        } else {
            e.node.to_string()
        };
        out.push_str(&format!(
            "{:<20} {:>8} {:>6} {:>10} {:>14} {:>14} {:>12}\n",
            e.category,
            offload,
            node,
            e.bytes,
            format!("{}", e.start),
            format!("{}", e.end),
            format!("{}", e.duration()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests each hold a TraceSession; the session lock serializes
    // them, so — unlike the pre-session-guard implementation, which needed
    // one monolithic lifecycle test — they can run as independent tests.

    #[test]
    fn pre_session_events_are_dropped() {
        record("facade.ignored", 0, SimTime::ZERO, SimTime::from_ns(1));
        let session = TraceSession::start();
        let trace = session.finish();
        assert!(!trace.events.iter().any(|e| e.category == "facade.ignored"));
    }

    #[test]
    fn capture_is_sorted_and_timed() {
        let session = TraceSession::start();
        record("facade.late", 8, SimTime::from_ns(10), SimTime::from_ns(20));
        record("facade.early", 64, SimTime::from_ns(5), SimTime::from_ns(9));
        let events = sim_events(&session.finish());
        let own: Vec<_> = events
            .iter()
            .filter(|e| e.category.starts_with("facade."))
            .collect();
        assert_eq!(own.len(), 2);
        assert_eq!(own[0].category, "facade.early", "sorted by start");
        assert_eq!(own[1].duration(), SimTime::from_ns(10));
    }

    /// The binary's tests run concurrently and one of them deliberately
    /// records outside any session; restrict assertions to a test's own
    /// categories so a stray drop-in can't break exact counts.
    fn own(trace: &Trace, prefix: &str) -> usize {
        trace
            .events
            .iter()
            .filter(|e| e.category.starts_with(prefix))
            .count()
    }

    #[test]
    fn sessions_drain_completely() {
        let s1 = TraceSession::start();
        record("drain.first", 0, SimTime::ZERO, SimTime::from_ns(1));
        assert_eq!(own(&s1.finish(), "drain."), 1);
        // Buffer drained; a new session sees none of them.
        let s2 = TraceSession::start();
        assert_eq!(own(&s2.finish(), "drain."), 0);
    }

    #[test]
    fn render_includes_attribution() {
        let session = TraceSession::start();
        let id = next_offload_id();
        {
            let _node = node_scope(2);
            let _of = offload_scope(id);
            record("facade.span", 96, SimTime::from_ns(5), SimTime::from_ns(15));
        }
        let events = sim_events(&session.finish());
        let rendered = render(&events);
        assert!(rendered.contains("facade.span"));
        assert!(rendered.contains(&format!("of{}", id.0)));
        assert!(
            rendered.contains("10.000ns"),
            "duration column:\n{rendered}"
        );
    }

    #[test]
    fn dropped_session_discards_events() {
        let s1 = TraceSession::start();
        record("lost.span", 0, SimTime::ZERO, SimTime::from_ns(1));
        drop(s1);
        let s2 = TraceSession::start();
        assert_eq!(own(&s2.finish(), "lost."), 0);
    }
}
