//! Service-level objectives over the metric and health registers.
//!
//! An [`SloSpec`] states what "healthy" means for an offload run —
//! completion latency percentiles, how fast failover must complete,
//! how many pending entries may leak — and
//! [`SloSpec::evaluate`] checks a [`MetricsSnapshot`] plus a health
//! event log against it, producing an [`SloReport`] the soak harness
//! (`examples/soak.rs`) turns into an exit code. All times are virtual.

use crate::metrics::MetricsSnapshot;
use crate::time::SimTime;
use aurora_telemetry::{HealthEvent, HealthEventKind};

/// What an offload run must achieve to pass.
#[derive(Clone, Copy, Debug)]
pub struct SloSpec {
    /// Median offload completion latency bound.
    pub p50_completion: SimTime,
    /// 99th-percentile offload completion latency bound.
    pub p99_completion: SimTime,
    /// Worst allowed fault → failover delay: from a `FaultInjected` or
    /// `Eviction` event to the `Failover` event that re-homed the
    /// stranded work.
    pub max_failover: SimTime,
    /// `PendingTable` entries still in flight after the run drained.
    pub max_leaked_pending: usize,
}

impl Default for SloSpec {
    /// Generous defaults for the simulated platform: the paper's DMA
    /// round trip is ~6 µs, so 1 ms median / 50 ms p99 only catch
    /// pathologies (retry storms, a wedged target), not normal jitter.
    fn default() -> Self {
        SloSpec {
            p50_completion: SimTime::from_ms(1),
            p99_completion: SimTime::from_ms(50),
            max_failover: SimTime::from_ms(1000),
            max_leaked_pending: 0,
        }
    }
}

impl SloSpec {
    /// Check `snapshot` + `events` + `leaked` against the spec.
    ///
    /// Failover time is measured per `Failover` event as the distance
    /// to the most recent preceding `FaultInjected` or `Eviction` on
    /// any node (the fault that stranded the work); the report carries
    /// the worst one.
    pub fn evaluate(
        &self,
        snapshot: &MetricsSnapshot,
        events: &[HealthEvent],
        leaked: usize,
    ) -> SloReport {
        let mut violations = Vec::new();

        let p50 = snapshot.latency_hist.percentile(50.0);
        let p99 = snapshot.latency_hist.percentile(99.0);
        if let Some(p50) = p50 {
            if p50 > self.p50_completion {
                violations.push(format!(
                    "p50 completion latency {p50} exceeds {}",
                    self.p50_completion
                ));
            }
        }
        if let Some(p99) = p99 {
            if p99 > self.p99_completion {
                violations.push(format!(
                    "p99 completion latency {p99} exceeds {}",
                    self.p99_completion
                ));
            }
        }

        let mut worst_failover = None;
        let mut last_fault: Option<u64> = None;
        for e in events {
            match e.kind {
                HealthEventKind::FaultInjected | HealthEventKind::Eviction => {
                    last_fault = Some(e.at_ps);
                }
                HealthEventKind::Failover => {
                    if let Some(fault_at) = last_fault {
                        let d = SimTime::from_ps(e.at_ps.saturating_sub(fault_at));
                        if worst_failover.is_none_or(|w| d > w) {
                            worst_failover = Some(d);
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(w) = worst_failover {
            if w > self.max_failover {
                violations.push(format!("worst failover {w} exceeds {}", self.max_failover));
            }
        }

        if leaked > self.max_leaked_pending {
            violations.push(format!(
                "{leaked} leaked pending entries exceed {}",
                self.max_leaked_pending
            ));
        }

        SloReport {
            p50_completion: p50,
            p99_completion: p99,
            worst_failover,
            leaked,
            violations,
        }
    }
}

/// Outcome of one [`SloSpec::evaluate`].
#[derive(Clone, Debug)]
pub struct SloReport {
    /// Measured median completion latency (bucket floor), if any
    /// completions happened.
    pub p50_completion: Option<SimTime>,
    /// Measured p99 completion latency (bucket floor).
    pub p99_completion: Option<SimTime>,
    /// Worst fault → failover delay observed, if any failover happened.
    pub worst_failover: Option<SimTime>,
    /// Leaked pending entries.
    pub leaked: usize,
    /// Human-readable description of every violated objective; empty
    /// means the run passed.
    pub violations: Vec<String>,
}

impl SloReport {
    /// Did every objective hold?
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }

    /// Text rendering for soak-run output.
    pub fn render(&self) -> String {
        let fmt = |t: Option<SimTime>| t.map_or("-".to_string(), |t| t.to_string());
        let mut out = format!(
            "p50 {}  p99 {}  worst-failover {}  leaked {}\n",
            fmt(self.p50_completion),
            fmt(self.p99_completion),
            fmt(self.worst_failover),
            self.leaked
        );
        if self.pass() {
            out.push_str("SLO: pass\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("SLO VIOLATION: {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BackendMetrics;
    use aurora_telemetry::HealthRegistry;

    fn snap_with_latencies(lat_us: &[u64]) -> MetricsSnapshot {
        let m = BackendMetrics::new();
        for &us in lat_us {
            m.on_post(8);
            m.on_complete_on(1, SimTime::from_us(us));
        }
        m.snapshot()
    }

    #[test]
    fn clean_run_passes_defaults() {
        let snap = snap_with_latencies(&[5, 6, 7, 8]);
        let report = SloSpec::default().evaluate(&snap, &[], 0);
        assert!(report.pass(), "{:?}", report.violations);
        assert!(report.p50_completion.is_some());
        assert!(report.render().contains("SLO: pass"));
    }

    #[test]
    fn slow_tail_violates_p99() {
        // Nearest-rank p99 over 100 samples is the 99th: a lone
        // straggler sits exactly past the rank, so use two (a 2% tail)
        // to land one at the rank itself.
        let mut lats = vec![5u64; 98];
        lats.push(200_000); // 200 ms stragglers
        lats.push(200_000);
        let snap = snap_with_latencies(&lats);
        let report = SloSpec::default().evaluate(&snap, &[], 0);
        assert!(!report.pass());
        assert!(
            report.violations[0].contains("p99"),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn leaked_pending_violates() {
        let snap = snap_with_latencies(&[5]);
        let report = SloSpec::default().evaluate(&snap, &[], 2);
        assert!(!report.pass());
        assert!(report.render().contains("leaked"));
    }

    #[test]
    fn failover_distance_measured_from_latest_fault() {
        let r = HealthRegistry::new();
        let us = |n: u64| SimTime::from_us(n).as_ps();
        r.record(1, HealthEventKind::FaultInjected, 0, us(100));
        r.record(1, HealthEventKind::Eviction, 0, us(150));
        r.record(2, HealthEventKind::Failover, 7, us(250)); // 100 µs after the eviction
        let snap = snap_with_latencies(&[5]);
        let tight = SloSpec {
            max_failover: SimTime::from_us(50),
            ..Default::default()
        };
        let report = tight.evaluate(&snap, &r.events(), 0);
        assert_eq!(report.worst_failover, Some(SimTime::from_us(100)));
        assert!(!report.pass());
        let loose = SloSpec::default().evaluate(&snap, &r.events(), 0);
        assert!(loose.pass(), "{:?}", loose.violations);
    }
}
