//! Seeded, deterministic fault injection for the simulated Aurora stack.
//!
//! A [`FaultPlan`] is an immutable description of which hardware faults a
//! simulation run should suffer: TLP drops, duplications and delay spikes
//! on the PCIe link, stalls and partial transfers in the VE user-DMA
//! engines, VE process death, and TCP peer disconnects. One plan is
//! shared (via `Arc`) by every layer of one machine; the layers consult
//! it at their named *fault sites* and the plan records every injected
//! fault as a [`FaultEvent`] (and as an `aurora-telemetry` span, category
//! `fault.*`), so a failure timeline can be replayed and compared.
//!
//! ## Determinism
//!
//! Fault decisions are **pure functions** of `(seed, site, actor,
//! ordinal)` — there is no shared RNG stream whose draw order could
//! depend on thread scheduling. Frame-level faults use the frame's
//! sequence number and send attempt as the ordinal, so whether offload
//! `seq` is dropped on attempt `k` is the same in every run with the
//! same seed, regardless of what other traffic interleaves with it.
//!
//! Timing-only faults (duplication replays, delay spikes, DMA stalls)
//! stretch virtual time but never change protocol outcomes; their
//! ordinals come from per-site counters whose order can vary across
//! threads, which is why [`FaultKind::is_timing_only`] exists —
//! deterministic-replay comparisons use [`FaultPlan::semantic_events`].
//!
//! ## Zero plans are free
//!
//! Every query short-circuits on a zero rate before touching the RNG,
//! the event log, or the telemetry layer; [`FaultPlan::killed`] is one
//! relaxed atomic load. A default ([`FaultPlan::none`]) plan therefore
//! cannot perturb virtual time or results — the cross-backend
//! equivalence tests pin this down.

use crate::rng::SplitMix64;
use crate::time::SimTime;
use crate::trace;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Named places in the simulated stack where faults are injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// The PCIe link between VH and a VE (`aurora-pcie`).
    PcieLink,
    /// A VE's user-DMA engine (`aurora-ve`).
    DmaEngine,
    /// The VE process itself (`ham_main` on the device).
    VeProcess,
    /// A TCP connection to a remote target (`ham-backend-tcp`).
    TcpLink,
}

/// What happened at a fault site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A framed message (all its TLPs) was dropped in transit: the
    /// target never sees send attempt `attempt` of offload `seq`.
    TlpDrop {
        /// Wire sequence number of the dropped frame.
        seq: u64,
        /// Which send attempt was dropped (0 = the original).
        attempt: u32,
    },
    /// A transfer's TLPs were duplicated; the link replays them
    /// (link-layer dedup preserves the data), costing `extra` time.
    TlpDup {
        /// Replay time added to the transfer.
        extra: SimTime,
    },
    /// The link stalled for `extra` before carrying the transfer.
    DelaySpike {
        /// Added latency.
        extra: SimTime,
    },
    /// A DMA engine descriptor stalled for `extra` before issue.
    DmaStall {
        /// Added engine time.
        extra: SimTime,
    },
    /// A DMA transfer completed partially and was retransmitted; the
    /// retry costs `extra` extra streaming time (data arrives intact).
    DmaPartial {
        /// Retransmission time.
        extra: SimTime,
    },
    /// The VE process died (kernel crash, OOM kill, operator action).
    VeKill,
    /// The TCP peer disconnected abruptly.
    Disconnect,
}

impl FaultKind {
    /// Timing-only faults stretch virtual time but cannot change any
    /// protocol outcome; deterministic-replay comparisons skip them
    /// because their injection order follows thread scheduling.
    pub fn is_timing_only(&self) -> bool {
        matches!(
            self,
            FaultKind::TlpDup { .. }
                | FaultKind::DelaySpike { .. }
                | FaultKind::DmaStall { .. }
                | FaultKind::DmaPartial { .. }
        )
    }
}

/// One injected fault, as recorded in the plan's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Where it was injected.
    pub site: FaultSite,
    /// Which instance of the site (VE index, target node, direction).
    pub actor: u16,
    /// What was injected.
    pub kind: FaultKind,
    /// Virtual time of the injection.
    pub at: SimTime,
}

/// Fault probabilities and magnitudes. All-zero means no faults.
#[derive(Clone, Copy, Debug)]
struct Rates {
    tlp_drop: f64,
    tlp_dup: f64,
    delay_spike: f64,
    delay_spike_by: SimTime,
    dma_stall: f64,
    dma_stall_by: SimTime,
    dma_partial: f64,
}

impl Default for Rates {
    fn default() -> Self {
        Rates {
            tlp_drop: 0.0,
            tlp_dup: 0.0,
            delay_spike: 0.0,
            delay_spike_by: SimTime::ZERO,
            dma_stall: 0.0,
            dma_stall_by: SimTime::ZERO,
            dma_partial: 0.0,
        }
    }
}

/// Builder for a [`FaultPlan`]. All rates default to zero.
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    rates: Rates,
}

impl FaultPlanBuilder {
    /// Probability that a posted frame is dropped by the link.
    pub fn tlp_drop(mut self, rate: f64) -> Self {
        self.rates.tlp_drop = rate;
        self
    }

    /// Probability that a link transfer's TLPs are replayed (doubling
    /// its wire time).
    pub fn tlp_dup(mut self, rate: f64) -> Self {
        self.rates.tlp_dup = rate;
        self
    }

    /// Probability (and size) of a latency spike on a link transfer.
    pub fn delay_spike(mut self, rate: f64, by: SimTime) -> Self {
        self.rates.delay_spike = rate;
        self.rates.delay_spike_by = by;
        self
    }

    /// Probability (and length) of a DMA-engine stall per descriptor.
    pub fn dma_stall(mut self, rate: f64, by: SimTime) -> Self {
        self.rates.dma_stall = rate;
        self.rates.dma_stall_by = by;
        self
    }

    /// Probability that a DMA transfer is partial and retransmitted.
    pub fn dma_partial(mut self, rate: f64) -> Self {
        self.rates.dma_partial = rate;
        self
    }

    /// Freeze the plan.
    pub fn build(self) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            seed: self.seed,
            rates: self.rates,
            killed: AtomicU64::new(0),
            link_draws: AtomicU64::new(0),
            dma_draws: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        })
    }
}

/// A seeded fault-injection plan shared by one simulated machine.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: Rates,
    /// Bitmask of killed actors (VE indices / target nodes < 64).
    killed: AtomicU64,
    /// Ordinal source for link-site timing draws.
    link_draws: AtomicU64,
    /// Ordinal source for DMA-site timing draws.
    dma_draws: AtomicU64,
    events: Mutex<Vec<FaultEvent>>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default everywhere).
    pub fn none() -> Arc<FaultPlan> {
        FaultPlan::builder(0).build()
    }

    /// Start building a plan for `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            rates: Rates::default(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when every rate is zero — the plan can only act through
    /// explicit [`FaultPlan::kill`] / [`FaultPlan::disconnect`] calls.
    pub fn is_zero(&self) -> bool {
        let r = &self.rates;
        r.tlp_drop == 0.0
            && r.tlp_dup == 0.0
            && r.delay_spike == 0.0
            && r.dma_stall == 0.0
            && r.dma_partial == 0.0
    }

    /// Pure draw in `[0, 1)` for `(seed, site, actor, ordinal)` —
    /// independent of call order across threads.
    fn draw(&self, site: FaultSite, actor: u16, ordinal: u64) -> f64 {
        let mut h = SplitMix64::new(
            self.seed
                .wrapping_add((site as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((actor as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(ordinal.wrapping_mul(0x94D0_49BB_1331_11EB)),
        );
        h.next_f64()
    }

    fn log(&self, site: FaultSite, actor: u16, kind: FaultKind, at: SimTime) {
        self.events.lock().push(FaultEvent {
            site,
            actor,
            kind,
            at,
        });
    }

    /// Should send attempt `attempt` of frame `seq` to `actor` be
    /// dropped? Deterministic per `(seq, attempt)`.
    pub fn drop_frame(&self, actor: u16, seq: u64, attempt: u32, now: SimTime) -> bool {
        if self.rates.tlp_drop <= 0.0 {
            return false;
        }
        let ordinal = (seq << 8) | attempt as u64;
        if self.draw(FaultSite::PcieLink, actor, ordinal) >= self.rates.tlp_drop {
            return false;
        }
        self.log(
            FaultSite::PcieLink,
            actor,
            FaultKind::TlpDrop { seq, attempt },
            now,
        );
        trace::record("fault.tlp_drop", 0, now, now);
        true
    }

    /// Extra link time for one transfer of wire time `base`: replayed
    /// TLPs (`tlp_dup`) and delay spikes. Zero when no fault fires.
    pub fn link_delay(&self, actor: u16, base: SimTime, now: SimTime) -> SimTime {
        if self.rates.tlp_dup <= 0.0 && self.rates.delay_spike <= 0.0 {
            return SimTime::ZERO;
        }
        let ordinal = self.link_draws.fetch_add(1, Ordering::Relaxed);
        let mut extra = SimTime::ZERO;
        if self.rates.tlp_dup > 0.0
            && self.draw(FaultSite::PcieLink, actor, ordinal << 1) < self.rates.tlp_dup
        {
            extra += base;
            self.log(
                FaultSite::PcieLink,
                actor,
                FaultKind::TlpDup { extra: base },
                now,
            );
            trace::record("fault.tlp_dup", 0, now, now + base);
        }
        if self.rates.delay_spike > 0.0
            && self.draw(FaultSite::PcieLink, actor, (ordinal << 1) | 1) < self.rates.delay_spike
        {
            let by = self.rates.delay_spike_by;
            extra += by;
            self.log(
                FaultSite::PcieLink,
                actor,
                FaultKind::DelaySpike { extra: by },
                now,
            );
            trace::record("fault.delay_spike", 0, now, now + by);
        }
        extra
    }

    /// Extra DMA-engine time for one descriptor whose streaming time is
    /// `stream`: stalls and partial-transfer retransmissions.
    pub fn dma_delay(&self, actor: u16, stream: SimTime, now: SimTime) -> SimTime {
        if self.rates.dma_stall <= 0.0 && self.rates.dma_partial <= 0.0 {
            return SimTime::ZERO;
        }
        let ordinal = self.dma_draws.fetch_add(1, Ordering::Relaxed);
        let mut extra = SimTime::ZERO;
        if self.rates.dma_stall > 0.0
            && self.draw(FaultSite::DmaEngine, actor, ordinal << 1) < self.rates.dma_stall
        {
            let by = self.rates.dma_stall_by;
            extra += by;
            self.log(
                FaultSite::DmaEngine,
                actor,
                FaultKind::DmaStall { extra: by },
                now,
            );
            trace::record("fault.dma_stall", 0, now, now + by);
        }
        if self.rates.dma_partial > 0.0
            && self.draw(FaultSite::DmaEngine, actor, (ordinal << 1) | 1) < self.rates.dma_partial
        {
            extra += stream;
            self.log(
                FaultSite::DmaEngine,
                actor,
                FaultKind::DmaPartial { extra: stream },
                now,
            );
            trace::record("fault.dma_partial", 0, now, now + stream);
        }
        extra
    }

    /// Kill actor `actor` (a VE process). Takes effect the next time the
    /// actor polls [`FaultPlan::killed`]. Actors ≥ 64 are rejected.
    pub fn kill(&self, actor: u16, now: SimTime) {
        assert!(actor < 64, "kill bitmask holds 64 actors");
        let bit = 1u64 << actor;
        if self.killed.fetch_or(bit, Ordering::SeqCst) & bit == 0 {
            self.log(FaultSite::VeProcess, actor, FaultKind::VeKill, now);
            trace::record("fault.ve_kill", 0, now, now);
        }
    }

    /// Has `actor` been killed? One relaxed load.
    pub fn killed(&self, actor: u16) -> bool {
        actor < 64 && self.killed.load(Ordering::Relaxed) & (1u64 << actor) != 0
    }

    /// Record an abrupt TCP disconnect of `actor` (the transport itself
    /// performs the socket shutdown).
    pub fn disconnect(&self, actor: u16, now: SimTime) {
        self.log(FaultSite::TcpLink, actor, FaultKind::Disconnect, now);
        trace::record("fault.disconnect", 0, now, now);
    }

    /// The full injected-fault timeline, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().clone()
    }

    /// Outcome-changing faults only (drops, kills, disconnects), for
    /// deterministic-replay comparison. Sorted by `(site, actor)` with
    /// per-actor injection order preserved, so runs compare regardless
    /// of cross-actor thread interleaving.
    pub fn semantic_events(&self) -> Vec<FaultEvent> {
        let mut v: Vec<FaultEvent> = self
            .events
            .lock()
            .iter()
            .filter(|e| !e.kind.is_timing_only())
            .cloned()
            .collect();
        v.sort_by_key(|e| (e.site, e.actor));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_is_free_and_silent() {
        let p = FaultPlan::none();
        assert!(p.is_zero());
        assert!(!p.drop_frame(1, 0, 0, SimTime::ZERO));
        assert_eq!(
            p.link_delay(0, SimTime::from_ns(100), SimTime::ZERO),
            SimTime::ZERO
        );
        assert_eq!(
            p.dma_delay(0, SimTime::from_ns(100), SimTime::ZERO),
            SimTime::ZERO
        );
        assert!(!p.killed(1));
        assert!(p.events().is_empty());
    }

    #[test]
    fn drop_decisions_are_pure_functions_of_seq_and_attempt() {
        let a = FaultPlan::builder(42).tlp_drop(0.3).build();
        let b = FaultPlan::builder(42).tlp_drop(0.3).build();
        // Query b in a scrambled order; decisions must match a's.
        let decisions_a: Vec<bool> = (0..200)
            .map(|seq| a.drop_frame(1, seq, 0, SimTime::ZERO))
            .collect();
        let mut decisions_b = vec![false; 200];
        for seq in (0..200u64).rev() {
            decisions_b[seq as usize] = b.drop_frame(1, seq, 0, SimTime::ZERO);
        }
        assert_eq!(decisions_a, decisions_b);
        // And the retry attempt draws independently.
        let dropped = decisions_a.iter().filter(|d| **d).count();
        assert!((30..100).contains(&dropped), "rate off: {dropped}/200");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::builder(1).tlp_drop(0.5).build();
        let b = FaultPlan::builder(2).tlp_drop(0.5).build();
        let da: Vec<bool> = (0..64)
            .map(|s| a.drop_frame(0, s, 0, SimTime::ZERO))
            .collect();
        let db: Vec<bool> = (0..64)
            .map(|s| b.drop_frame(0, s, 0, SimTime::ZERO))
            .collect();
        assert_ne!(da, db);
    }

    #[test]
    fn kill_is_sticky_logged_once_and_per_actor() {
        let p = FaultPlan::none();
        p.kill(3, SimTime::from_us(5));
        p.kill(3, SimTime::from_us(9)); // second kill: no second event
        assert!(p.killed(3));
        assert!(!p.killed(2));
        let ev = p.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].site, FaultSite::VeProcess);
        assert_eq!(ev[0].actor, 3);
        assert_eq!(ev[0].kind, FaultKind::VeKill);
        assert_eq!(ev[0].at, SimTime::from_us(5));
    }

    #[test]
    fn timing_faults_are_excluded_from_semantic_events() {
        let p = FaultPlan::builder(7)
            .tlp_dup(1.0)
            .delay_spike(1.0, SimTime::from_us(10))
            .dma_stall(1.0, SimTime::from_us(3))
            .dma_partial(1.0)
            .build();
        let extra = p.link_delay(0, SimTime::from_ns(500), SimTime::ZERO);
        assert_eq!(extra, SimTime::from_ns(500) + SimTime::from_us(10));
        let extra = p.dma_delay(2, SimTime::from_ns(800), SimTime::ZERO);
        assert_eq!(extra, SimTime::from_us(3) + SimTime::from_ns(800));
        assert_eq!(p.events().len(), 4);
        assert!(p.semantic_events().is_empty());
        p.kill(0, SimTime::ZERO);
        assert_eq!(p.semantic_events().len(), 1);
    }

    #[test]
    fn semantic_events_sort_stably_by_actor() {
        let p = FaultPlan::builder(0).tlp_drop(1.0).build();
        p.drop_frame(2, 10, 0, SimTime::ZERO);
        p.drop_frame(1, 4, 0, SimTime::ZERO);
        p.drop_frame(1, 5, 0, SimTime::ZERO);
        let ev = p.semantic_events();
        let key: Vec<(u16, FaultKind)> = ev.into_iter().map(|e| (e.actor, e.kind)).collect();
        assert_eq!(
            key,
            vec![
                (1, FaultKind::TlpDrop { seq: 4, attempt: 0 }),
                (1, FaultKind::TlpDrop { seq: 5, attempt: 0 }),
                (
                    2,
                    FaultKind::TlpDrop {
                        seq: 10,
                        attempt: 0
                    }
                ),
            ]
        );
    }
}
