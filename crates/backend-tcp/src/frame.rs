//! Length-prefixed framing over a TCP stream.

use std::io::{Read, Write};

/// Maximum accepted frame size (defensive bound against corrupt length
/// prefixes).
pub const MAX_FRAME: u32 = 64 << 20;

/// Write one frame: `u32 length ‖ body`.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    let len = body.len() as u32;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match stream.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte bound"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Control-channel operations (synchronous RPC).
#[derive(Debug, PartialEq, Eq)]
pub enum ControlOp {
    /// Allocate `bytes`; response: `u64` address.
    Alloc {
        /// Requested size.
        bytes: u64,
    },
    /// Free the allocation at `addr`; response: empty.
    Free {
        /// Allocation start.
        addr: u64,
    },
    /// Write `data` at `addr`; response: empty.
    Put {
        /// Destination address.
        addr: u64,
        /// The bytes.
        data: Vec<u8>,
    },
    /// Read `len` bytes at `addr`; response: the bytes.
    Get {
        /// Source address.
        addr: u64,
        /// Length to read.
        len: u64,
    },
    /// Health probe; response: the echoed `echo` value. The host's
    /// probe loop uses the round trip itself as the liveness signal.
    Ping {
        /// Opaque value the target echoes back.
        echo: u64,
    },
}

impl ControlOp {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ControlOp::Alloc { bytes } => {
                out.push(1);
                out.extend_from_slice(&bytes.to_le_bytes());
            }
            ControlOp::Free { addr } => {
                out.push(2);
                out.extend_from_slice(&addr.to_le_bytes());
            }
            ControlOp::Put { addr, data } => {
                out.push(3);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(data);
            }
            ControlOp::Get { addr, len } => {
                out.push(4);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
            ControlOp::Ping { echo } => {
                out.push(5);
                out.extend_from_slice(&echo.to_le_bytes());
            }
        }
        out
    }

    /// Decode from a frame body.
    pub fn decode(body: &[u8]) -> Result<ControlOp, String> {
        let take_u64 = |b: &[u8]| -> Result<u64, String> {
            b.get(..8)
                .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
                .ok_or_else(|| "truncated control frame".to_string())
        };
        match body.split_first() {
            Some((1, rest)) => Ok(ControlOp::Alloc {
                bytes: take_u64(rest)?,
            }),
            Some((2, rest)) => Ok(ControlOp::Free {
                addr: take_u64(rest)?,
            }),
            Some((3, rest)) => Ok(ControlOp::Put {
                addr: take_u64(rest)?,
                data: rest
                    .get(8..)
                    .ok_or_else(|| "truncated put".to_string())?
                    .to_vec(),
            }),
            Some((4, rest)) => Ok(ControlOp::Get {
                addr: take_u64(rest)?,
                len: take_u64(rest.get(8..).ok_or_else(|| "truncated get".to_string())?)?,
            }),
            Some((5, rest)) => Ok(ControlOp::Ping {
                echo: take_u64(rest)?,
            }),
            Some((op, _)) => Err(format!("unknown control op {op}")),
            None => Err("empty control frame".into()),
        }
    }
}

/// The target's discovery/resume handshake, written as the first frame
/// on a freshly-accepted message connection. Announces the target's
/// capabilities (the host sizes its `TargetPool` entry from them) and —
/// the resume half — the device-side dedup watermark, so the host can
/// replay exactly the provably-unexecuted in-flight frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Announce {
    /// The target's node id.
    pub node: u16,
    /// Device worker lanes (simulated VE cores).
    pub lanes: u32,
    /// Scheduler credit limit the target asks the host to respect.
    pub credit_limit: u32,
    /// Target memory size in bytes.
    pub mem_bytes: u64,
    /// Max executed seq from previous sessions (`None` on a fresh
    /// target: nothing executed yet).
    pub watermark: Option<u64>,
}

impl Announce {
    /// Encode into a frame body:
    /// `node ‖ lanes ‖ credit_limit ‖ mem_bytes ‖ wm_present ‖ wm`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(27);
        out.extend_from_slice(&self.node.to_le_bytes());
        out.extend_from_slice(&self.lanes.to_le_bytes());
        out.extend_from_slice(&self.credit_limit.to_le_bytes());
        out.extend_from_slice(&self.mem_bytes.to_le_bytes());
        match self.watermark {
            Some(w) => {
                out.push(1);
                out.extend_from_slice(&w.to_le_bytes());
            }
            None => out.push(0),
        }
        out
    }

    /// Decode from a frame body.
    pub fn decode(body: &[u8]) -> Result<Announce, String> {
        let err = || "truncated announce frame".to_string();
        let node = u16::from_le_bytes(body.get(..2).ok_or_else(err)?.try_into().expect("2"));
        let lanes = u32::from_le_bytes(body.get(2..6).ok_or_else(err)?.try_into().expect("4"));
        let credit_limit =
            u32::from_le_bytes(body.get(6..10).ok_or_else(err)?.try_into().expect("4"));
        let mem_bytes =
            u64::from_le_bytes(body.get(10..18).ok_or_else(err)?.try_into().expect("8"));
        let watermark = match body.get(18).ok_or_else(err)? {
            0 => None,
            1 => Some(u64::from_le_bytes(
                body.get(19..27).ok_or_else(err)?.try_into().expect("8"),
            )),
            b => return Err(format!("bad announce watermark tag {b}")),
        };
        Ok(Announce {
            node,
            lanes,
            credit_limit,
            mem_bytes,
            watermark,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), Vec::<u8>::new());
        assert_eq!(read_frame(&mut cur).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn torn_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err(), "EOF mid-frame");
    }

    #[test]
    fn control_ops_round_trip() {
        for op in [
            ControlOp::Alloc { bytes: 4096 },
            ControlOp::Free { addr: 64 },
            ControlOp::Put {
                addr: 128,
                data: vec![1, 2, 3],
            },
            ControlOp::Get { addr: 256, len: 16 },
            ControlOp::Ping { echo: 0xfeed },
        ] {
            let enc = op.encode();
            assert_eq!(ControlOp::decode(&enc).unwrap(), op);
        }
    }

    #[test]
    fn malformed_control_frames_rejected() {
        assert!(ControlOp::decode(&[]).is_err());
        assert!(ControlOp::decode(&[9, 0, 0]).is_err());
        assert!(ControlOp::decode(&[1, 0]).is_err());
        assert!(ControlOp::decode(&[4, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(ControlOp::decode(&[5, 1, 2]).is_err(), "truncated ping");
    }

    #[test]
    fn announce_round_trips_with_and_without_watermark() {
        for wm in [None, Some(0u64), Some(u64::MAX)] {
            let a = Announce {
                node: 3,
                lanes: 8,
                credit_limit: 64,
                mem_bytes: 1 << 20,
                watermark: wm,
            };
            assert_eq!(Announce::decode(&a.encode()).unwrap(), a);
        }
    }

    #[test]
    fn malformed_announce_rejected() {
        let good = Announce {
            node: 1,
            lanes: 8,
            credit_limit: 64,
            mem_bytes: 4096,
            watermark: Some(7),
        }
        .encode();
        assert!(Announce::decode(&good[..good.len() - 1]).is_err());
        assert!(Announce::decode(&good[..10]).is_err());
        assert!(Announce::decode(&[]).is_err());
        let mut bad_tag = good.clone();
        bad_tag[18] = 9;
        assert!(Announce::decode(&bad_tag).is_err());
    }
}
