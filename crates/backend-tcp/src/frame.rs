//! Length-prefixed framing over a TCP stream.

use std::io::{Read, Write};

/// Maximum accepted frame size (defensive bound against corrupt length
/// prefixes).
pub const MAX_FRAME: u32 = 64 << 20;

/// Write one frame: `u32 length ‖ body`.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    let len = body.len() as u32;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match stream.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte bound"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Control-channel operations (synchronous RPC).
#[derive(Debug, PartialEq, Eq)]
pub enum ControlOp {
    /// Allocate `bytes`; response: `u64` address.
    Alloc {
        /// Requested size.
        bytes: u64,
    },
    /// Free the allocation at `addr`; response: empty.
    Free {
        /// Allocation start.
        addr: u64,
    },
    /// Write `data` at `addr`; response: empty.
    Put {
        /// Destination address.
        addr: u64,
        /// The bytes.
        data: Vec<u8>,
    },
    /// Read `len` bytes at `addr`; response: the bytes.
    Get {
        /// Source address.
        addr: u64,
        /// Length to read.
        len: u64,
    },
}

impl ControlOp {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            ControlOp::Alloc { bytes } => {
                out.push(1);
                out.extend_from_slice(&bytes.to_le_bytes());
            }
            ControlOp::Free { addr } => {
                out.push(2);
                out.extend_from_slice(&addr.to_le_bytes());
            }
            ControlOp::Put { addr, data } => {
                out.push(3);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(data);
            }
            ControlOp::Get { addr, len } => {
                out.push(4);
                out.extend_from_slice(&addr.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
            }
        }
        out
    }

    /// Decode from a frame body.
    pub fn decode(body: &[u8]) -> Result<ControlOp, String> {
        let take_u64 = |b: &[u8]| -> Result<u64, String> {
            b.get(..8)
                .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
                .ok_or_else(|| "truncated control frame".to_string())
        };
        match body.split_first() {
            Some((1, rest)) => Ok(ControlOp::Alloc {
                bytes: take_u64(rest)?,
            }),
            Some((2, rest)) => Ok(ControlOp::Free {
                addr: take_u64(rest)?,
            }),
            Some((3, rest)) => Ok(ControlOp::Put {
                addr: take_u64(rest)?,
                data: rest
                    .get(8..)
                    .ok_or_else(|| "truncated put".to_string())?
                    .to_vec(),
            }),
            Some((4, rest)) => Ok(ControlOp::Get {
                addr: take_u64(rest)?,
                len: take_u64(rest.get(8..).ok_or_else(|| "truncated get".to_string())?)?,
            }),
            Some((op, _)) => Err(format!("unknown control op {op}")),
            None => Err("empty control frame".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), Vec::<u8>::new());
        assert_eq!(read_frame(&mut cur).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn torn_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err(), "EOF mid-frame");
    }

    #[test]
    fn control_ops_round_trip() {
        for op in [
            ControlOp::Alloc { bytes: 4096 },
            ControlOp::Free { addr: 64 },
            ControlOp::Put {
                addr: 128,
                data: vec![1, 2, 3],
            },
            ControlOp::Get { addr: 256, len: 16 },
        ] {
            let enc = op.encode();
            assert_eq!(ControlOp::decode(&enc).unwrap(), op);
        }
    }

    #[test]
    fn malformed_control_frames_rejected() {
        assert!(ControlOp::decode(&[]).is_err());
        assert!(ControlOp::decode(&[9, 0, 0]).is_err());
        assert!(ControlOp::decode(&[1, 0]).is_err());
        assert!(ControlOp::decode(&[4, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }
}
