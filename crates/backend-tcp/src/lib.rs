//! # ham-backend-tcp
//!
//! The TCP/IP communication backend (paper §I-A): HAM-Offload's "most
//! generic backend", focusing on "interoperability rather than
//! performance" — it enables offloading between any two machines that
//! can open a socket (the paper cites x86→ARM offloading and offloading
//! over the internet).
//!
//! Unlike the simulated Aurora backends, this one runs over **real TCP
//! sockets** (loopback by default): every frame genuinely traverses the
//! OS network stack. Virtual time is *not* modelled here — this backend
//! is measured in wall-clock terms, and the reason it is a poor fit for
//! the SX-Aurora (every VE-side socket operation would reverse-offload a
//! syscall at ~85 µs, §III-A) is quantified analytically by
//! `aurora-bench`'s `tcp_on_aurora_estimate`.
//!
//! ## Wire protocol
//!
//! Length-prefixed frames on two sockets per target:
//!
//! * **message socket** (host→target posts, target→host results):
//!   `u32 len ‖ 32-byte MsgHeader ‖ payload`;
//! * **control socket** (synchronous RPC): `u32 len ‖ op u8 ‖ body` with
//!   ops alloc/free/put/get/ping, each answered by one response frame.
//!
//! Each connection starts with a 1-byte hello tag: `'M'` (message),
//! `'C'` (control), or — cluster lifecycle only — `'Q'` (quit, unparks
//! a target waiting in `accept`).
//!
//! ## Cluster lifecycle
//!
//! [`TcpBackend::spawn_cluster`] upgrades the point-to-point transport
//! to a multi-host cluster story. On every freshly-accepted message
//! connection the target writes an [`frame::Announce`] frame first:
//! its capabilities (worker lanes, credit limit, memory) and the
//! device-side dedup **watermark** (max executed seq, monotonic across
//! sessions). A disconnect *degrades* the host-side channel — posts
//! park, in-flight work stays pending — while a per-target link
//! supervisor reconnects with bounded backoff under the
//! `RecoveryPolicy` budget. On reconnect, the re-announced watermark
//! splits the in-flight set: frames **above** it provably never
//! executed and are replayed (exactly-once preserved); frames **at or
//! below** it may have executed with the result lost, so they fail
//! with `TargetLost` rather than risk double execution. Only an
//! exhausted reconnect budget turns the degradation into an eviction.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod frame;
pub mod transport;

pub use frame::Announce;
pub use transport::{TargetSpec, TcpBackend};

/// Estimated cost model of running this backend's message exchange on
/// the SX-Aurora, where the VE has no network stack and every socket
/// operation is a reverse-offloaded syscall (§III-A): per offload, the
/// VE-side needs at least `recv` + `send` (2 syscalls) and the host-side
/// write/read complete the round trip. Returns the estimated per-offload
/// cost.
pub fn tcp_on_aurora_estimate() -> aurora_sim_core::SimTime {
    use aurora_sim_core::calib;
    // VE side: recv(2) of the offload message + send(2) of the result,
    // each a reverse-offloaded syscall through the VEOS path.
    let ve_syscalls = calib::VEO_WRITE_BASE * 2;
    // Host side: socket send + result recv (local syscalls, ~2 µs) plus
    // the loopback-equivalent transfer through host memory.
    let host_side = aurora_sim_core::SimTime::from_us(4);
    // TCP/IP protocol processing on the (slow, scalar) VE core.
    let ve_stack = aurora_sim_core::SimTime::from_us(20);
    ve_syscalls + host_side + ve_stack
}

#[cfg(test)]
mod tests {
    #[test]
    fn aurora_tcp_estimate_is_worse_than_both_protocols() {
        let est = super::tcp_on_aurora_estimate();
        // Worse than the DMA protocol by an order of magnitude and no
        // better than the VEO backend's ballpark — the paper's §III-A
        // argument for building a dedicated backend.
        assert!(est.as_us_f64() > 100.0);
        assert!(est.as_us_f64() > 6.1 * 10.0);
    }
}
