//! The TCP backend proper: real sockets, one acceptor per target.
//!
//! This is a **push** transport: a host-side reader thread per target
//! deposits result frames straight into the shared
//! [`ChannelCore`](ham_offload::chan::ChannelCore) completion queue
//! (matched by sequence number), so the backend keeps the default no-op
//! `poll_flags`/`fetch_frame` verbs.
//!
//! Two lifecycles exist. The point-to-point constructors
//! ([`TcpBackend::spawn`] family) pin the historical semantics: one
//! connection per target, and a disconnect is a permanent eviction.
//! [`TcpBackend::spawn_cluster`] grows this into the cluster story:
//! targets announce capabilities and their dedup watermark on every
//! accepted connection ([`Announce`]), a disconnect only *degrades* the
//! channel, and a per-target link supervisor re-establishes the
//! connection under the [`RecoveryPolicy`]'s bounded budget, replaying
//! exactly the provably-unexecuted in-flight frames on resume.

use crate::frame::{read_frame, write_frame, Announce, ControlOp};
use aurora_mem::RangeAllocator;
use aurora_sim_core::{Clock, FaultPlan, HealthEventKind};
use ham::message::VecMemory;
use ham::registry::HandlerKey;
use ham::wire::{MsgHeader, MsgKind, HEADER_BYTES};
use ham::{Registry, RegistryBuilder, TargetMemory};
use ham_offload::backend::{CommBackend, RawBuffer, Registrar};
use ham_offload::chan::pool::{FramePool, PooledFrame};
use ham_offload::chan::{engine, BatchConfig, ChannelCore, RecoveryPolicy, Reservation};
use ham_offload::device::{DeviceConfig, DeviceRuntime, HaltReason};
use ham_offload::target_loop::{run_target_loop, Polled, TargetChannel, TargetEnv};
use ham_offload::types::{DeviceType, NodeDescriptor, NodeId};
use ham_offload::OffloadError;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

fn io_err(e: std::io::Error) -> OffloadError {
    OffloadError::Backend(format!("tcp: {e}"))
}

/// Capabilities one cluster target announces at spawn (and re-announces
/// on every accepted connection).
#[derive(Clone, Copy, Debug)]
pub struct TargetSpec {
    /// Device worker lanes (simulated VE cores).
    pub lanes: u32,
    /// Scheduler credit limit the host's `TargetPool` respects for this
    /// target.
    pub credit_limit: u32,
    /// Target memory size in bytes.
    pub mem_bytes: u64,
    /// Suggested health-probe cadence (virtual microseconds) for this
    /// target. The pool prober derives its round interval from the
    /// smallest cadence across the address book
    /// ([`TcpBackend::probe_config`]).
    pub probe_every_us: u64,
}

impl Default for TargetSpec {
    fn default() -> Self {
        Self {
            lanes: ham_offload::device::DEFAULT_LANES as u32,
            credit_limit: ham_offload::chan::DEFAULT_PUSH_CREDITS as u32,
            mem_bytes: TcpBackend::DEFAULT_MEM,
            probe_every_us: 200,
        }
    }
}

/// Host-side state of one target's connection, shared between the
/// backend (writers) and the link supervisor thread (reader +
/// reconnector). On reconnect the supervisor swaps fresh sockets in
/// under the locks, so writers never observe a torn handoff.
struct Link {
    node: u16,
    addr: std::net::SocketAddr,
    msg_tx: Mutex<TcpStream>,
    ctrl: Mutex<TcpStream>,
    chan: Arc<ChannelCore>,
    /// Orderly shutdown in progress: the supervisor must not reconnect.
    stop: AtomicBool,
    /// Test hook: while set, reconnect attempts fail deterministically
    /// without touching the network (a simulated network blackout).
    blackout: AtomicBool,
}

struct TcpTarget {
    link: Arc<Link>,
    reader: Mutex<Option<JoinHandle<()>>>,
    server: Mutex<Option<JoinHandle<u64>>>,
    mem_bytes: u64,
    lanes: u32,
}

/// A pre-activated target slot.
fn filled(t: TcpTarget) -> OnceLock<TcpTarget> {
    let slot = OnceLock::new();
    let _ = slot.set(t);
    slot
}

/// Spawn one cluster target peer and connect to it: bind a loopback
/// acceptor, start the target main loop, run the discovery handshake
/// (read its [`Announce`]) and start the host-side link supervisor.
/// Shared by the cluster constructors and [`TcpBackend::join_target`].
fn spawn_cluster_target(
    node: u16,
    spec: TargetSpec,
    registry: Registry,
    batch: BatchConfig,
    budget: u32,
    metrics: &Arc<aurora_sim_core::BackendMetrics>,
    clock: &Clock,
) -> std::io::Result<(TcpTarget, Announce)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let server = std::thread::Builder::new()
        .name(format!("tcp-target-{node}"))
        .spawn(move || cluster_target_main(node, listener, spec, registry))?;

    let (msg, ctrl, announce) = connect_pair(addr)?;
    let msg_rx = msg.try_clone()?;
    // The announced credit limit bounds scheduler admission for this
    // host; the replay-only recovery policy keeps sent frames around
    // for the resume handshake.
    let chan = Arc::new(
        ChannelCore::unbounded()
            .with_batching(batch)
            .with_credit_limit(announce.credit_limit as usize)
            .with_recovery(RecoveryPolicy::replay_only(budget)),
    );
    let link = Arc::new(Link {
        node,
        addr,
        msg_tx: Mutex::new(msg),
        ctrl: Mutex::new(ctrl),
        chan,
        stop: AtomicBool::new(false),
        blackout: AtomicBool::new(false),
    });
    let link2 = Arc::clone(&link);
    let metrics2 = Arc::clone(metrics);
    let clock2 = clock.clone();
    let reader = std::thread::Builder::new()
        .name(format!("tcp-link-{node}"))
        .spawn(move || run_link(&link2, msg_rx, &metrics2, &clock2, budget))?;
    Ok((
        TcpTarget {
            link,
            reader: Mutex::new(Some(reader)),
            server: Mutex::new(Some(server)),
            mem_bytes: announce.mem_bytes,
            lanes: announce.lanes,
        },
        announce,
    ))
}

/// The TCP/IP communication backend.
///
/// Target slots are fixed at spawn, but a slot need not be *active*:
/// [`TcpBackend::spawn_cluster_with_reserve`] leaves the reserve tail
/// vacant and [`TcpBackend::join_target`] activates a vacant slot later
/// via the same discovery handshake the constructor uses. `OnceLock`
/// keeps the slot addresses stable so `channel()` can keep handing out
/// `&ChannelCore` borrows while other slots join.
pub struct TcpBackend {
    host_registry: Arc<Registry>,
    targets: Vec<OnceLock<TcpTarget>>,
    /// Address book: the announce spec each slot (active or vacant) is
    /// spawned from. Indexed like `targets`.
    book: Vec<TargetSpec>,
    batch: BatchConfig,
    /// Reconnect budget per disconnect (cluster lifecycle only).
    budget: u32,
    registrar: Arc<Registrar>,
    /// Serialises `join_target` activations per backend.
    join_lock: Mutex<()>,
    clock: Clock,
    metrics: Arc<aurora_sim_core::BackendMetrics>,
    plan: Arc<FaultPlan>,
    /// Cluster lifecycle ([`TcpBackend::spawn_cluster`]): disconnects
    /// degrade + reconnect instead of evicting.
    cluster: bool,
}

/// The target-process side of one TCP channel. A dedicated reader
/// thread decodes socket frames into `rx`, so the device runtime's
/// non-blocking window drain is a plain channel poll — the stream
/// itself can never be half-read by a `try_recv`.
struct TcpSideChannel {
    rx: crossbeam::channel::Receiver<(MsgHeader, Vec<u8>)>,
    tx: Mutex<TcpStream>,
}

impl TargetChannel for TcpSideChannel {
    fn recv(&self, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)> {
        self.rx.recv().ok().map(|(h, p)| (h, pool.adopt(p)))
    }

    fn try_recv(&self, pool: &Arc<FramePool>) -> Polled {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok((h, p)) => Polled::Msg(h, pool.adopt(p)),
            Err(TryRecvError::Empty) => Polled::Empty,
            Err(TryRecvError::Disconnected) => Polled::Closed,
        }
    }

    fn send_result(&self, reply_slot: u16, seq: u64, payload: Vec<u8>) {
        let header = MsgHeader {
            handler_key: HandlerKey(0),
            payload_len: payload.len() as u32,
            kind: MsgKind::Result,
            reply_slot,
            corr: 0,
            seq,
        };
        let mut body = header.encode().to_vec();
        body.extend_from_slice(&payload);
        let _ = write_frame(&mut *self.tx.lock(), &body);
    }
}

/// Serve control RPCs over one connection until EOF/error. Shared by
/// the point-to-point target and every cluster session.
fn serve_ctrl(mut stream: TcpStream, mem: &VecMemory, alloc: &Mutex<RangeAllocator>) {
    let respond = |stream: &mut TcpStream, ok: bool, body: &[u8]| {
        let mut frame = Vec::with_capacity(body.len() + 1);
        frame.push(u8::from(!ok));
        frame.extend_from_slice(body);
        write_frame(stream, &frame)
    };
    while let Ok(Some(body)) = read_frame(&mut stream) {
        let result: Result<Vec<u8>, String> = match ControlOp::decode(&body) {
            Err(e) => Err(e),
            Ok(ControlOp::Alloc { bytes }) => alloc
                .lock()
                .alloc(bytes, 8)
                .map(|a| a.to_le_bytes().to_vec())
                .map_err(|e| e.to_string()),
            Ok(ControlOp::Free { addr }) => alloc
                .lock()
                .free(addr)
                .map(|_| Vec::new())
                .map_err(|e| e.to_string()),
            Ok(ControlOp::Put { addr, data }) => mem
                .mem_write(addr, &data)
                .map(|_| Vec::new())
                .map_err(|e| e.to_string()),
            Ok(ControlOp::Get { addr, len }) => {
                let mut out = vec![0u8; len as usize];
                mem.mem_read(addr, &mut out)
                    .map(|_| out)
                    .map_err(|e| e.to_string())
            }
            Ok(ControlOp::Ping { echo }) => Ok(echo.to_le_bytes().to_vec()),
        };
        let done = match result {
            Ok(body) => respond(&mut stream, true, &body),
            Err(msg) => respond(&mut stream, false, msg.as_bytes()),
        };
        if done.is_err() {
            break;
        }
    }
}

/// Spawn a reader thread that decodes socket frames into a queue so
/// the device runtime can poll without blocking; it exits when the
/// peer closes the socket.
fn spawn_frame_reader(
    name: String,
    mut stream: TcpStream,
) -> (
    crossbeam::channel::Receiver<(MsgHeader, Vec<u8>)>,
    JoinHandle<()>,
) {
    let (frame_tx, frame_rx) = crossbeam::channel::unbounded();
    let handle = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            while let Ok(Some(body)) = read_frame(&mut stream) {
                let Ok(header) = MsgHeader::decode(&body) else {
                    break;
                };
                if body.len() != header.wire_len() {
                    break;
                }
                if frame_tx
                    .send((header, body[HEADER_BYTES..].to_vec()))
                    .is_err()
                {
                    break;
                }
            }
        })
        .expect("spawn reader thread");
    (frame_rx, handle)
}

/// The target "process": serves the control RPC and the message loop.
fn target_main(node: u16, listener: TcpListener, mem_bytes: u64, registry: Registry) -> u64 {
    // Accept the two connections; a 1-byte hello tags each.
    let mut msg_stream: Option<TcpStream> = None;
    let mut ctrl_stream: Option<TcpStream> = None;
    while msg_stream.is_none() || ctrl_stream.is_none() {
        let (mut s, _) = listener.accept().expect("accept");
        s.set_nodelay(true).ok();
        let mut tag = [0u8; 1];
        s.read_exact(&mut tag).expect("hello tag");
        match tag[0] {
            b'M' => msg_stream = Some(s),
            b'C' => ctrl_stream = Some(s),
            other => panic!("unknown hello {other}"),
        }
    }
    let msg_stream = msg_stream.expect("message socket");
    let ctrl_stream = ctrl_stream.expect("control socket");

    let mem = Arc::new(VecMemory::new(mem_bytes as usize));
    let alloc = Arc::new(Mutex::new(RangeAllocator::new(mem_bytes)));

    // Control RPC loop on its own thread.
    let mem2 = Arc::clone(&mem);
    let alloc2 = Arc::clone(&alloc);
    let ctrl_thread = std::thread::Builder::new()
        .name(format!("tcp-target-{node}-ctrl"))
        .spawn(move || serve_ctrl(ctrl_stream, &mem2, &alloc2))
        .expect("spawn ctrl thread");

    // The HAM message loop over the message socket.
    let reader_rx = msg_stream.try_clone().expect("clone msg stream");
    let (frame_rx, reader_thread) =
        spawn_frame_reader(format!("tcp-target-{node}-reader"), reader_rx);
    let chan = TcpSideChannel {
        rx: frame_rx,
        tx: Mutex::new(msg_stream),
    };
    let served = run_target_loop(node, &registry, &*mem, &chan);
    let _ = reader_thread.join();
    let _ = ctrl_thread.join();
    served
}

/// The cluster target "process": memory, allocator, and the dedup
/// watermark live *outside* the accept loop, so they survive
/// disconnects. Each accepted connection pair starts a new device
/// session that first announces capabilities + watermark on the message
/// socket, then serves frames until the link drops
/// ([`HaltReason::Closed`] — loop back to accept) or a `Control` frame
/// arrives ([`HaltReason::Control`] — exit). A `'Q'` hello terminates a
/// target parked in `accept`.
fn cluster_target_main(
    node: u16,
    listener: TcpListener,
    spec: TargetSpec,
    registry: Registry,
) -> u64 {
    let mem = Arc::new(VecMemory::new(spec.mem_bytes as usize));
    let alloc = Arc::new(Mutex::new(RangeAllocator::new(spec.mem_bytes)));
    let runtime = DeviceRuntime::new(DeviceConfig::new().with_lanes(spec.lanes as usize));
    let mut watermark: Option<u64> = None;
    let mut served_total: u64 = 0;
    loop {
        let mut msg_stream: Option<TcpStream> = None;
        let mut ctrl_stream: Option<TcpStream> = None;
        while msg_stream.is_none() || ctrl_stream.is_none() {
            let Ok((mut s, _)) = listener.accept() else {
                return served_total;
            };
            s.set_nodelay(true).ok();
            let mut tag = [0u8; 1];
            if s.read_exact(&mut tag).is_err() {
                continue;
            }
            match tag[0] {
                b'M' => msg_stream = Some(s),
                b'C' => ctrl_stream = Some(s),
                b'Q' => return served_total,
                // A half-open leftover from a torn-down connection
                // attempt: drop it and keep accepting.
                _ => continue,
            }
        }
        let mut msg_stream = msg_stream.expect("message socket");
        let ctrl_stream = ctrl_stream.expect("control socket");

        // Discovery/resume handshake: first frame on the fresh message
        // connection. A write failure means the host vanished between
        // connect and announce — go back to accepting.
        let announce = Announce {
            node,
            lanes: spec.lanes,
            credit_limit: spec.credit_limit,
            mem_bytes: spec.mem_bytes,
            watermark,
        };
        if write_frame(&mut msg_stream, &announce.encode()).is_err() {
            continue;
        }

        let mem2 = Arc::clone(&mem);
        let alloc2 = Arc::clone(&alloc);
        let ctrl_thread = std::thread::Builder::new()
            .name(format!("tcp-target-{node}-ctrl"))
            .spawn(move || serve_ctrl(ctrl_stream, &mem2, &alloc2))
            .expect("spawn ctrl thread");
        let reader_rx = msg_stream.try_clone().expect("clone msg stream");
        let (frame_rx, reader_thread) =
            spawn_frame_reader(format!("tcp-target-{node}-reader"), reader_rx);
        let chan = TcpSideChannel {
            rx: frame_rx,
            tx: Mutex::new(msg_stream),
        };
        let env = TargetEnv {
            node,
            registry: &registry,
            mem: &*mem,
            reverse: None,
            meter: None,
            // Push transport: many host threads post, seqs may reach the
            // wire out of order, so watermark dedup must stay off. The
            // resume handshake does not need it — the host only replays
            // frames *above* the announced watermark, which were
            // provably never executed.
            dedup: false,
        };
        let end = runtime.run_session(&env, &chan, watermark);
        watermark = end.watermark;
        served_total += end.served;
        // Drop the session's write half so the reader threads unblock.
        let _ = chan.tx.lock().shutdown(std::net::Shutdown::Both);
        let _ = reader_thread.join();
        let _ = ctrl_thread.join();
        if end.reason == HaltReason::Control {
            return served_total;
        }
    }
}

/// Host side of the connection handshake: open tagged message + control
/// sockets, then read the target's [`Announce`] off the message socket.
/// (The target writes the announce only once *both* sockets are
/// accepted, so the control socket must connect before the read.)
fn connect_pair(addr: std::net::SocketAddr) -> std::io::Result<(TcpStream, TcpStream, Announce)> {
    let mut msg = TcpStream::connect(addr)?;
    msg.set_nodelay(true).ok();
    msg.write_all(b"M")?;
    let mut ctrl = TcpStream::connect(addr)?;
    ctrl.set_nodelay(true).ok();
    ctrl.write_all(b"C")?;
    let body = read_frame(&mut msg)?.ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "no announce frame")
    })?;
    let announce = Announce::decode(&body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok((msg, ctrl, announce))
}

/// Per-target link supervisor (cluster lifecycle). Deposits result
/// frames into the channel core; on EOF it degrades the channel (posts
/// park, nothing is evicted), then drives bounded-backoff reconnect
/// attempts. A successful reconnect swaps fresh sockets in under the
/// [`Link`] locks, resumes the channel against the re-announced
/// watermark, and replays the provably-unexecuted frames. Only an
/// exhausted budget evicts.
fn run_link(
    link: &Link,
    mut msg_rx: TcpStream,
    metrics: &aurora_sim_core::BackendMetrics,
    clock: &Clock,
    budget: u32,
) {
    let node = link.node;
    let lost = || OffloadError::TargetLost(NodeId(node));
    'session: loop {
        // ---- Deposit: pump result frames until the link drops ----
        while let Ok(Some(body)) = read_frame(&mut msg_rx) {
            if let Ok(header) = MsgHeader::decode(&body) {
                if header.kind == MsgKind::Result && body.len() == header.wire_len() {
                    link.chan.deposit(header.seq, body[HEADER_BYTES..].to_vec());
                }
            }
        }
        if link.stop.load(Ordering::SeqCst)
            || link.chan.is_shutdown()
            || link.chan.eviction().is_some()
        {
            return;
        }
        // ---- Degrade: park posts, keep every pending entry alive ----
        // (`send_frame` may have degraded first on a write error; the
        // Disconnect event is recorded once, by whoever won.)
        if link.chan.degrade(lost()).is_some() {
            metrics
                .health()
                .record(node, HealthEventKind::Disconnect, 0, clock.now().as_ps());
        }
        // ---- Reconnect: bounded backoff under the policy budget ----
        let mut backoff = Duration::from_micros(500);
        for _ in 0..budget {
            if link.stop.load(Ordering::SeqCst) {
                return;
            }
            metrics.on_reconnect_attempt();
            let attempt = if link.blackout.load(Ordering::SeqCst) {
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "reconnect blackout",
                ))
            } else {
                connect_pair(link.addr)
            };
            if let Ok((msg, ctrl, announce)) = attempt {
                if link.stop.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(rx) = msg.try_clone() else {
                    continue;
                };
                *link.msg_tx.lock() = msg;
                *link.ctrl.lock() = ctrl;
                // Resume: replay what the watermark proves unexecuted,
                // fail the possibly-executed rest with `TargetLost`.
                let mut replay_ok = true;
                if let Some(report) = link.chan.resume(announce.watermark, lost()) {
                    let mut tx = link.msg_tx.lock();
                    let mut replayed = 0u64;
                    for f in &report.replay {
                        if write_frame(&mut *tx, &f.frame).is_err() {
                            replay_ok = false;
                            break;
                        }
                        replayed += 1;
                    }
                    metrics.on_replay(replayed);
                }
                metrics.on_reconnect();
                metrics
                    .health()
                    .record(node, HealthEventKind::Reconnect, 0, clock.now().as_ps());
                if replay_ok {
                    msg_rx = rx;
                    continue 'session;
                }
                // The fresh connection died mid-replay: degrade again
                // and keep burning this disconnect's budget.
                if link.chan.degrade(lost()).is_some() {
                    metrics.health().record(
                        node,
                        HealthEventKind::Disconnect,
                        0,
                        clock.now().as_ps(),
                    );
                }
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(20));
        }
        // ---- Budget exhausted: the disconnect becomes an eviction ----
        if link.chan.evict(lost()).is_some() {
            metrics.on_evict();
            metrics
                .health()
                .record(node, HealthEventKind::Eviction, 0, clock.now().as_ps());
        }
        return;
    }
}

impl TcpBackend {
    /// Default per-target memory.
    pub const DEFAULT_MEM: u64 = 16 << 20;

    /// Spawn `n` targets as in-process "remote" peers connected over
    /// loopback TCP.
    pub fn spawn(
        n: u16,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_with_memory(n, Self::DEFAULT_MEM, registrar)
    }

    /// Spawn with an explicit per-target memory size.
    pub fn spawn_with_memory(
        n: u16,
        mem_bytes: u64,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_with_faults(n, mem_bytes, FaultPlan::none(), registrar)
    }

    /// [`TcpBackend::spawn`] with small-message batching: consecutive
    /// `post()`s coalesce into one wire frame per the watermarks.
    pub fn spawn_batched(
        n: u16,
        batch: BatchConfig,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_inner(n, Self::DEFAULT_MEM, FaultPlan::none(), batch, registrar)
    }

    /// [`TcpBackend::spawn_with_memory`] under a deterministic
    /// [`FaultPlan`] (used by [`CommBackend::kill_target`] to record
    /// injected disconnects). TCP is a push transport with no recovery
    /// policy: a dead peer is detected by the reader thread's EOF, which
    /// evicts the channel with [`OffloadError::TargetLost`]. An
    /// all-zero plan behaves identically to
    /// [`TcpBackend::spawn_with_memory`].
    pub fn spawn_with_faults(
        n: u16,
        mem_bytes: u64,
        plan: Arc<FaultPlan>,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_inner(n, mem_bytes, plan, BatchConfig::default(), registrar)
    }

    fn spawn_inner(
        n: u16,
        mem_bytes: u64,
        plan: Arc<FaultPlan>,
        batch: BatchConfig,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        let registrar: Arc<Registrar> = Arc::new(registrar);
        let build = |seed: u64| {
            let mut b = RegistryBuilder::new();
            registrar(&mut b);
            b.seal(seed)
        };
        let host_registry = Arc::new(build(0x7463_7000)); // "tcp"
        let metrics = Arc::new(aurora_sim_core::BackendMetrics::new());
        for node in 1..=n {
            metrics.health().register(node);
        }
        let clock = Clock::new();
        let targets = (1..=n)
            .map(|node| {
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
                let addr = listener.local_addr().expect("local addr");
                let registry = build(0x7463_7000 + node as u64);
                let server = std::thread::Builder::new()
                    .name(format!("tcp-target-{node}"))
                    .spawn(move || target_main(node, listener, mem_bytes, registry))
                    .expect("spawn tcp target");

                let mut msg = TcpStream::connect(addr).expect("connect msg");
                msg.write_all(b"M").expect("hello M");
                msg.set_nodelay(true).ok();
                let mut ctrl = TcpStream::connect(addr).expect("connect ctrl");
                ctrl.write_all(b"C").expect("hello C");
                ctrl.set_nodelay(true).ok();

                // Host-side result reader: deposits completions straight
                // into the channel core, matched by sequence number.
                // TCP streams have no slot arrays; the explicit credit
                // limit keeps scheduler admission bounded anyway.
                let chan = Arc::new(
                    ChannelCore::unbounded()
                        .with_batching(batch)
                        .with_credit_limit(ham_offload::chan::DEFAULT_PUSH_CREDITS),
                );
                let chan2 = Arc::clone(&chan);
                let metrics2 = Arc::clone(&metrics);
                let clock2 = clock.clone();
                let mut msg_rx = msg.try_clone().expect("clone msg stream");
                let reader = std::thread::Builder::new()
                    .name(format!("tcp-host-reader-{node}"))
                    .spawn(move || {
                        while let Ok(Some(body)) = read_frame(&mut msg_rx) {
                            if let Ok(header) = MsgHeader::decode(&body) {
                                if header.kind == MsgKind::Result && body.len() == header.wire_len()
                                {
                                    chan2.deposit(header.seq, body[HEADER_BYTES..].to_vec());
                                }
                            }
                        }
                        // EOF or socket error. During an orderly shutdown
                        // the channel gate is already closed; anything
                        // else is a peer death — evict so every in-flight
                        // offload fails with `TargetLost` instead of
                        // hanging, and new posts are refused.
                        if !chan2.is_shutdown()
                            && chan2
                                .evict(OffloadError::TargetLost(NodeId(node)))
                                .is_some()
                        {
                            metrics2.on_evict();
                            metrics2.health().record(
                                node,
                                aurora_sim_core::HealthEventKind::Eviction,
                                0,
                                clock2.now().as_ps(),
                            );
                        }
                    })
                    .expect("spawn reader");

                filled(TcpTarget {
                    link: Arc::new(Link {
                        node,
                        addr,
                        msg_tx: Mutex::new(msg),
                        ctrl: Mutex::new(ctrl),
                        chan,
                        stop: AtomicBool::new(false),
                        blackout: AtomicBool::new(false),
                    }),
                    reader: Mutex::new(Some(reader)),
                    server: Mutex::new(Some(server)),
                    mem_bytes,
                    lanes: 1,
                })
            })
            .collect();
        let book = vec![
            TargetSpec {
                lanes: 1,
                credit_limit: ham_offload::chan::DEFAULT_PUSH_CREDITS as u32,
                mem_bytes,
                ..TargetSpec::default()
            };
            n as usize
        ];
        Arc::new(Self {
            host_registry,
            targets,
            book,
            batch,
            budget: 0,
            registrar,
            join_lock: Mutex::new(()),
            clock,
            metrics,
            plan,
            cluster: false,
        })
    }

    /// Spawn a multi-host cluster of targets described by `specs`
    /// (target `i` gets node id `i + 1`). Unlike the point-to-point
    /// constructors, a disconnect here *degrades* the target instead of
    /// evicting it: a per-target link supervisor re-establishes the
    /// connection with bounded backoff (at most `policy.max_retries`
    /// attempts per disconnect), re-reads the target's [`Announce`], and
    /// replays exactly the in-flight frames the announced watermark
    /// proves unexecuted. Only when the reconnect budget is exhausted is
    /// the target evicted.
    ///
    /// The `policy`'s retry budget drives reconnects; its miss-based
    /// retry half is coerced to [`RecoveryPolicy::replay_only`] because
    /// spurious re-sends on a live TCP stream would double-execute
    /// (the push transport runs without device-side dedup).
    pub fn spawn_cluster(
        specs: &[TargetSpec],
        policy: RecoveryPolicy,
        plan: Arc<FaultPlan>,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_cluster_batched(specs, policy, BatchConfig::default(), plan, registrar)
    }

    /// [`TcpBackend::spawn_cluster`] with small-message batching.
    pub fn spawn_cluster_batched(
        specs: &[TargetSpec],
        policy: RecoveryPolicy,
        batch: BatchConfig,
        plan: Arc<FaultPlan>,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::cluster_inner(specs, &[], policy, batch, plan, Arc::new(registrar))
    }

    /// [`TcpBackend::spawn_cluster`] plus an address book of *reserve*
    /// slots: node ids `active.len()+1 ..= active.len()+reserve.len()`
    /// exist (they count toward [`CommBackend::num_targets`]) but no
    /// process-analogue is spawned and no connection made until
    /// [`TcpBackend::join_target`] activates them. Until then their
    /// verbs fail with [`OffloadError::BadNode`].
    pub fn spawn_cluster_with_reserve(
        active: &[TargetSpec],
        reserve: &[TargetSpec],
        policy: RecoveryPolicy,
        plan: Arc<FaultPlan>,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::cluster_inner(
            active,
            reserve,
            policy,
            BatchConfig::default(),
            plan,
            Arc::new(registrar),
        )
    }

    fn cluster_inner(
        active: &[TargetSpec],
        reserve: &[TargetSpec],
        policy: RecoveryPolicy,
        batch: BatchConfig,
        plan: Arc<FaultPlan>,
        registrar: Arc<Registrar>,
    ) -> Arc<Self> {
        let build = |seed: u64| {
            let mut b = RegistryBuilder::new();
            registrar(&mut b);
            b.seal(seed)
        };
        let host_registry = Arc::new(build(0x7463_7000)); // "tcp"
        let metrics = Arc::new(aurora_sim_core::BackendMetrics::new());
        for node in 1..=active.len() as u16 {
            metrics.health().register(node);
        }
        let clock = Clock::new();
        let budget = policy.max_retries.max(1);
        let mut targets: Vec<OnceLock<TcpTarget>> = active
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let node = (i + 1) as u16;
                let registry = build(0x7463_7000 + node as u64);
                let (target, _announce) =
                    spawn_cluster_target(node, *spec, registry, batch, budget, &metrics, &clock)
                        .expect("cluster handshake");
                filled(target)
            })
            .collect();
        // Reserve slots: known to the address book, vacant until joined.
        targets.extend((0..reserve.len()).map(|_| OnceLock::new()));
        let book = active.iter().chain(reserve).copied().collect();
        Arc::new(Self {
            host_registry,
            targets,
            book,
            batch,
            budget,
            registrar,
            join_lock: Mutex::new(()),
            clock,
            metrics,
            plan,
            cluster: true,
        })
    }

    /// Activate a vacant reserve slot on a *running* cluster backend:
    /// spawn the target peer from its address-book [`TargetSpec`], run
    /// the same discovery handshake the constructor uses (the target
    /// [`Announce`]s its capabilities and watermark), and start the
    /// per-link supervisor. Returns the announced capabilities.
    ///
    /// Errors: non-cluster backends, out-of-range ids, and slots that
    /// are already active. Joining is serialised per backend; a joined
    /// target is probe-able and poolable the moment this returns.
    pub fn join_target(&self, node: NodeId) -> Result<Announce, OffloadError> {
        if !self.cluster {
            return Err(OffloadError::Backend(
                "tcp: join_target requires a cluster backend".into(),
            ));
        }
        if node.is_host() || node.0 as usize > self.targets.len() {
            return Err(OffloadError::BadNode(node));
        }
        let _guard = self.join_lock.lock();
        let idx = node.0 as usize - 1;
        if self.targets[idx].get().is_some() {
            return Err(OffloadError::Backend(format!(
                "tcp: node {} already joined",
                node.0
            )));
        }
        let registry = {
            let mut b = RegistryBuilder::new();
            (self.registrar)(&mut b);
            b.seal(0x7463_7000 + u64::from(node.0))
        };
        let (t, announce) = spawn_cluster_target(
            node.0,
            self.book[idx],
            registry,
            self.batch,
            self.budget,
            &self.metrics,
            &self.clock,
        )
        .map_err(io_err)?;
        let _ = self.targets[idx].set(t);
        self.metrics.health().register(node.0);
        Ok(announce)
    }

    /// True once `node`'s slot holds a live connection (constructed
    /// active, or activated by [`TcpBackend::join_target`]).
    pub fn is_joined(&self, node: NodeId) -> bool {
        !node.is_host()
            && self
                .targets
                .get(node.0 as usize - 1)
                .is_some_and(|s| s.get().is_some())
    }

    /// Derive a pool [`ProbeConfig`](ham_offload::sched::ProbeConfig)
    /// from the address book: the round interval is the smallest
    /// `probe_every_us` any slot asked for, so the chattiest target's
    /// cadence bounds staleness for everyone.
    pub fn probe_config(&self) -> ham_offload::sched::ProbeConfig {
        let us = self
            .book
            .iter()
            .map(|s| s.probe_every_us.max(1))
            .min()
            .unwrap_or(200);
        ham_offload::sched::ProbeConfig {
            every: aurora_sim_core::SimTime::from_us(us),
            poll: Duration::from_micros(us),
            ..ham_offload::sched::ProbeConfig::default()
        }
    }

    /// Test/ops hook: while `on`, reconnect attempts for `node` fail
    /// deterministically without touching the network, as if the target
    /// host were unreachable. Lets tests hold a target in `Degraded`
    /// and observe the budgeted `Degraded → Evicted` transition.
    pub fn block_reconnect(&self, node: NodeId, on: bool) -> Result<(), OffloadError> {
        self.target(node)?.link.blackout.store(on, Ordering::SeqCst);
        Ok(())
    }

    /// Health probe: a `Ping` round trip over the control socket. On
    /// success records a [`HealthEventKind::Probe`] observation for the
    /// node. Failures surface as errors (a degraded link already
    /// recorded its `Disconnect`).
    pub fn probe(&self, node: NodeId) -> Result<(), OffloadError> {
        let echo = 0x70_69_6e_67_u64 ^ u64::from(node.0); // "ping"
        let resp = self.control(node, ControlOp::Ping { echo })?;
        if resp.get(..8) != Some(&echo.to_le_bytes()[..]) {
            return Err(OffloadError::Backend("bad ping echo".into()));
        }
        self.metrics
            .health()
            .record(node.0, HealthEventKind::Probe, 0, self.clock.now().as_ps());
        Ok(())
    }

    fn target(&self, node: NodeId) -> Result<&TcpTarget, OffloadError> {
        if node.is_host() {
            return Err(OffloadError::BadNode(node));
        }
        self.targets
            .get(node.0 as usize - 1)
            .and_then(OnceLock::get)
            .ok_or(OffloadError::BadNode(node))
    }

    /// Synchronous control RPC.
    fn control(&self, node: NodeId, op: ControlOp) -> Result<Vec<u8>, OffloadError> {
        let t = self.target(node)?;
        if t.link.chan.is_shutdown() {
            return Err(OffloadError::Shutdown);
        }
        if self.cluster && t.link.chan.is_degraded() {
            // The control socket is down too; fail fast instead of
            // writing into a dead stream while the supervisor reconnects.
            return Err(OffloadError::Backend(format!(
                "tcp: node {} link degraded, reconnecting",
                node.0
            )));
        }
        let mut stream = t.link.ctrl.lock();
        write_frame(&mut *stream, &op.encode()).map_err(io_err)?;
        let resp = read_frame(&mut *stream)
            .map_err(io_err)?
            .ok_or(OffloadError::Shutdown)?;
        match resp.split_first() {
            Some((0, body)) => Ok(body.to_vec()),
            Some((_, msg)) => Err(OffloadError::Mem(String::from_utf8_lossy(msg).into_owned())),
            None => Err(OffloadError::Backend("empty control response".into())),
        }
    }
}

impl CommBackend for TcpBackend {
    fn num_targets(&self) -> u16 {
        self.targets.len() as u16
    }

    fn host_registry(&self) -> &Arc<Registry> {
        &self.host_registry
    }

    fn descriptor(&self, node: NodeId) -> Result<NodeDescriptor, OffloadError> {
        if node.is_host() {
            return Ok(NodeDescriptor {
                node,
                name: "tcp host".into(),
                device_type: DeviceType::Host,
                memory_bytes: 0,
                cores: 1,
            });
        }
        let t = self.target(node)?;
        Ok(NodeDescriptor {
            node,
            name: format!("tcp target {} @ {}", node.0, t.link.addr),
            device_type: DeviceType::Generic,
            memory_bytes: t.mem_bytes,
            cores: t.lanes.max(1),
        })
    }

    fn channel(&self, target: NodeId) -> Result<&ChannelCore, OffloadError> {
        Ok(&self.target(target)?.link.chan)
    }

    fn send_frame(
        &self,
        target: NodeId,
        _res: &Reservation,
        _header: &MsgHeader,
        frame: &[u8],
    ) -> Result<(), OffloadError> {
        let t = self.target(target)?;
        match write_frame(&mut *t.link.msg_tx.lock(), frame) {
            Ok(()) => Ok(()),
            Err(e) if self.cluster && t.link.chan.eviction().is_none() => {
                // The socket died under this post. Degrade (the link
                // supervisor also sees EOF; first one records the
                // Disconnect) and report success: the engine then stores
                // the frame in the replay buffer, and the resume
                // handshake replays it iff the watermark proves it never
                // executed — a partially-flushed frame that *did* reach
                // the target lands at or below the watermark and fails
                // with `TargetLost` instead of double-executing.
                let _ = e;
                if t.link
                    .chan
                    .degrade(OffloadError::TargetLost(target))
                    .is_some()
                {
                    self.metrics.health().record(
                        target.0,
                        HealthEventKind::Disconnect,
                        0,
                        self.clock.now().as_ps(),
                    );
                }
                Ok(())
            }
            Err(e) => Err(io_err(e)),
        }
    }

    fn allocate(&self, node: NodeId, bytes: u64) -> Result<u64, OffloadError> {
        let resp = self.control(node, ControlOp::Alloc { bytes })?;
        resp.get(..8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .ok_or_else(|| OffloadError::Backend("short alloc response".into()))
    }

    fn free(&self, node: NodeId, addr: u64) -> Result<(), OffloadError> {
        self.control(node, ControlOp::Free { addr }).map(|_| ())
    }

    fn put_bytes(&self, dst: RawBuffer, data: &[u8]) -> Result<(), OffloadError> {
        self.control(
            dst.node,
            ControlOp::Put {
                addr: dst.addr,
                data: data.to_vec(),
            },
        )
        .map(|_| ())
    }

    fn get_bytes(&self, src: RawBuffer, out: &mut [u8]) -> Result<(), OffloadError> {
        let resp = self.control(
            src.node,
            ControlOp::Get {
                addr: src.addr,
                len: out.len() as u64,
            },
        )?;
        if resp.len() != out.len() {
            return Err(OffloadError::Backend("short get response".into()));
        }
        out.copy_from_slice(&resp);
        Ok(())
    }

    fn host_clock(&self) -> &Clock {
        &self.clock
    }

    fn metrics(&self) -> &aurora_sim_core::BackendMetrics {
        &self.metrics
    }

    /// A real `Ping` round trip over the control socket (the default
    /// trait probe only inspects host-side channel state).
    fn probe(&self, target: NodeId) -> Result<(), OffloadError> {
        TcpBackend::probe(self, target)
    }

    /// Kill one peer abruptly: both sockets are torn down with no
    /// Control handshake, as if the remote process died. The reader
    /// thread observes EOF and evicts the channel; the ctrl and server
    /// threads unblock on their dead sockets and exit.
    fn kill_target(&self, target: NodeId) -> Result<(), OffloadError> {
        let t = self.target(target)?;
        self.plan.disconnect(target.0, self.clock.now());
        let _ = t.link.msg_tx.lock().shutdown(std::net::Shutdown::Both);
        let _ = t.link.ctrl.lock().shutdown(std::net::Shutdown::Both);
        if !self.cluster {
            // Latch the eviction before returning rather than leaving
            // it to the reader thread's EOF handling: otherwise a
            // caller can observe every in-flight future failed (via
            // send-side errors) while `eviction()` is still unset for a
            // scheduling beat — `TargetPool::prune` would briefly keep
            // the dead target. `evict` is idempotent, so whichever of
            // this call and the reader loses the race becomes a no-op.
            if t.link
                .chan
                .evict(OffloadError::TargetLost(target))
                .is_some()
            {
                self.metrics.on_evict();
                self.metrics.health().record(
                    target.0,
                    aurora_sim_core::HealthEventKind::Eviction,
                    0,
                    self.clock.now().as_ps(),
                );
            }
        }
        Ok(())
    }

    fn shutdown(&self) {
        for node in 1..=self.num_targets() {
            let t = match self.target(NodeId(node)) {
                Ok(t) => t,
                Err(_) => continue,
            };
            // Stop the link supervisor from reconnecting past this point.
            t.link.stop.store(true, Ordering::SeqCst);
            if t.link.chan.begin_shutdown() {
                continue;
            }
            if self.cluster && t.link.chan.is_degraded() {
                // Shutting down mid-reconnect: there is no live link to
                // drain staged work into, so fail what's left instead of
                // spinning on a parked flush.
                let _ = t.link.chan.evict(OffloadError::Shutdown);
            } else {
                // Staged batch members must reach the wire before the
                // terminator (the shutdown gate lets an accumulated batch
                // drain); errors mean the peer is already gone.
                let _ = engine::flush(self, NodeId(node));
                // Terminate the message loop with a Control frame, written
                // directly (no reservation: a terminating target sends no
                // result back).
                let header = MsgHeader {
                    handler_key: HandlerKey(0),
                    payload_len: 0,
                    kind: MsgKind::Control,
                    reply_slot: 0,
                    corr: 0,
                    seq: u64::MAX,
                };
                let _ = write_frame(&mut *t.link.msg_tx.lock(), &header.encode());
            }
            // Close the sockets so the ctrl loop and reader unblock.
            let _ = t.link.msg_tx.lock().shutdown(std::net::Shutdown::Both);
            let _ = t.link.ctrl.lock().shutdown(std::net::Shutdown::Both);
            if self.cluster {
                // A cluster target that lost its session parks in
                // `accept`; a 'Q' hello tells it to exit instead of
                // waiting for a connection that will never come.
                if let Ok(mut s) = TcpStream::connect(t.link.addr) {
                    let _ = s.write_all(b"Q");
                }
            }
            if let Some(h) = t.server.lock().take() {
                let _ = h.join();
            }
            if let Some(h) = t.reader.lock().take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for TcpBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham::f2f;
    use ham_offload::Offload;

    ham::ham_kernel! {
        pub fn over_the_wire(ctx, addr: u64, n: u64) -> f64 {
            ctx.mem.read_f64s(addr, n as usize).unwrap().iter().sum()
        }
    }

    ham::ham_kernel! {
        pub fn node_echo(ctx) -> u16 { ctx.node }
    }

    fn registrar(b: &mut RegistryBuilder) {
        b.register::<over_the_wire>();
        b.register::<node_echo>();
    }

    #[test]
    fn offload_over_real_tcp() {
        let o = Offload::new(TcpBackend::spawn(1, registrar));
        assert_eq!(o.sync(NodeId(1), f2f!(node_echo)).unwrap(), 1);
        o.shutdown();
    }

    #[test]
    fn buffers_travel_through_sockets() {
        let o = Offload::new(TcpBackend::spawn(1, registrar));
        let t = NodeId(1);
        let b = o.allocate::<f64>(t, 16).unwrap();
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        o.put(&data, b).unwrap();
        let mut back = vec![0.0f64; 16];
        o.get(b, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(o.sync(t, f2f!(over_the_wire, b.addr(), 16)).unwrap(), 120.0);
        o.free(b).unwrap();
        o.shutdown();
    }

    #[test]
    fn multiple_tcp_targets() {
        let o = Offload::new(TcpBackend::spawn(3, registrar));
        let futures: Vec<_> = (1..=3u16)
            .map(|n| o.async_(NodeId(n), f2f!(node_echo)).unwrap())
            .collect();
        let nodes: Vec<u16> = futures.into_iter().map(|f| f.get().unwrap()).collect();
        assert_eq!(nodes, vec![1, 2, 3]);
        let d = o.get_node_descriptor(NodeId(2)).unwrap();
        assert!(d.name.contains("127.0.0.1"), "{}", d.name);
        o.shutdown();
    }

    #[test]
    fn pipelined_posts_on_one_socket() {
        let o = Offload::new(TcpBackend::spawn(1, registrar));
        let futures: Vec<_> = (0..50)
            .map(|_| o.async_(NodeId(1), f2f!(node_echo)).unwrap())
            .collect();
        for f in futures {
            assert_eq!(f.get().unwrap(), 1);
        }
        o.shutdown();
    }

    #[test]
    fn wait_all_gathers_across_targets() {
        let o = Offload::new(TcpBackend::spawn(2, registrar));
        let futures: Vec<_> = (0..8u16)
            .map(|i| o.async_(NodeId(1 + i % 2), f2f!(node_echo)).unwrap())
            .collect();
        let nodes: Vec<u16> = o
            .wait_all(futures)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(nodes, vec![1, 2, 1, 2, 1, 2, 1, 2]);
        o.shutdown();
    }

    #[test]
    fn shutdown_then_use_fails_cleanly() {
        let o = Offload::new(TcpBackend::spawn(1, registrar));
        o.shutdown();
        o.shutdown(); // idempotent
        assert!(o.sync(NodeId(1), f2f!(node_echo)).is_err());
        assert!(o.allocate::<f64>(NodeId(1), 4).is_err());
    }

    #[test]
    fn target_allocator_errors_travel_back() {
        let o = Offload::new(TcpBackend::spawn_with_memory(1, 1024, registrar));
        assert!(matches!(
            o.allocate::<f64>(NodeId(1), 4096),
            Err(OffloadError::Mem(_))
        ));
        o.shutdown();
    }
}
