//! The TCP backend proper: real sockets, one acceptor per target.
//!
//! This is a **push** transport: a host-side reader thread per target
//! deposits result frames straight into the shared
//! [`ChannelCore`](ham_offload::chan::ChannelCore) completion queue
//! (matched by sequence number), so the backend keeps the default no-op
//! `poll_flags`/`fetch_frame` verbs.

use crate::frame::{read_frame, write_frame, ControlOp};
use aurora_mem::RangeAllocator;
use aurora_sim_core::{Clock, FaultPlan};
use ham::message::VecMemory;
use ham::registry::HandlerKey;
use ham::wire::{MsgHeader, MsgKind, HEADER_BYTES};
use ham::{Registry, RegistryBuilder, TargetMemory};
use ham_offload::backend::{CommBackend, RawBuffer, Registrar};
use ham_offload::chan::pool::{FramePool, PooledFrame};
use ham_offload::chan::{engine, BatchConfig, ChannelCore, Reservation};
use ham_offload::target_loop::{run_target_loop, Polled, TargetChannel};
use ham_offload::types::{DeviceType, NodeDescriptor, NodeId};
use ham_offload::OffloadError;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

fn io_err(e: std::io::Error) -> OffloadError {
    OffloadError::Backend(format!("tcp: {e}"))
}

struct TcpTarget {
    addr: std::net::SocketAddr,
    msg_tx: Mutex<TcpStream>,
    ctrl: Mutex<TcpStream>,
    chan: Arc<ChannelCore>,
    reader: Mutex<Option<JoinHandle<()>>>,
    server: Mutex<Option<JoinHandle<u64>>>,
    mem_bytes: u64,
}

/// The TCP/IP communication backend.
pub struct TcpBackend {
    host_registry: Arc<Registry>,
    targets: Vec<TcpTarget>,
    clock: Clock,
    metrics: Arc<aurora_sim_core::BackendMetrics>,
    plan: Arc<FaultPlan>,
}

/// The target-process side of one TCP channel. A dedicated reader
/// thread decodes socket frames into `rx`, so the device runtime's
/// non-blocking window drain is a plain channel poll — the stream
/// itself can never be half-read by a `try_recv`.
struct TcpSideChannel {
    rx: crossbeam::channel::Receiver<(MsgHeader, Vec<u8>)>,
    tx: Mutex<TcpStream>,
}

impl TargetChannel for TcpSideChannel {
    fn recv(&self, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)> {
        self.rx.recv().ok().map(|(h, p)| (h, pool.adopt(p)))
    }

    fn try_recv(&self, pool: &Arc<FramePool>) -> Polled {
        use crossbeam::channel::TryRecvError;
        match self.rx.try_recv() {
            Ok((h, p)) => Polled::Msg(h, pool.adopt(p)),
            Err(TryRecvError::Empty) => Polled::Empty,
            Err(TryRecvError::Disconnected) => Polled::Closed,
        }
    }

    fn send_result(&self, reply_slot: u16, seq: u64, payload: Vec<u8>) {
        let header = MsgHeader {
            handler_key: HandlerKey(0),
            payload_len: payload.len() as u32,
            kind: MsgKind::Result,
            reply_slot,
            corr: 0,
            seq,
        };
        let mut body = header.encode().to_vec();
        body.extend_from_slice(&payload);
        let _ = write_frame(&mut *self.tx.lock(), &body);
    }
}

/// The target "process": serves the control RPC and the message loop.
fn target_main(node: u16, listener: TcpListener, mem_bytes: u64, registry: Registry) -> u64 {
    // Accept the two connections; a 1-byte hello tags each.
    let mut msg_stream: Option<TcpStream> = None;
    let mut ctrl_stream: Option<TcpStream> = None;
    while msg_stream.is_none() || ctrl_stream.is_none() {
        let (mut s, _) = listener.accept().expect("accept");
        s.set_nodelay(true).ok();
        let mut tag = [0u8; 1];
        s.read_exact(&mut tag).expect("hello tag");
        match tag[0] {
            b'M' => msg_stream = Some(s),
            b'C' => ctrl_stream = Some(s),
            other => panic!("unknown hello {other}"),
        }
    }
    let msg_stream = msg_stream.expect("message socket");
    let mut ctrl_stream = ctrl_stream.expect("control socket");

    let mem = Arc::new(VecMemory::new(mem_bytes as usize));
    let alloc = Mutex::new(RangeAllocator::new(mem_bytes));

    // Control RPC loop on its own thread.
    let mem2 = Arc::clone(&mem);
    let ctrl_thread = std::thread::Builder::new()
        .name(format!("tcp-target-{node}-ctrl"))
        .spawn(move || {
            let respond = |stream: &mut TcpStream, ok: bool, body: &[u8]| {
                let mut frame = Vec::with_capacity(body.len() + 1);
                frame.push(u8::from(!ok));
                frame.extend_from_slice(body);
                write_frame(stream, &frame)
            };
            while let Ok(Some(body)) = read_frame(&mut ctrl_stream) {
                let result: Result<Vec<u8>, String> = match ControlOp::decode(&body) {
                    Err(e) => Err(e),
                    Ok(ControlOp::Alloc { bytes }) => alloc
                        .lock()
                        .alloc(bytes, 8)
                        .map(|a| a.to_le_bytes().to_vec())
                        .map_err(|e| e.to_string()),
                    Ok(ControlOp::Free { addr }) => alloc
                        .lock()
                        .free(addr)
                        .map(|_| Vec::new())
                        .map_err(|e| e.to_string()),
                    Ok(ControlOp::Put { addr, data }) => mem2
                        .mem_write(addr, &data)
                        .map(|_| Vec::new())
                        .map_err(|e| e.to_string()),
                    Ok(ControlOp::Get { addr, len }) => {
                        let mut out = vec![0u8; len as usize];
                        mem2.mem_read(addr, &mut out)
                            .map(|_| out)
                            .map_err(|e| e.to_string())
                    }
                };
                let done = match result {
                    Ok(body) => respond(&mut ctrl_stream, true, &body),
                    Err(msg) => respond(&mut ctrl_stream, false, msg.as_bytes()),
                };
                if done.is_err() {
                    break;
                }
            }
        })
        .expect("spawn ctrl thread");

    // The HAM message loop over the message socket. A reader thread
    // decodes socket frames into a queue so the device runtime can poll
    // without blocking; it exits when the host closes the socket.
    let mut reader_rx = msg_stream.try_clone().expect("clone msg stream");
    let (frame_tx, frame_rx) = crossbeam::channel::unbounded();
    let reader_thread = std::thread::Builder::new()
        .name(format!("tcp-target-{node}-reader"))
        .spawn(move || {
            while let Ok(Some(body)) = read_frame(&mut reader_rx) {
                let Ok(header) = MsgHeader::decode(&body) else {
                    break;
                };
                if body.len() != header.wire_len() {
                    break;
                }
                if frame_tx
                    .send((header, body[HEADER_BYTES..].to_vec()))
                    .is_err()
                {
                    break;
                }
            }
        })
        .expect("spawn reader thread");
    let chan = TcpSideChannel {
        rx: frame_rx,
        tx: Mutex::new(msg_stream),
    };
    let served = run_target_loop(node, &registry, &*mem, &chan);
    let _ = reader_thread.join();
    let _ = ctrl_thread.join();
    served
}

impl TcpBackend {
    /// Default per-target memory.
    pub const DEFAULT_MEM: u64 = 16 << 20;

    /// Spawn `n` targets as in-process "remote" peers connected over
    /// loopback TCP.
    pub fn spawn(
        n: u16,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_with_memory(n, Self::DEFAULT_MEM, registrar)
    }

    /// Spawn with an explicit per-target memory size.
    pub fn spawn_with_memory(
        n: u16,
        mem_bytes: u64,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_with_faults(n, mem_bytes, FaultPlan::none(), registrar)
    }

    /// [`TcpBackend::spawn`] with small-message batching: consecutive
    /// `post()`s coalesce into one wire frame per the watermarks.
    pub fn spawn_batched(
        n: u16,
        batch: BatchConfig,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_inner(n, Self::DEFAULT_MEM, FaultPlan::none(), batch, registrar)
    }

    /// [`TcpBackend::spawn_with_memory`] under a deterministic
    /// [`FaultPlan`] (used by [`CommBackend::kill_target`] to record
    /// injected disconnects). TCP is a push transport with no recovery
    /// policy: a dead peer is detected by the reader thread's EOF, which
    /// evicts the channel with [`OffloadError::TargetLost`]. An
    /// all-zero plan behaves identically to
    /// [`TcpBackend::spawn_with_memory`].
    pub fn spawn_with_faults(
        n: u16,
        mem_bytes: u64,
        plan: Arc<FaultPlan>,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        Self::spawn_inner(n, mem_bytes, plan, BatchConfig::default(), registrar)
    }

    fn spawn_inner(
        n: u16,
        mem_bytes: u64,
        plan: Arc<FaultPlan>,
        batch: BatchConfig,
        registrar: impl Fn(&mut RegistryBuilder) + Send + Sync + 'static,
    ) -> Arc<Self> {
        let registrar: Arc<Registrar> = Arc::new(registrar);
        let build = |seed: u64| {
            let mut b = RegistryBuilder::new();
            registrar(&mut b);
            b.seal(seed)
        };
        let host_registry = Arc::new(build(0x7463_7000)); // "tcp"
        let metrics = Arc::new(aurora_sim_core::BackendMetrics::new());
        for node in 1..=n {
            metrics.health().register(node);
        }
        let clock = Clock::new();
        let targets = (1..=n)
            .map(|node| {
                let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback listener");
                let addr = listener.local_addr().expect("local addr");
                let registry = build(0x7463_7000 + node as u64);
                let server = std::thread::Builder::new()
                    .name(format!("tcp-target-{node}"))
                    .spawn(move || target_main(node, listener, mem_bytes, registry))
                    .expect("spawn tcp target");

                let mut msg = TcpStream::connect(addr).expect("connect msg");
                msg.write_all(b"M").expect("hello M");
                msg.set_nodelay(true).ok();
                let mut ctrl = TcpStream::connect(addr).expect("connect ctrl");
                ctrl.write_all(b"C").expect("hello C");
                ctrl.set_nodelay(true).ok();

                // Host-side result reader: deposits completions straight
                // into the channel core, matched by sequence number.
                // TCP streams have no slot arrays; the explicit credit
                // limit keeps scheduler admission bounded anyway.
                let chan = Arc::new(
                    ChannelCore::unbounded()
                        .with_batching(batch)
                        .with_credit_limit(ham_offload::chan::DEFAULT_PUSH_CREDITS),
                );
                let chan2 = Arc::clone(&chan);
                let metrics2 = Arc::clone(&metrics);
                let clock2 = clock.clone();
                let mut msg_rx = msg.try_clone().expect("clone msg stream");
                let reader = std::thread::Builder::new()
                    .name(format!("tcp-host-reader-{node}"))
                    .spawn(move || {
                        while let Ok(Some(body)) = read_frame(&mut msg_rx) {
                            if let Ok(header) = MsgHeader::decode(&body) {
                                if header.kind == MsgKind::Result && body.len() == header.wire_len()
                                {
                                    chan2.deposit(header.seq, body[HEADER_BYTES..].to_vec());
                                }
                            }
                        }
                        // EOF or socket error. During an orderly shutdown
                        // the channel gate is already closed; anything
                        // else is a peer death — evict so every in-flight
                        // offload fails with `TargetLost` instead of
                        // hanging, and new posts are refused.
                        if !chan2.is_shutdown()
                            && chan2
                                .evict(OffloadError::TargetLost(NodeId(node)))
                                .is_some()
                        {
                            metrics2.on_evict();
                            metrics2.health().record(
                                node,
                                aurora_sim_core::HealthEventKind::Eviction,
                                0,
                                clock2.now().as_ps(),
                            );
                        }
                    })
                    .expect("spawn reader");

                TcpTarget {
                    addr,
                    msg_tx: Mutex::new(msg),
                    ctrl: Mutex::new(ctrl),
                    chan,
                    reader: Mutex::new(Some(reader)),
                    server: Mutex::new(Some(server)),
                    mem_bytes,
                }
            })
            .collect();
        Arc::new(Self {
            host_registry,
            targets,
            clock,
            metrics,
            plan,
        })
    }

    fn target(&self, node: NodeId) -> Result<&TcpTarget, OffloadError> {
        if node.is_host() {
            return Err(OffloadError::BadNode(node));
        }
        self.targets
            .get(node.0 as usize - 1)
            .ok_or(OffloadError::BadNode(node))
    }

    /// Synchronous control RPC.
    fn control(&self, node: NodeId, op: ControlOp) -> Result<Vec<u8>, OffloadError> {
        let t = self.target(node)?;
        if t.chan.is_shutdown() {
            return Err(OffloadError::Shutdown);
        }
        let mut stream = t.ctrl.lock();
        write_frame(&mut *stream, &op.encode()).map_err(io_err)?;
        let resp = read_frame(&mut *stream)
            .map_err(io_err)?
            .ok_or(OffloadError::Shutdown)?;
        match resp.split_first() {
            Some((0, body)) => Ok(body.to_vec()),
            Some((_, msg)) => Err(OffloadError::Mem(String::from_utf8_lossy(msg).into_owned())),
            None => Err(OffloadError::Backend("empty control response".into())),
        }
    }
}

impl CommBackend for TcpBackend {
    fn num_targets(&self) -> u16 {
        self.targets.len() as u16
    }

    fn host_registry(&self) -> &Arc<Registry> {
        &self.host_registry
    }

    fn descriptor(&self, node: NodeId) -> Result<NodeDescriptor, OffloadError> {
        if node.is_host() {
            return Ok(NodeDescriptor {
                node,
                name: "tcp host".into(),
                device_type: DeviceType::Host,
                memory_bytes: 0,
                cores: 1,
            });
        }
        let t = self.target(node)?;
        Ok(NodeDescriptor {
            node,
            name: format!("tcp target {} @ {}", node.0, t.addr),
            device_type: DeviceType::Generic,
            memory_bytes: t.mem_bytes,
            cores: 1,
        })
    }

    fn channel(&self, target: NodeId) -> Result<&ChannelCore, OffloadError> {
        Ok(&self.target(target)?.chan)
    }

    fn send_frame(
        &self,
        target: NodeId,
        _res: &Reservation,
        _header: &MsgHeader,
        frame: &[u8],
    ) -> Result<(), OffloadError> {
        let t = self.target(target)?;
        write_frame(&mut *t.msg_tx.lock(), frame).map_err(io_err)
    }

    fn allocate(&self, node: NodeId, bytes: u64) -> Result<u64, OffloadError> {
        let resp = self.control(node, ControlOp::Alloc { bytes })?;
        resp.get(..8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
            .ok_or_else(|| OffloadError::Backend("short alloc response".into()))
    }

    fn free(&self, node: NodeId, addr: u64) -> Result<(), OffloadError> {
        self.control(node, ControlOp::Free { addr }).map(|_| ())
    }

    fn put_bytes(&self, dst: RawBuffer, data: &[u8]) -> Result<(), OffloadError> {
        self.control(
            dst.node,
            ControlOp::Put {
                addr: dst.addr,
                data: data.to_vec(),
            },
        )
        .map(|_| ())
    }

    fn get_bytes(&self, src: RawBuffer, out: &mut [u8]) -> Result<(), OffloadError> {
        let resp = self.control(
            src.node,
            ControlOp::Get {
                addr: src.addr,
                len: out.len() as u64,
            },
        )?;
        if resp.len() != out.len() {
            return Err(OffloadError::Backend("short get response".into()));
        }
        out.copy_from_slice(&resp);
        Ok(())
    }

    fn host_clock(&self) -> &Clock {
        &self.clock
    }

    fn metrics(&self) -> &aurora_sim_core::BackendMetrics {
        &self.metrics
    }

    /// Kill one peer abruptly: both sockets are torn down with no
    /// Control handshake, as if the remote process died. The reader
    /// thread observes EOF and evicts the channel; the ctrl and server
    /// threads unblock on their dead sockets and exit.
    fn kill_target(&self, target: NodeId) -> Result<(), OffloadError> {
        let t = self.target(target)?;
        self.plan.disconnect(target.0, self.clock.now());
        let _ = t.msg_tx.lock().shutdown(std::net::Shutdown::Both);
        let _ = t.ctrl.lock().shutdown(std::net::Shutdown::Both);
        Ok(())
    }

    fn shutdown(&self) {
        for node in 1..=self.num_targets() {
            let t = match self.target(NodeId(node)) {
                Ok(t) => t,
                Err(_) => continue,
            };
            if t.chan.begin_shutdown() {
                continue;
            }
            // Staged batch members must reach the wire before the
            // terminator (the shutdown gate lets an accumulated batch
            // drain); errors mean the peer is already gone.
            let _ = engine::flush(self, NodeId(node));
            // Terminate the message loop with a Control frame, written
            // directly (no reservation: a terminating target sends no
            // result back).
            let header = MsgHeader {
                handler_key: HandlerKey(0),
                payload_len: 0,
                kind: MsgKind::Control,
                reply_slot: 0,
                corr: 0,
                seq: u64::MAX,
            };
            let _ = write_frame(&mut *t.msg_tx.lock(), &header.encode());
            // Close the sockets so the ctrl loop and reader unblock.
            let _ = t.msg_tx.lock().shutdown(std::net::Shutdown::Both);
            let _ = t.ctrl.lock().shutdown(std::net::Shutdown::Both);
            if let Some(h) = t.server.lock().take() {
                let _ = h.join();
            }
            if let Some(h) = t.reader.lock().take() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for TcpBackend {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham::f2f;
    use ham_offload::Offload;

    ham::ham_kernel! {
        pub fn over_the_wire(ctx, addr: u64, n: u64) -> f64 {
            ctx.mem.read_f64s(addr, n as usize).unwrap().iter().sum()
        }
    }

    ham::ham_kernel! {
        pub fn node_echo(ctx) -> u16 { ctx.node }
    }

    fn registrar(b: &mut RegistryBuilder) {
        b.register::<over_the_wire>();
        b.register::<node_echo>();
    }

    #[test]
    fn offload_over_real_tcp() {
        let o = Offload::new(TcpBackend::spawn(1, registrar));
        assert_eq!(o.sync(NodeId(1), f2f!(node_echo)).unwrap(), 1);
        o.shutdown();
    }

    #[test]
    fn buffers_travel_through_sockets() {
        let o = Offload::new(TcpBackend::spawn(1, registrar));
        let t = NodeId(1);
        let b = o.allocate::<f64>(t, 16).unwrap();
        let data: Vec<f64> = (0..16).map(|i| i as f64).collect();
        o.put(&data, b).unwrap();
        let mut back = vec![0.0f64; 16];
        o.get(b, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(o.sync(t, f2f!(over_the_wire, b.addr(), 16)).unwrap(), 120.0);
        o.free(b).unwrap();
        o.shutdown();
    }

    #[test]
    fn multiple_tcp_targets() {
        let o = Offload::new(TcpBackend::spawn(3, registrar));
        let futures: Vec<_> = (1..=3u16)
            .map(|n| o.async_(NodeId(n), f2f!(node_echo)).unwrap())
            .collect();
        let nodes: Vec<u16> = futures.into_iter().map(|f| f.get().unwrap()).collect();
        assert_eq!(nodes, vec![1, 2, 3]);
        let d = o.get_node_descriptor(NodeId(2)).unwrap();
        assert!(d.name.contains("127.0.0.1"), "{}", d.name);
        o.shutdown();
    }

    #[test]
    fn pipelined_posts_on_one_socket() {
        let o = Offload::new(TcpBackend::spawn(1, registrar));
        let futures: Vec<_> = (0..50)
            .map(|_| o.async_(NodeId(1), f2f!(node_echo)).unwrap())
            .collect();
        for f in futures {
            assert_eq!(f.get().unwrap(), 1);
        }
        o.shutdown();
    }

    #[test]
    fn wait_all_gathers_across_targets() {
        let o = Offload::new(TcpBackend::spawn(2, registrar));
        let futures: Vec<_> = (0..8u16)
            .map(|i| o.async_(NodeId(1 + i % 2), f2f!(node_echo)).unwrap())
            .collect();
        let nodes: Vec<u16> = o
            .wait_all(futures)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(nodes, vec![1, 2, 1, 2, 1, 2, 1, 2]);
        o.shutdown();
    }

    #[test]
    fn shutdown_then_use_fails_cleanly() {
        let o = Offload::new(TcpBackend::spawn(1, registrar));
        o.shutdown();
        o.shutdown(); // idempotent
        assert!(o.sync(NodeId(1), f2f!(node_echo)).is_err());
        assert!(o.allocate::<f64>(NodeId(1), 4).is_err());
    }

    #[test]
    fn target_allocator_errors_travel_back() {
        let o = Offload::new(TcpBackend::spawn_with_memory(1, 1024, registrar));
        assert!(matches!(
            o.allocate::<f64>(NodeId(1), 4096),
            Err(OffloadError::Mem(_))
        ));
        o.shutdown();
    }
}
