//! Page tables and page sizes.
//!
//! The privileged DMA path translates virtual to physical addresses page
//! by page inside VEOS (§I-B, §III-D); the number of pages a transfer
//! touches therefore feeds directly into its modeled cost, and the page
//! size is a first-order performance knob ("it is important to use huge
//! pages of at least 2 MiB", §V-B).

use crate::MemError;
use aurora_sim_core::calib;
use std::collections::HashMap;

/// Page sizes supported by the simulated platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// 4 KiB default pages.
    Small4K,
    /// 2 MiB huge pages (the paper's recommendation).
    Huge2M,
    /// 64 MiB VE pages (the VE's native large page).
    Huge64M,
}

impl PageSize {
    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Small4K => calib::SMALL_PAGE_BYTES,
            PageSize::Huge2M => calib::HUGE_PAGE_BYTES,
            PageSize::Huge64M => 64 * 1024 * 1024,
        }
    }

    /// Number of pages a range of `len` bytes starting at `addr` touches.
    pub fn pages_touched(self, addr: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let p = self.bytes();
        let first = addr / p;
        let last = (addr + len - 1) / p;
        last - first + 1
    }
}

/// A single-level page table for one address space.
///
/// Maps virtual page numbers to physical offsets within one backing
/// memory. Contiguity of the physical side is *not* assumed — exactly why
/// the DMA manager must translate per page.
#[derive(Debug)]
pub struct PageTable {
    page: PageSize,
    /// vpn → physical page offset (byte offset of the frame).
    map: HashMap<u64, u64>,
    translations: std::cell::Cell<u64>,
}

impl PageTable {
    /// New empty table with the given page size.
    pub fn new(page: PageSize) -> Self {
        Self {
            page,
            map: HashMap::new(),
            translations: std::cell::Cell::new(0),
        }
    }

    /// This table's page size.
    pub fn page_size(&self) -> PageSize {
        self.page
    }

    /// Map the virtual range `[vaddr, vaddr+len)` to the physical range
    /// starting at `paddr`. Both must be page-aligned; the physical range
    /// is contiguous in this call (callers may issue many calls to build a
    /// scattered mapping).
    pub fn map_range(&mut self, vaddr: u64, paddr: u64, len: u64) -> Result<(), MemError> {
        let p = self.page.bytes();
        if !vaddr.is_multiple_of(p) {
            return Err(MemError::Misaligned {
                offset: vaddr,
                align: p,
            });
        }
        if !paddr.is_multiple_of(p) {
            return Err(MemError::Misaligned {
                offset: paddr,
                align: p,
            });
        }
        let pages = len.div_ceil(p);
        for i in 0..pages {
            self.map.insert(vaddr / p + i, paddr + i * p);
        }
        Ok(())
    }

    /// Remove mappings covering `[vaddr, vaddr+len)`.
    pub fn unmap_range(&mut self, vaddr: u64, len: u64) {
        let p = self.page.bytes();
        let first = vaddr / p;
        let pages = len.div_ceil(p);
        for i in 0..pages {
            self.map.remove(&(first + i));
        }
    }

    /// Translate one virtual address to its physical address.
    pub fn translate(&self, vaddr: u64) -> Result<u64, MemError> {
        let p = self.page.bytes();
        self.translations.set(self.translations.get() + 1);
        let frame = self
            .map
            .get(&(vaddr / p))
            .ok_or(MemError::NotMapped { addr: vaddr })?;
        Ok(frame + vaddr % p)
    }

    /// Translate a range page by page, returning `(paddr, chunk_len)`
    /// pieces — the scatter list a DMA descriptor ring would receive.
    pub fn translate_range(&self, vaddr: u64, len: u64) -> Result<Vec<(u64, u64)>, MemError> {
        let p = self.page.bytes();
        let mut out = Vec::new();
        let mut cur = vaddr;
        let end = vaddr
            .checked_add(len)
            .ok_or(MemError::NotMapped { addr: vaddr })?;
        while cur < end {
            let page_end = (cur / p + 1) * p;
            let chunk = page_end.min(end) - cur;
            let pa = self.translate(cur)?;
            // Merge with the previous chunk when physically contiguous —
            // what the improved DMA manager's bulk translation achieves.
            if let Some(last) = out.last_mut() {
                let (lpa, llen): &mut (u64, u64) = last;
                if *lpa + *llen == pa {
                    *llen += chunk;
                    cur += chunk;
                    continue;
                }
            }
            out.push((pa, chunk));
            cur += chunk;
        }
        Ok(out)
    }

    /// Number of `translate` calls served (cost accounting).
    pub fn translation_count(&self) -> u64 {
        self.translations.get()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn page_sizes() {
        assert_eq!(PageSize::Small4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Huge64M.bytes(), 64 * 1024 * 1024);
    }

    #[test]
    fn pages_touched_counts_boundaries() {
        let p = PageSize::Small4K;
        assert_eq!(p.pages_touched(0, 0), 0);
        assert_eq!(p.pages_touched(0, 1), 1);
        assert_eq!(p.pages_touched(0, 4096), 1);
        assert_eq!(p.pages_touched(0, 4097), 2);
        assert_eq!(p.pages_touched(4095, 2), 2, "straddles a boundary");
        assert_eq!(p.pages_touched(4096, 4096), 1);
    }

    #[test]
    fn identity_map_translates() {
        let mut pt = PageTable::new(PageSize::Small4K);
        pt.map_range(0, 0, 64 * 1024).unwrap();
        assert_eq!(pt.translate(0).unwrap(), 0);
        assert_eq!(pt.translate(5000).unwrap(), 5000);
        assert_eq!(pt.mapped_pages(), 16);
        assert!(pt.translate(64 * 1024).is_err());
    }

    #[test]
    fn scattered_map_translates_per_page() {
        let mut pt = PageTable::new(PageSize::Small4K);
        // Virtual [0, 8K) → physical frames at 100K and 4K (reversed).
        pt.map_range(0, 100 * 4096, 4096).unwrap();
        pt.map_range(4096, 4096, 4096).unwrap();
        assert_eq!(pt.translate(10).unwrap(), 100 * 4096 + 10);
        assert_eq!(pt.translate(4096 + 10).unwrap(), 4096 + 10);
        let chunks = pt.translate_range(0, 8192).unwrap();
        assert_eq!(chunks, vec![(100 * 4096, 4096), (4096, 4096)]);
    }

    #[test]
    fn contiguous_chunks_merge() {
        let mut pt = PageTable::new(PageSize::Small4K);
        pt.map_range(0, 0x10000, 16 * 4096).unwrap();
        let chunks = pt.translate_range(100, 8 * 4096).unwrap();
        assert_eq!(chunks.len(), 1, "physically contiguous → one descriptor");
        assert_eq!(chunks[0], (0x10000 + 100, 8 * 4096));
    }

    #[test]
    fn unmap_removes() {
        let mut pt = PageTable::new(PageSize::Huge2M);
        let p = PageSize::Huge2M.bytes();
        pt.map_range(0, 0, 4 * p).unwrap();
        pt.unmap_range(p, 2 * p);
        assert!(pt.translate(0).is_ok());
        assert!(pt.translate(p).is_err());
        assert!(pt.translate(3 * p).is_ok());
    }

    #[test]
    fn misaligned_map_rejected() {
        let mut pt = PageTable::new(PageSize::Small4K);
        assert!(matches!(
            pt.map_range(5, 0, 4096),
            Err(MemError::Misaligned { .. })
        ));
        assert!(matches!(
            pt.map_range(0, 5, 4096),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn translation_counter_counts() {
        let mut pt = PageTable::new(PageSize::Small4K);
        pt.map_range(0, 0, 16 * 4096).unwrap();
        pt.translate_range(0, 16 * 4096).unwrap();
        assert_eq!(pt.translation_count(), 16);
    }

    proptest! {
        /// translate_range pieces cover exactly [vaddr, vaddr+len) in order.
        #[test]
        fn translate_range_covers(len in 1u64..100_000, start in 0u64..50_000) {
            let mut pt = PageTable::new(PageSize::Small4K);
            pt.map_range(0, 1 << 20, 1 << 20).unwrap(); // identity + 1 MiB
            prop_assume!(start + len <= 1 << 20);
            let chunks = pt.translate_range(start, len).unwrap();
            let total: u64 = chunks.iter().map(|c| c.1).sum();
            prop_assert_eq!(total, len);
            // Contiguous mapping ⇒ merged to a single chunk.
            prop_assert_eq!(chunks.len(), 1);
            prop_assert_eq!(chunks[0].0, (1 << 20) + start);
        }

        /// pages_touched equals the length of the unmerged scatter list.
        #[test]
        fn pages_touched_matches_chunking(addr in 0u64..1_000_000, len in 1u64..1_000_000) {
            let ps = PageSize::Small4K;
            let mut pt = PageTable::new(ps);
            // Scattered mapping: frame order reversed so no merging happens.
            let total_pages = 512u64;
            for i in 0..total_pages {
                pt.map_range(i * 4096, (total_pages - 1 - i) * 4096, 4096).unwrap();
            }
            prop_assume!(addr + len <= total_pages * 4096);
            let chunks = pt.translate_range(addr, len).unwrap();
            prop_assert_eq!(chunks.len() as u64, ps.pages_touched(addr, len));
        }
    }
}
