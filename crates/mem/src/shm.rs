//! SysV shared-memory emulation (Fig. 7).
//!
//! The DMA-based protocol requires the VH to create a SystemV shared
//! memory segment whose key is then used by the VE side to attach and
//! register it in the DMAATB (§IV-A). This module provides the
//! `shmget`/`shmat`/`shmdt`/`shmctl(IPC_RMID)` subset those steps need.

use crate::{MemError, Region};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// One shared-memory segment: a key plus its backing region.
#[derive(Debug)]
pub struct ShmSegment {
    key: i32,
    region: Arc<Region>,
    attach_count: Mutex<u32>,
    rmid: Mutex<bool>,
}

impl ShmSegment {
    /// The segment's SysV key.
    pub fn key(&self) -> i32 {
        self.key
    }

    /// The backing memory.
    pub fn region(&self) -> &Arc<Region> {
        &self.region
    }

    /// Segment size in bytes.
    pub fn len(&self) -> u64 {
        self.region.len()
    }

    /// Segments are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Current number of attachments.
    pub fn attach_count(&self) -> u32 {
        *self.attach_count.lock()
    }
}

/// RAII handle for a created segment: marks it for removal
/// (`shmctl(IPC_RMID)`) when dropped, so an unwinding owner cannot leak
/// the key. With SysV semantics the segment's memory survives until the
/// last attachment detaches — in-flight VE-side users are unaffected.
#[derive(Debug)]
pub struct ShmGuard {
    mgr: Arc<ShmManager>,
    seg: Arc<ShmSegment>,
}

impl ShmGuard {
    /// The guarded segment.
    pub fn segment(&self) -> &Arc<ShmSegment> {
        &self.seg
    }
}

impl std::ops::Deref for ShmGuard {
    type Target = ShmSegment;
    fn deref(&self) -> &ShmSegment {
        &self.seg
    }
}

impl Drop for ShmGuard {
    fn drop(&mut self) {
        // The key may already be gone (explicit mark_remove); ignore.
        let _ = self.mgr.mark_remove(self.seg.key());
    }
}

/// System-wide SysV shm registry (one per simulated machine).
#[derive(Debug, Default)]
pub struct ShmManager {
    segments: Mutex<HashMap<i32, Arc<ShmSegment>>>,
}

impl ShmManager {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`ShmManager::create`] wrapped in a guard that issues
    /// `shmctl(IPC_RMID)` when dropped.
    pub fn create_guarded(self: &Arc<Self>, key: i32, size: u64) -> Result<ShmGuard, MemError> {
        Ok(ShmGuard {
            mgr: Arc::clone(self),
            seg: self.create(key, size)?,
        })
    }

    /// `shmget(key, size, IPC_CREAT | IPC_EXCL)`: create a segment.
    pub fn create(&self, key: i32, size: u64) -> Result<Arc<ShmSegment>, MemError> {
        let mut segs = self.segments.lock();
        if segs.contains_key(&key) {
            return Err(MemError::ShmKey { key });
        }
        let seg = Arc::new(ShmSegment {
            key,
            region: Region::new(size),
            attach_count: Mutex::new(0),
            rmid: Mutex::new(false),
        });
        segs.insert(key, Arc::clone(&seg));
        Ok(seg)
    }

    /// `shmget(key, 0, 0)` + `shmat`: look up and attach.
    pub fn attach(&self, key: i32) -> Result<Arc<ShmSegment>, MemError> {
        let segs = self.segments.lock();
        let seg = segs.get(&key).ok_or(MemError::ShmKey { key })?;
        *seg.attach_count.lock() += 1;
        Ok(Arc::clone(seg))
    }

    /// `shmdt`: detach. Destroys the segment if it was marked for removal
    /// and this was the last attachment.
    pub fn detach(&self, seg: &Arc<ShmSegment>) {
        let remaining = {
            let mut c = seg.attach_count.lock();
            *c = c.saturating_sub(1);
            *c
        };
        if remaining == 0 && *seg.rmid.lock() {
            self.segments.lock().remove(&seg.key);
        }
    }

    /// `shmctl(IPC_RMID)`: mark for removal; the segment disappears from
    /// the registry once all attachments are gone (SysV semantics).
    pub fn mark_remove(&self, key: i32) -> Result<(), MemError> {
        let mut segs = self.segments.lock();
        let seg = segs.get(&key).ok_or(MemError::ShmKey { key })?;
        *seg.rmid.lock() = true;
        if seg.attach_count() == 0 {
            segs.remove(&key);
        }
        Ok(())
    }

    /// Number of registered segments.
    pub fn segment_count(&self) -> usize {
        self.segments.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_attach_roundtrip() {
        let mgr = ShmManager::new();
        let seg = mgr.create(0x4155, 4096).unwrap();
        assert_eq!(seg.key(), 0x4155);
        assert_eq!(seg.len(), 4096);
        let att = mgr.attach(0x4155).unwrap();
        assert_eq!(att.attach_count(), 1);
        // Both handles see the same memory.
        seg.region().write(0, b"from creator").unwrap();
        let mut buf = [0u8; 12];
        att.region().read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"from creator");
    }

    #[test]
    fn duplicate_key_rejected() {
        let mgr = ShmManager::new();
        mgr.create(1, 64).unwrap();
        assert!(matches!(
            mgr.create(1, 64),
            Err(MemError::ShmKey { key: 1 })
        ));
    }

    #[test]
    fn unknown_key_rejected() {
        let mgr = ShmManager::new();
        assert!(matches!(mgr.attach(99), Err(MemError::ShmKey { key: 99 })));
        assert!(matches!(
            mgr.mark_remove(99),
            Err(MemError::ShmKey { key: 99 })
        ));
    }

    #[test]
    fn rmid_with_no_attachments_removes_immediately() {
        let mgr = ShmManager::new();
        mgr.create(7, 64).unwrap();
        assert_eq!(mgr.segment_count(), 1);
        mgr.mark_remove(7).unwrap();
        assert_eq!(mgr.segment_count(), 0);
    }

    #[test]
    fn guard_drop_removes_unattached_segment() {
        let mgr = Arc::new(ShmManager::new());
        {
            let g = mgr.create_guarded(11, 64).unwrap();
            assert_eq!(g.key(), 11);
            assert_eq!(mgr.segment_count(), 1);
        }
        assert_eq!(mgr.segment_count(), 0, "guard drop must IPC_RMID");
    }

    #[test]
    fn guard_drop_defers_to_last_detach() {
        let mgr = Arc::new(ShmManager::new());
        let att = {
            let _g = mgr.create_guarded(12, 64).unwrap();
            mgr.attach(12).unwrap()
        };
        // Guard dropped while attached: memory survives, key is doomed.
        assert_eq!(mgr.segment_count(), 1);
        att.region().write(0, b"ok").unwrap();
        mgr.detach(&att);
        assert_eq!(mgr.segment_count(), 0);
    }

    #[test]
    fn rmid_defers_until_last_detach() {
        let mgr = ShmManager::new();
        mgr.create(7, 64).unwrap();
        let a = mgr.attach(7).unwrap();
        let b = mgr.attach(7).unwrap();
        mgr.mark_remove(7).unwrap();
        assert_eq!(mgr.segment_count(), 1, "still attached");
        assert!(mgr.attach(7).is_ok(), "key visible until destroyed");
        mgr.detach(&a);
        mgr.detach(&b);
        // One extra attach above; detach it too.
        let c = {
            let segs = mgr.segments.lock();
            segs.get(&7).cloned()
        };
        if let Some(c) = c {
            mgr.detach(&c);
        }
        assert_eq!(mgr.segment_count(), 0);
    }
}
