//! # aurora-mem
//!
//! Memory substrate of the simulated SX-Aurora TSUBASA platform:
//!
//! * [`region::Region`] — a shared, bounds-checked raw memory backing a
//!   simulated physical memory (VH DDR4, VE HBM2, SysV shm segments), with
//!   atomic word access for protocol flags;
//! * [`alloc::RangeAllocator`] — first-fit offset allocator with
//!   coalescing, used for device-memory allocation (`offload::allocate`)
//!   and shm carving;
//! * [`page::PageTable`] — virtual→physical page mapping with 4 KiB /
//!   2 MiB / 64 MiB page sizes; translation counts feed the privileged DMA
//!   manager's cost model;
//! * [`shm::ShmManager`] — the SysV shared-memory interface of Fig. 7;
//! * [`dmaatb::Dmaatb`] — the VE-side DMA Address Translation Buffer that
//!   user DMA and LHM/SHM require (§IV-A).

#![warn(missing_docs)]
// The one crate with unsafe: the Region façade (see region.rs safety
// contract). Everything above it is #![deny(unsafe_code)].

pub mod addr;
pub mod alloc;
pub mod dmaatb;
pub mod page;
pub mod region;
pub mod shm;

pub use addr::{MemoryId, VeAddr, Vehva, VhAddr};
pub use alloc::RangeAllocator;
pub use dmaatb::{DmaTarget, Dmaatb};
pub use page::{PageSize, PageTable};
pub use region::Region;
pub use shm::{ShmGuard, ShmManager, ShmSegment};

/// Errors of the memory substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Access beyond a region's bounds, i.e. the simulated SIGSEGV.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Region size.
        size: u64,
    },
    /// Offset not aligned as required (e.g. atomic word access).
    Misaligned {
        /// Requested offset.
        offset: u64,
        /// Required alignment.
        align: u64,
    },
    /// Allocation failed: no free range large enough.
    OutOfMemory {
        /// Requested size.
        requested: u64,
        /// Largest currently free contiguous range.
        largest_free: u64,
    },
    /// Freeing an offset that is not an allocation start.
    BadFree {
        /// The offending offset.
        offset: u64,
    },
    /// Virtual address not mapped in a page table / DMAATB.
    NotMapped {
        /// The unmapped address.
        addr: u64,
    },
    /// A range crosses non-contiguous mappings.
    NotContiguous {
        /// Start of the offending range.
        addr: u64,
    },
    /// DMAATB has no free entries.
    DmaatbFull,
    /// SysV shm: key not found or already exists.
    ShmKey {
        /// The offending key.
        key: i32,
    },
}

impl core::fmt::Display for MemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemError::OutOfBounds { offset, len, size } => {
                write!(
                    f,
                    "access [{offset}, {offset}+{len}) beyond region size {size}"
                )
            }
            MemError::Misaligned { offset, align } => {
                write!(f, "offset {offset} not aligned to {align}")
            }
            MemError::OutOfMemory {
                requested,
                largest_free,
            } => write!(
                f,
                "out of memory: requested {requested}, largest free {largest_free}"
            ),
            MemError::BadFree { offset } => write!(f, "bad free at offset {offset}"),
            MemError::NotMapped { addr } => write!(f, "address {addr:#x} not mapped"),
            MemError::NotContiguous { addr } => {
                write!(f, "range at {addr:#x} crosses non-contiguous mappings")
            }
            MemError::DmaatbFull => write!(f, "DMAATB full"),
            MemError::ShmKey { key } => write!(f, "bad SysV shm key {key}"),
        }
    }
}

impl std::error::Error for MemError {}
