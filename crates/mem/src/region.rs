//! A shared raw-memory region: the backing store of every simulated
//! physical memory.
//!
//! # Safety model
//!
//! A [`Region`] hands out *no* references to its interior; all access goes
//! through bounds-checked copy methods or through `AtomicU64` views
//! created with [`AtomicU64::from_ptr`]. Plain (non-atomic) reads/writes
//! of a byte range are only correct if callers never access the same
//! range concurrently from two threads with at least one writer — this is
//! exactly the ownership discipline of the paper's messaging protocols:
//! a message buffer belongs to the writer until the corresponding flag is
//! published with Release ordering and observed with Acquire ordering.
//! The protocol tests in `ham-backend-*` exercise this invariant under
//! real concurrency.

use crate::MemError;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A fixed-size, heap-backed, shareable raw memory.
pub struct Region {
    base: *mut u8,
    len: u64,
    layout: Layout,
}

// SAFETY: the region itself is just a block of bytes; synchronization of
// accesses is the callers' responsibility per the module-level contract.
unsafe impl Send for Region {}
unsafe impl Sync for Region {}

impl Region {
    /// Alignment of every region base: one simulated small page.
    pub const BASE_ALIGN: usize = 4096;

    /// Allocate a zero-initialised region of `len` bytes.
    ///
    /// Panics if `len` is zero or exceeds `isize::MAX`.
    pub fn new(len: u64) -> Arc<Region> {
        assert!(len > 0, "zero-sized region");
        let layout =
            Layout::from_size_align(len as usize, Self::BASE_ALIGN).expect("region too large");
        // SAFETY: layout has non-zero size (asserted above).
        let base = unsafe { alloc_zeroed(layout) };
        assert!(!base.is_null(), "region allocation failed");
        Arc::new(Region { base, len, layout })
    }

    /// Region size in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Always false; regions cannot be empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn check(&self, offset: u64, len: u64) -> Result<(), MemError> {
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(MemError::OutOfBounds {
                offset,
                len,
                size: self.len,
            });
        }
        Ok(())
    }

    /// Copy `dst.len()` bytes out of the region starting at `offset`.
    pub fn read(&self, offset: u64, dst: &mut [u8]) -> Result<(), MemError> {
        self.check(offset, dst.len() as u64)?;
        // SAFETY: range checked; caller upholds the no-concurrent-writer
        // contract for this range.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.base.add(offset as usize),
                dst.as_mut_ptr(),
                dst.len(),
            );
        }
        Ok(())
    }

    /// Copy `src` into the region starting at `offset`.
    pub fn write(&self, offset: u64, src: &[u8]) -> Result<(), MemError> {
        self.check(offset, src.len() as u64)?;
        // SAFETY: range checked; caller upholds the single-writer contract.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.base.add(offset as usize), src.len());
        }
        Ok(())
    }

    /// Fill `[offset, offset+len)` with `byte`.
    pub fn fill(&self, offset: u64, len: u64, byte: u8) -> Result<(), MemError> {
        self.check(offset, len)?;
        // SAFETY: range checked.
        unsafe {
            std::ptr::write_bytes(self.base.add(offset as usize), byte, len as usize);
        }
        Ok(())
    }

    /// Copy `len` bytes from `src` at `src_off` into `dst` at `dst_off`.
    /// This is the simulated DMA engine's data path.
    pub fn copy_between(
        src: &Region,
        src_off: u64,
        dst: &Region,
        dst_off: u64,
        len: u64,
    ) -> Result<(), MemError> {
        src.check(src_off, len)?;
        dst.check(dst_off, len)?;
        // SAFETY: both ranges checked. `copy` (memmove) tolerates overlap
        // in case src and dst are the same region.
        unsafe {
            std::ptr::copy(
                src.base.add(src_off as usize),
                dst.base.add(dst_off as usize),
                len as usize,
            );
        }
        Ok(())
    }

    /// An atomic view of the 8-byte word at `offset` (must be 8-aligned).
    ///
    /// Used for protocol notification flags; pair a `store(Release)` by
    /// the producer with a `load(Acquire)` by the consumer to transfer
    /// ownership of the associated buffer range.
    pub fn atomic_u64(&self, offset: u64) -> Result<&AtomicU64, MemError> {
        self.check(offset, 8)?;
        if !offset.is_multiple_of(8) {
            return Err(MemError::Misaligned { offset, align: 8 });
        }
        // SAFETY: in-bounds, aligned, and the region outlives the returned
        // reference (tied to &self). Mixed atomic/non-atomic access to the
        // same word is excluded by the protocol contract.
        Ok(unsafe { AtomicU64::from_ptr(self.base.add(offset as usize) as *mut u64) })
    }

    /// Acquire-load the word at `offset`.
    pub fn load_u64(&self, offset: u64) -> Result<u64, MemError> {
        Ok(self.atomic_u64(offset)?.load(Ordering::Acquire))
    }

    /// Release-store the word at `offset`.
    pub fn store_u64(&self, offset: u64, value: u64) -> Result<(), MemError> {
        self.atomic_u64(offset)?.store(value, Ordering::Release);
        Ok(())
    }

    /// Read a little-endian `u64` with a plain (non-atomic) copy.
    pub fn read_u64_le(&self, offset: u64) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian `u64` with a plain (non-atomic) copy.
    pub fn write_u64_le(&self, offset: u64, value: u64) -> Result<(), MemError> {
        self.write(offset, &value.to_le_bytes())
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        // SAFETY: base/layout are the values produced by alloc_zeroed.
        unsafe { dealloc(self.base, self.layout) }
    }
}

impl core::fmt::Debug for Region {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Region({} bytes)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_start_zeroed() {
        let r = Region::new(64);
        let mut buf = [1u8; 64];
        r.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
    }

    #[test]
    fn write_read_round_trip() {
        let r = Region::new(128);
        r.write(16, b"hello aurora").unwrap();
        let mut out = [0u8; 12];
        r.read(16, &mut out).unwrap();
        assert_eq!(&out, b"hello aurora");
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let r = Region::new(32);
        assert!(matches!(
            r.write(30, &[0; 4]),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            r.read(u64::MAX, &mut [0; 1]),
            Err(MemError::OutOfBounds { .. })
        ));
        // Exactly at the end is fine for zero-length... and for full fit.
        assert!(r.write(28, &[0; 4]).is_ok());
    }

    #[test]
    fn fill_works() {
        let r = Region::new(16);
        r.fill(4, 8, 0xAB).unwrap();
        let mut buf = [0u8; 16];
        r.read(0, &mut buf).unwrap();
        assert_eq!(&buf[4..12], &[0xAB; 8]);
        assert_eq!(buf[3], 0);
        assert_eq!(buf[12], 0);
    }

    #[test]
    fn copy_between_regions() {
        let a = Region::new(64);
        let b = Region::new(64);
        a.write(0, b"dma payload").unwrap();
        Region::copy_between(&a, 0, &b, 32, 11).unwrap();
        let mut out = [0u8; 11];
        b.read(32, &mut out).unwrap();
        assert_eq!(&out, b"dma payload");
    }

    #[test]
    fn copy_between_same_region_overlapping() {
        let a = Region::new(32);
        a.write(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        Region::copy_between(&a, 0, &a, 4, 8).unwrap();
        let mut out = [0u8; 12];
        a.read(0, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn atomic_flag_round_trip() {
        let r = Region::new(64);
        r.store_u64(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(r.load_u64(8).unwrap(), 0xDEAD_BEEF);
        assert!(matches!(r.atomic_u64(4), Err(MemError::Misaligned { .. })));
        assert!(matches!(r.atomic_u64(12), Err(MemError::Misaligned { .. })));
        assert!(matches!(
            r.atomic_u64(64),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn le_word_helpers() {
        let r = Region::new(16);
        r.write_u64_le(0, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(r.read_u64_le(0).unwrap(), 0x0102_0304_0506_0708);
        let mut b = [0u8; 8];
        r.read(0, &mut b).unwrap();
        assert_eq!(b[0], 0x08, "little endian on the wire");
    }

    proptest::proptest! {
        /// Any in-bounds write is read back exactly; any out-of-bounds
        /// access errors without touching memory.
        #[test]
        fn prop_write_read_round_trip(
            offset in 0u64..4096,
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..512),
        ) {
            let r = Region::new(4096);
            let fits = offset + data.len() as u64 <= 4096;
            let res = r.write(offset, &data);
            proptest::prop_assert_eq!(res.is_ok(), fits);
            if fits {
                let mut out = vec![0u8; data.len()];
                r.read(offset, &mut out).unwrap();
                proptest::prop_assert_eq!(out, data);
            }
        }

        /// copy_between behaves like a memmove between two regions.
        #[test]
        fn prop_copy_between(
            src_off in 0u64..1024,
            dst_off in 0u64..1024,
            len in 0u64..512,
        ) {
            let a = Region::new(2048);
            let b = Region::new(2048);
            let pattern: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
            a.write(0, &pattern).unwrap();
            Region::copy_between(&a, src_off, &b, dst_off, len).unwrap();
            let mut out = vec![0u8; len as usize];
            b.read(dst_off, &mut out).unwrap();
            proptest::prop_assert_eq!(
                out.as_slice(),
                &pattern[src_off as usize..(src_off + len) as usize]
            );
        }
    }

    #[test]
    fn flag_publishes_buffer_across_threads() {
        // The protocol pattern: writer fills a buffer then Release-stores
        // a flag; reader Acquire-loads the flag then reads the buffer.
        let r = Region::new(4096);
        let flag_off = 0;
        let buf_off = 64;
        std::thread::scope(|s| {
            let writer = {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    r.write(buf_off, &[7u8; 256]).unwrap();
                    r.store_u64(flag_off, 1).unwrap();
                })
            };
            let reader = {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    while r.load_u64(flag_off).unwrap() != 1 {
                        std::hint::spin_loop();
                    }
                    let mut out = [0u8; 256];
                    r.read(buf_off, &mut out).unwrap();
                    assert_eq!(out, [7u8; 256]);
                })
            };
            writer.join().unwrap();
            reader.join().unwrap();
        });
    }
}
