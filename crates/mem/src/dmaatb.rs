//! DMAATB — the VE's DMA Address Translation Buffer (§IV-A).
//!
//! The VE has no IOMMU; before VE code can reach VH memory (or expose its
//! own HBM to the user DMA engine), the memory must be *registered* in
//! the DMAATB, which maps a VEHVA (VE Host Virtual Address) window onto
//! the target memory. LHM/SHM instructions and user-DMA descriptors then
//! operate on VEHVAs with **no** on-the-fly OS translation — the very
//! property that makes the paper's DMA protocol 13× cheaper than VEO.
//!
//! The table has a limited number of entries (real DMAATBs are small);
//! registration is the expensive, setup-time operation.

use crate::{MemError, Region, Vehva};
use parking_lot::Mutex;
use std::sync::Arc;

/// What a DMAATB entry points at.
#[derive(Clone, Debug)]
pub struct DmaTarget {
    /// The backing memory of the registered range.
    pub region: Arc<Region>,
    /// Byte offset of the registered range inside `region`.
    pub offset: u64,
}

#[derive(Clone, Debug)]
struct Entry {
    vehva: u64,
    len: u64,
    target: DmaTarget,
}

/// The per-VE translation table for host-memory (and local) DMA windows.
#[derive(Debug)]
pub struct Dmaatb {
    entries: Mutex<Vec<Option<Entry>>>,
    next_vehva: Mutex<u64>,
}

/// Fixed VEHVA base so null stays invalid.
const VEHVA_BASE: u64 = 0x1_0000_0000;
/// Registration granularity (64 MiB VE pages are typical for DMAATB).
const VEHVA_ALIGN: u64 = 1 << 16;

impl Dmaatb {
    /// A DMAATB with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Mutex::new(vec![None; capacity]),
            next_vehva: Mutex::new(VEHVA_BASE),
        }
    }

    /// Register `len` bytes of `target` and return the VEHVA window base.
    pub fn register(&self, target: DmaTarget, len: u64) -> Result<Vehva, MemError> {
        if target.offset + len > target.region.len() {
            return Err(MemError::OutOfBounds {
                offset: target.offset,
                len,
                size: target.region.len(),
            });
        }
        let mut entries = self.entries.lock();
        let slot = entries
            .iter_mut()
            .find(|e| e.is_none())
            .ok_or(MemError::DmaatbFull)?;
        let mut next = self.next_vehva.lock();
        let vehva = *next;
        *next += len.next_multiple_of(VEHVA_ALIGN).max(VEHVA_ALIGN);
        *slot = Some(Entry { vehva, len, target });
        Ok(Vehva(vehva))
    }

    /// Drop the registration whose window starts at `vehva`.
    pub fn unregister(&self, vehva: Vehva) -> Result<(), MemError> {
        let mut entries = self.entries.lock();
        for e in entries.iter_mut() {
            if matches!(e, Some(entry) if entry.vehva == vehva.get()) {
                *e = None;
                return Ok(());
            }
        }
        Err(MemError::NotMapped { addr: vehva.get() })
    }

    /// Translate an access of `len` bytes at `vehva` into the registered
    /// target. The access must lie entirely within one registration
    /// (hardware would raise an exception otherwise).
    pub fn translate(&self, vehva: Vehva, len: u64) -> Result<DmaTarget, MemError> {
        let entries = self.entries.lock();
        for e in entries.iter().flatten() {
            if vehva.get() >= e.vehva && vehva.get() + len <= e.vehva + e.len {
                let delta = vehva.get() - e.vehva;
                return Ok(DmaTarget {
                    region: Arc::clone(&e.target.region),
                    offset: e.target.offset + delta,
                });
            }
            // Partially inside → non-contiguous fault.
            if vehva.get() < e.vehva + e.len && vehva.get() + len > e.vehva {
                return Err(MemError::NotContiguous { addr: vehva.get() });
            }
        }
        Err(MemError::NotMapped { addr: vehva.get() })
    }

    /// Number of live registrations.
    pub fn live_entries(&self) -> usize {
        self.entries.lock().iter().flatten().count()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.entries.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(len: u64) -> DmaTarget {
        DmaTarget {
            region: Region::new(len),
            offset: 0,
        }
    }

    #[test]
    fn register_translate_roundtrip() {
        let atb = Dmaatb::new(4);
        let t = target(4096);
        t.region.write(100, b"host data").unwrap();
        let vehva = atb.register(t, 4096).unwrap();
        let tr = atb.translate(vehva.offset(100), 9).unwrap();
        let mut buf = [0u8; 9];
        tr.region.read(tr.offset, &mut buf).unwrap();
        assert_eq!(&buf, b"host data");
    }

    #[test]
    fn distinct_windows() {
        let atb = Dmaatb::new(4);
        let a = atb.register(target(64), 64).unwrap();
        let b = atb.register(target(64), 64).unwrap();
        assert_ne!(a, b);
        assert_eq!(atb.live_entries(), 2);
    }

    #[test]
    fn capacity_enforced() {
        let atb = Dmaatb::new(2);
        atb.register(target(64), 64).unwrap();
        atb.register(target(64), 64).unwrap();
        assert!(matches!(
            atb.register(target(64), 64),
            Err(MemError::DmaatbFull)
        ));
    }

    #[test]
    fn unregister_frees_slot() {
        let atb = Dmaatb::new(1);
        let v = atb.register(target(64), 64).unwrap();
        atb.unregister(v).unwrap();
        assert_eq!(atb.live_entries(), 0);
        assert!(atb.register(target(64), 64).is_ok());
        assert!(matches!(
            atb.unregister(Vehva(0x999)),
            Err(MemError::NotMapped { .. })
        ));
    }

    #[test]
    fn out_of_window_access_faults() {
        let atb = Dmaatb::new(2);
        let v = atb.register(target(128), 128).unwrap();
        assert!(atb.translate(v, 128).is_ok());
        assert!(matches!(
            atb.translate(v.offset(120), 16),
            Err(MemError::NotContiguous { .. })
        ));
        assert!(matches!(
            atb.translate(Vehva(1), 8),
            Err(MemError::NotMapped { .. })
        ));
    }

    #[test]
    fn registration_respects_region_bounds() {
        let atb = Dmaatb::new(2);
        let t = DmaTarget {
            region: Region::new(64),
            offset: 32,
        };
        assert!(matches!(
            atb.register(t, 64),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn offset_registration_translates_with_offset() {
        let atb = Dmaatb::new(2);
        let region = Region::new(256);
        region.write(128, &[9u8; 8]).unwrap();
        let v = atb
            .register(
                DmaTarget {
                    region: Arc::clone(&region),
                    offset: 128,
                },
                64,
            )
            .unwrap();
        let t = atb.translate(v, 8).unwrap();
        assert_eq!(t.offset, 128);
        let mut b = [0u8; 8];
        t.region.read(t.offset, &mut b).unwrap();
        assert_eq!(b, [9u8; 8]);
    }
}
