//! Address newtypes for the three address spaces the paper involves.
//!
//! * **VH virtual addresses** ([`VhAddr`]) — host-process addresses;
//! * **VE virtual addresses** ([`VeAddr`]) — VE-process addresses (VEMVA);
//! * **VEHVA** ([`Vehva`]) — *VE Host Virtual Addresses*: the window
//!   through which VE code reaches registered host (or VE) memory after a
//!   DMAATB registration (§IV-A).
//!
//! Using newtypes prevents the classic offloading bug of passing a host
//! pointer where a device pointer is expected — the type system plays the
//! role the MMU plays on real hardware.

use core::fmt;

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The null address.
            pub const NULL: $name = $name(0);

            /// Raw numeric value.
            #[inline]
            pub const fn get(self) -> u64 {
                self.0
            }

            /// Offset the address by `d` bytes.
            #[inline]
            pub const fn offset(self, d: u64) -> $name {
                $name(self.0 + d)
            }

            /// True for the null address.
            #[inline]
            pub const fn is_null(self) -> bool {
                self.0 == 0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
    };
}

addr_newtype! {
    /// A Vector-Host (x86 process) virtual address.
    VhAddr
}

addr_newtype! {
    /// A Vector-Engine process virtual address (VEMVA).
    VeAddr
}

addr_newtype! {
    /// A VE Host Virtual Address: VE-side handle to DMAATB-registered
    /// memory, usable by user DMA and the LHM/SHM instructions.
    Vehva
}

/// Identifies one simulated physical memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemoryId {
    /// DDR4 attached to a VH CPU socket.
    VhDdr {
        /// Socket index (0 or 1 on the A300-8).
        socket: u8,
    },
    /// HBM2 of one Vector Engine.
    VeHbm {
        /// VE index (0..8 on the A300-8).
        ve: u8,
    },
}

impl fmt::Display for MemoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryId::VhDdr { socket } => write!(f, "VH-DDR4[socket {socket}]"),
            MemoryId::VeHbm { ve } => write!(f, "VE-HBM2[ve {ve}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtypes_are_distinct_types() {
        // This is a compile-time property; here we just exercise the API.
        let h = VhAddr(0x1000);
        let v = VeAddr(0x1000);
        let w = Vehva(0x1000);
        assert_eq!(h.get(), v.get());
        assert_eq!(v.get(), w.get());
    }

    #[test]
    fn offset_and_null() {
        let a = VeAddr(0x100);
        assert_eq!(a.offset(0x10), VeAddr(0x110));
        assert!(VeAddr::NULL.is_null());
        assert!(!a.is_null());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", VhAddr(0xdead)), "0xdead");
        assert_eq!(format!("{:?}", VeAddr(0x10)), "VeAddr(0x10)");
        assert_eq!(format!("{}", MemoryId::VeHbm { ve: 3 }), "VE-HBM2[ve 3]");
        assert_eq!(
            format!("{}", MemoryId::VhDdr { socket: 1 }),
            "VH-DDR4[socket 1]"
        );
    }
}
