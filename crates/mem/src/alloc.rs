//! First-fit range allocator with coalescing.
//!
//! Allocates offsets inside a simulated physical memory or shm segment.
//! Backs `offload::allocate` / `offload::free` (Table II) and VEOS memory
//! management. First-fit with address-ordered free list and eager
//! coalescing — simple, deterministic, and good enough for benchmark
//! allocation patterns.

use crate::MemError;
use std::collections::BTreeMap;

/// Offset allocator over `[0, size)`.
#[derive(Debug, Clone)]
pub struct RangeAllocator {
    size: u64,
    /// Free ranges: offset → length; address-ordered, non-adjacent.
    free: BTreeMap<u64, u64>,
    /// Live allocations: offset → length.
    allocated: BTreeMap<u64, u64>,
}

impl RangeAllocator {
    /// Allocator over `size` bytes.
    pub fn new(size: u64) -> Self {
        let mut free = BTreeMap::new();
        if size > 0 {
            free.insert(0, size);
        }
        Self {
            size,
            free,
            allocated: BTreeMap::new(),
        }
    }

    /// Total managed size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Sum of free bytes.
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// Sum of allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated.values().sum()
    }

    /// Largest free contiguous range.
    pub fn largest_free(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Number of live allocations.
    pub fn live_allocations(&self) -> usize {
        self.allocated.len()
    }

    /// Allocate `len` bytes aligned to `align` (a power of two).
    ///
    /// Returns the offset of the new allocation.
    pub fn alloc(&mut self, len: u64, align: u64) -> Result<u64, MemError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        if len == 0 {
            // Zero-sized allocations get a unique non-null offset without
            // consuming space — mirroring malloc(0) returning a valid ptr.
            // We model them as 1-byte allocations for simplicity.
            return self.alloc(1, align);
        }
        let mut found: Option<(u64, u64, u64)> = None; // (range_off, range_len, aligned_off)
        for (&off, &flen) in &self.free {
            let aligned = off.next_multiple_of(align);
            let pad = aligned - off;
            if flen >= pad + len {
                found = Some((off, flen, aligned));
                break;
            }
        }
        let (off, flen, aligned) = found.ok_or(MemError::OutOfMemory {
            requested: len,
            largest_free: self.largest_free(),
        })?;
        self.free.remove(&off);
        let pad = aligned - off;
        if pad > 0 {
            self.free.insert(off, pad);
        }
        let tail = flen - pad - len;
        if tail > 0 {
            self.free.insert(aligned + len, tail);
        }
        self.allocated.insert(aligned, len);
        Ok(aligned)
    }

    /// Free the allocation starting at `offset`.
    pub fn free(&mut self, offset: u64) -> Result<(), MemError> {
        let len = self
            .allocated
            .remove(&offset)
            .ok_or(MemError::BadFree { offset })?;
        self.insert_free(offset, len);
        Ok(())
    }

    /// Size of the live allocation at `offset`, if any.
    pub fn allocation_len(&self, offset: u64) -> Option<u64> {
        self.allocated.get(&offset).copied()
    }

    fn insert_free(&mut self, mut offset: u64, mut len: u64) {
        // Coalesce with predecessor.
        if let Some((&poff, &plen)) = self.free.range(..offset).next_back() {
            debug_assert!(poff + plen <= offset, "free-list overlap");
            if poff + plen == offset {
                self.free.remove(&poff);
                offset = poff;
                len += plen;
            }
        }
        // Coalesce with successor.
        if let Some((&noff, &nlen)) = self.free.range(offset + len..).next() {
            if offset + len == noff {
                self.free.remove(&noff);
                len += nlen;
            }
        }
        self.free.insert(offset, len);
    }

    /// Debug invariant check: free list sorted, non-overlapping,
    /// non-adjacent, within bounds, and disjoint from allocations.
    pub fn check_invariants(&self) -> bool {
        let mut prev_end: Option<u64> = None;
        for (&off, &len) in &self.free {
            if len == 0 || off + len > self.size {
                return false;
            }
            if let Some(pe) = prev_end {
                if off <= pe {
                    return false; // overlap or missed coalescing boundary
                }
                if off == pe {
                    return false; // adjacent — should have coalesced
                }
            }
            prev_end = Some(off + len);
        }
        // Allocations must not overlap free ranges.
        for (&aoff, &alen) in &self.allocated {
            if aoff + alen > self.size {
                return false;
            }
            for (&foff, &flen) in &self.free {
                if aoff < foff + flen && foff < aoff + alen {
                    return false;
                }
            }
        }
        self.free_bytes() + self.allocated_bytes() == self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_alloc_free() {
        let mut a = RangeAllocator::new(1024);
        let x = a.alloc(100, 1).unwrap();
        let y = a.alloc(200, 1).unwrap();
        assert_ne!(x, y);
        assert_eq!(a.allocated_bytes(), 300);
        a.free(x).unwrap();
        a.free(y).unwrap();
        assert_eq!(a.free_bytes(), 1024);
        assert_eq!(a.largest_free(), 1024, "coalesced back to one block");
        assert!(a.check_invariants());
    }

    #[test]
    fn alignment_respected() {
        let mut a = RangeAllocator::new(1 << 20);
        a.alloc(3, 1).unwrap();
        let x = a.alloc(64, 4096).unwrap();
        assert_eq!(x % 4096, 0);
        let y = a.alloc(10, 256).unwrap();
        assert_eq!(y % 256, 0);
        assert!(a.check_invariants());
    }

    #[test]
    fn out_of_memory() {
        let mut a = RangeAllocator::new(128);
        a.alloc(100, 1).unwrap();
        let err = a.alloc(64, 1).unwrap_err();
        assert!(matches!(
            err,
            MemError::OutOfMemory {
                largest_free: 28,
                ..
            }
        ));
    }

    #[test]
    fn double_free_rejected() {
        let mut a = RangeAllocator::new(128);
        let x = a.alloc(16, 1).unwrap();
        a.free(x).unwrap();
        assert!(matches!(a.free(x), Err(MemError::BadFree { .. })));
        assert!(matches!(a.free(5), Err(MemError::BadFree { .. })));
    }

    #[test]
    fn zero_sized_allocations_are_distinct() {
        let mut a = RangeAllocator::new(128);
        let x = a.alloc(0, 8).unwrap();
        let y = a.alloc(0, 8).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn fragmentation_then_coalesce() {
        let mut a = RangeAllocator::new(1000);
        let offs: Vec<u64> = (0..10).map(|_| a.alloc(100, 1).unwrap()).collect();
        assert_eq!(a.free_bytes(), 0);
        // Free every other block: five 100-byte holes.
        for &o in offs.iter().step_by(2) {
            a.free(o).unwrap();
        }
        assert_eq!(a.largest_free(), 100);
        assert!(a.alloc(101, 1).is_err(), "holes are not adjacent");
        // Free the rest: everything coalesces.
        for &o in offs.iter().skip(1).step_by(2) {
            a.free(o).unwrap();
        }
        assert_eq!(a.largest_free(), 1000);
        assert!(a.check_invariants());
    }

    #[test]
    fn allocation_len_query() {
        let mut a = RangeAllocator::new(128);
        let x = a.alloc(48, 1).unwrap();
        assert_eq!(a.allocation_len(x), Some(48));
        assert_eq!(a.allocation_len(x + 1), None);
    }

    proptest! {
        /// Random alloc/free interleavings keep all invariants.
        #[test]
        fn random_ops_preserve_invariants(
            ops in proptest::collection::vec((0u8..2, 1u64..512, 0usize..64), 1..200)
        ) {
            let mut a = RangeAllocator::new(64 * 1024);
            let mut live: Vec<u64> = Vec::new();
            for (kind, len, idx) in ops {
                if kind == 0 || live.is_empty() {
                    let align = 1u64 << (len % 7); // 1..64
                    if let Ok(off) = a.alloc(len, align) {
                        prop_assert_eq!(off % align, 0);
                        live.push(off);
                    }
                } else {
                    let off = live.swap_remove(idx % live.len());
                    prop_assert!(a.free(off).is_ok());
                }
                prop_assert!(a.check_invariants());
            }
            // Allocations never overlap.
            let mut ranges: Vec<(u64, u64)> = live
                .iter()
                .map(|&o| (o, a.allocation_len(o).unwrap()))
                .collect();
            ranges.sort();
            for w in ranges.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0);
            }
            // Freeing everything returns the arena to a single block.
            for off in live {
                a.free(off).unwrap();
            }
            prop_assert_eq!(a.largest_free(), 64 * 1024);
        }
    }
}
