//! Typed pointers to target memory (Table II: `buffer_ptr<T>`).

use crate::scalar::Scalar;
use crate::types::NodeId;
use core::marker::PhantomData;
use serde::{Deserialize, Serialize};

/// A typed pointer into an offload target's memory. Carries the node
/// address, so it can be transported inside active messages and resolved
/// on the target (paper Table II).
#[derive(Serialize, Deserialize)]
pub struct BufferPtr<T> {
    node: NodeId,
    addr: u64,
    len: u64,
    #[serde(skip)]
    _elem: PhantomData<fn() -> T>,
}

// Manual impls: `T` itself is never stored, so no bounds on it.
impl<T> Clone for BufferPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for BufferPtr<T> {}

impl<T> PartialEq for BufferPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.node == other.node && self.addr == other.addr && self.len == other.len
    }
}
impl<T> Eq for BufferPtr<T> {}

impl<T> core::fmt::Debug for BufferPtr<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "BufferPtr<{}>({}, {:#x}, len {})",
            core::any::type_name::<T>(),
            self.node,
            self.addr,
            self.len
        )
    }
}

impl<T: Scalar> BufferPtr<T> {
    /// Construct from raw parts (normally done by [`crate::Offload::allocate`]).
    pub fn from_raw(node: NodeId, addr: u64, len: u64) -> Self {
        Self {
            node,
            addr,
            len,
            _elem: PhantomData,
        }
    }

    /// The target node this buffer lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Target-virtual address of the first element.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True for zero-element buffers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.len * T::SIZE as u64
    }

    /// A sub-buffer starting at element `idx` with `len` elements.
    ///
    /// Panics if the range exceeds the buffer (the simulated SIGSEGV
    /// would otherwise fire on the target).
    pub fn slice(&self, idx: u64, len: u64) -> Self {
        assert!(idx + len <= self.len, "sub-buffer out of range");
        Self {
            node: self.node,
            addr: self.addr + idx * T::SIZE as u64,
            len,
            _elem: PhantomData,
        }
    }

    /// Address of element `idx` (for kernels doing pointer arithmetic).
    pub fn elem_addr(&self, idx: u64) -> u64 {
        self.addr + idx * T::SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = BufferPtr::<f64>::from_raw(NodeId(2), 0x1000, 8);
        assert_eq!(p.node(), NodeId(2));
        assert_eq!(p.addr(), 0x1000);
        assert_eq!(p.len(), 8);
        assert_eq!(p.byte_len(), 64);
        assert!(!p.is_empty());
    }

    #[test]
    fn slicing() {
        let p = BufferPtr::<f32>::from_raw(NodeId(1), 0x100, 16);
        let s = p.slice(4, 8);
        assert_eq!(s.addr(), 0x100 + 16);
        assert_eq!(s.len(), 8);
        assert_eq!(p.elem_addr(4), s.addr());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        BufferPtr::<f64>::from_raw(NodeId(1), 0, 4).slice(2, 3);
    }

    #[test]
    fn serde_round_trip_inside_messages() {
        let p = BufferPtr::<f64>::from_raw(NodeId(3), 0xABC, 100);
        let bytes = ham::codec::encode(&p).unwrap();
        let back: BufferPtr<f64> = ham::codec::decode(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn copy_semantics() {
        let p = BufferPtr::<u64>::from_raw(NodeId(1), 8, 2);
        let q = p;
        assert_eq!(p, q, "BufferPtr is Copy like a raw pointer");
    }
}
