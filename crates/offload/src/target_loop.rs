//! The target-side runtime surface: channel trait, result framing, and
//! the environment handed to kernels.
//!
//! After initialisation, an offload target sits in a message loop:
//! receive the next active message, translate its handler key, execute,
//! send the result message back (paper §III-C/D: on the SX-Aurora this
//! loop *is* `ham_main()` running inside the VE process). The loop
//! itself — per-core worker lanes, staged-work stealing, watermark
//! bookkeeping — lives in [`crate::device::DeviceRuntime`]; every
//! backend runs that one engine. This module keeps the
//! transport-facing pieces: [`TargetChannel`], [`TargetEnv`], and the
//! `frame_result` wire helpers.

use crate::chan::pool::{FramePool, PooledFrame};
use crate::device::{DeviceConfig, DeviceRuntime};
use ham::wire::MsgHeader;
use ham::{HamError, Registry, TargetMemory};
use std::sync::Arc;

/// Outcome of a non-blocking poll on a [`TargetChannel`].
pub enum Polled {
    /// A message was ready.
    Msg(MsgHeader, PooledFrame),
    /// Nothing ready right now; more may arrive later.
    Empty,
    /// The channel has shut down; nothing will ever arrive again.
    Closed,
}

/// Target-side view of one backend channel.
///
/// Bodies are returned as [`PooledFrame`]s checked out of the device
/// runtime's [`FramePool`], so the warm receive path recycles buffers
/// instead of allocating one per message.
pub trait TargetChannel {
    /// Receive the next message (blocking; backends poll flags inside).
    /// `None` means the channel is shut down.
    fn recv(&self, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)>;

    /// Poll for a ready message without blocking — the device runtime
    /// uses this to drain already-delivered messages into one
    /// scheduling window. Must not wait for the host: if no complete
    /// message is available *right now*, return [`Polled::Empty`].
    fn try_recv(&self, pool: &Arc<FramePool>) -> Polled;

    /// Publish a result payload for the offload that arrived with
    /// `reply_slot` and sequence number `seq`. Takes ownership so
    /// in-process transports deposit the buffer without another copy.
    fn send_result(&self, reply_slot: u16, seq: u64, payload: Vec<u8>);
}

/// Frame a handler outcome for the wire: `0x00 ‖ bytes` on success,
/// `0x01 ‖ utf-8 message` on failure.
pub fn frame_result(result: Result<Vec<u8>, HamError>) -> Vec<u8> {
    match result {
        Ok(mut bytes) => {
            let mut out = Vec::with_capacity(bytes.len() + 1);
            out.push(0);
            out.append(&mut bytes);
            out
        }
        Err(e) => {
            let msg = e.to_string();
            let mut out = Vec::with_capacity(msg.len() + 1);
            out.push(1);
            out.extend_from_slice(msg.as_bytes());
            out
        }
    }
}

/// Undo [`frame_result`] without copying: the success payload is a
/// sub-slice of `bytes`. The error side becomes a backend error string.
pub fn unframe_result_ref(bytes: &[u8]) -> Result<&[u8], String> {
    match bytes.split_first() {
        Some((0, rest)) => Ok(rest),
        Some((1, rest)) => Err(String::from_utf8_lossy(rest).into_owned()),
        _ => Err("malformed result frame".into()),
    }
}

/// Undo [`frame_result`]; the owning variant of
/// [`unframe_result_ref`], kept for callers that need the bytes
/// detached from the frame.
pub fn unframe_result(bytes: &[u8]) -> Result<Vec<u8>, String> {
    unframe_result_ref(bytes).map(<[u8]>::to_vec)
}

/// The target process's execution environment: everything kernels may
/// touch, assembled by the backend.
pub struct TargetEnv<'a> {
    /// This target's node id.
    pub node: u16,
    /// This "binary"'s handler registry.
    pub registry: &'a Registry,
    /// Target-local memory.
    pub mem: &'a dyn TargetMemory,
    /// Reverse (target → host) transport, when supported.
    pub reverse: Option<&'a dyn ham::message::ReverseTransport>,
    /// Compute-cost meter, when the device models execution time.
    pub meter: Option<&'a dyn ham::message::ComputeMeter>,
    /// Drop duplicate offloads by sequence-number watermark. Correct
    /// only on transports where slot rotation guarantees in-order seq
    /// arrival (the Aurora flag protocols: VEO, DMA) — there a frame
    /// with `seq ≤` the watermark can only be a recovery re-send whose
    /// original was already served, and its result still sits in the
    /// send slot. Push transports (local, TCP) post from many host
    /// threads and may deliver seqs out of order, so they must keep
    /// this off (they do not re-send frames either).
    pub dedup: bool,
}

/// Run the message loop for one target until a `Control` message or
/// channel shutdown, on a default-configured [`DeviceRuntime`].
/// Returns the number of offloads served.
pub fn run_target_loop(
    node: u16,
    registry: &Registry,
    mem: &dyn TargetMemory,
    chan: &dyn TargetChannel,
) -> u64 {
    run_target_loop_env(
        &TargetEnv {
            node,
            registry,
            mem,
            reverse: None,
            meter: None,
            dedup: false,
        },
        chan,
    )
}

/// [`run_target_loop`] with an optional reverse (target → host)
/// transport, made available to kernels via
/// [`ham::ExecContext::vhcall`].
pub fn run_target_loop_with_reverse(
    node: u16,
    registry: &Registry,
    mem: &dyn TargetMemory,
    chan: &dyn TargetChannel,
    reverse: Option<&dyn ham::message::ReverseTransport>,
) -> u64 {
    run_target_loop_env(
        &TargetEnv {
            node,
            registry,
            mem,
            reverse,
            meter: None,
            dedup: false,
        },
        chan,
    )
}

/// The fully-general message loop over a [`TargetEnv`]: a
/// default-configured [`DeviceRuntime`] ([`crate::device::DEFAULT_LANES`]
/// lanes, no clock, no lane registers).
pub fn run_target_loop_env(env: &TargetEnv<'_>, chan: &dyn TargetChannel) -> u64 {
    DeviceRuntime::new(DeviceConfig::new()).run(env, chan)
}

/// One *session* of the message loop on a default-configured
/// [`DeviceRuntime`], seeding the dedup watermark from a previous
/// session. Reconnecting transports run this in a loop: a
/// [`crate::device::HaltReason::Closed`] end means the link dropped and
/// the session may resume with the returned watermark; `Control` means
/// an orderly shutdown.
pub fn run_target_session(
    env: &TargetEnv<'_>,
    chan: &dyn TargetChannel,
    watermark: Option<u64>,
) -> crate::device::SessionEnd {
    DeviceRuntime::new(DeviceConfig::new()).run_session(env, chan, watermark)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chan::batch;
    use ham::message::VecMemory;
    use ham::registry::HandlerKey;
    use ham::wire::MsgKind;
    use ham::{f2f, ham_kernel, RegistryBuilder};
    use parking_lot::Mutex;
    use std::collections::VecDeque;

    ham_kernel! {
        pub fn add(_ctx, a: u64, b: u64) -> u64 { a + b }
    }

    struct QueueChannel {
        inbox: Mutex<VecDeque<(MsgHeader, Vec<u8>)>>,
        outbox: Mutex<Vec<(u16, u64, Vec<u8>)>>,
    }

    impl TargetChannel for QueueChannel {
        fn recv(&self, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)> {
            self.inbox
                .lock()
                .pop_front()
                .map(|(h, p)| (h, pool.adopt(p)))
        }
        fn try_recv(&self, pool: &Arc<FramePool>) -> Polled {
            match self.inbox.lock().pop_front() {
                Some((h, p)) => Polled::Msg(h, pool.adopt(p)),
                None => Polled::Closed,
            }
        }
        fn send_result(&self, reply_slot: u16, seq: u64, payload: Vec<u8>) {
            self.outbox.lock().push((reply_slot, seq, payload));
        }
    }

    fn header(kind: MsgKind, key: HandlerKey, len: usize, slot: u16, seq: u64) -> MsgHeader {
        MsgHeader {
            handler_key: key,
            payload_len: len as u32,
            kind,
            reply_slot: slot,
            corr: 0,
            seq,
        }
    }

    #[test]
    fn frame_round_trip() {
        assert_eq!(frame_result(Ok(vec![1, 2])), vec![0, 1, 2]);
        assert_eq!(unframe_result(&[0, 1, 2]).unwrap(), vec![1, 2]);
        let err = frame_result(Err(HamError::UnknownKey(5)));
        assert!(unframe_result(&err)
            .unwrap_err()
            .contains("unknown handler key 5"));
        assert!(unframe_result(&[]).is_err());
        assert!(unframe_result(&[9]).is_err());
    }

    #[test]
    fn loop_serves_offloads_then_stops_on_control() {
        let mut b = RegistryBuilder::new();
        b.register::<add>();
        let registry = b.seal(7);
        let key = registry.key_of::<add>().unwrap();

        let payload = ham::codec::encode(&f2f!(add, 20, 22)).unwrap();
        let chan = QueueChannel {
            inbox: Mutex::new(VecDeque::from(vec![
                (
                    header(MsgKind::Offload, key, payload.len(), 3, 100),
                    payload.clone(),
                ),
                (
                    header(MsgKind::Offload, key, payload.len(), 4, 101),
                    payload,
                ),
                (header(MsgKind::Control, HandlerKey(0), 0, 0, 102), vec![]),
            ])),
            outbox: Mutex::new(vec![]),
        };
        let mem = VecMemory::new(0);
        let served = run_target_loop(1, &registry, &mem, &chan);
        assert_eq!(served, 2);
        let out = chan.outbox.lock();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 3);
        assert_eq!(out[0].1, 100);
        let bytes = unframe_result(&out[0].2).unwrap();
        assert_eq!(ham::codec::decode::<u64>(&bytes).unwrap(), 42);
    }

    #[test]
    fn handler_errors_travel_as_error_frames() {
        let mut b = RegistryBuilder::new();
        b.register::<add>();
        let registry = b.seal(7);
        let key = registry.key_of::<add>().unwrap();
        // Corrupt payload → codec error inside the handler.
        let chan = QueueChannel {
            inbox: Mutex::new(VecDeque::from(vec![(
                header(MsgKind::Offload, key, 3, 0, 0),
                vec![1, 2, 3],
            )])),
            outbox: Mutex::new(vec![]),
        };
        let mem = VecMemory::new(0);
        run_target_loop(1, &registry, &mem, &chan);
        let out = chan.outbox.lock();
        assert!(unframe_result(&out[0].2).is_err());
    }

    #[test]
    fn dedup_skips_resent_seqs_without_reexecuting() {
        let mut b = RegistryBuilder::new();
        b.register::<add>();
        let registry = b.seal(7);
        let key = registry.key_of::<add>().unwrap();
        let payload = ham::codec::encode(&f2f!(add, 1, 2)).unwrap();
        let mk = |seq| {
            (
                header(MsgKind::Offload, key, payload.len(), 0, seq),
                payload.clone(),
            )
        };
        let chan = QueueChannel {
            // seq 0 served, then a duplicate of 0, then 1, then a late
            // duplicate of 0 again.
            inbox: Mutex::new(VecDeque::from(vec![mk(0), mk(0), mk(1), mk(0)])),
            outbox: Mutex::new(vec![]),
        };
        let mem = VecMemory::new(0);
        let env = TargetEnv {
            node: 1,
            registry: &registry,
            mem: &mem,
            reverse: None,
            meter: None,
            dedup: true,
        };
        assert_eq!(run_target_loop_env(&env, &chan), 2);
        let out = chan.outbox.lock();
        assert_eq!(out.iter().map(|o| o.1).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn batch_envelope_executes_members_in_order_with_one_result() {
        use ham::wire::HEADER_BYTES;
        let mut b = RegistryBuilder::new();
        b.register::<add>();
        let registry = b.seal(7);
        let key = registry.key_of::<add>().unwrap();
        // Envelope of two adds with seqs 10 and 11 (carrier seq = 11).
        let mut frame = vec![0u8; HEADER_BYTES + batch::COUNT_BYTES];
        for (seq, a) in [(10u64, 1u64), (11, 2)] {
            let payload = ham::codec::encode(&f2f!(add, a, 100)).unwrap();
            let sub = MsgHeader {
                handler_key: key,
                payload_len: payload.len() as u32,
                kind: MsgKind::Offload,
                reply_slot: 0,
                corr: seq,
                seq,
            };
            batch::append_sub(&mut frame, &sub, &payload);
        }
        let carrier = batch::carrier_header(11, frame.len() - HEADER_BYTES, 5, 10);
        batch::patch_envelope(&mut frame, &carrier, 2);
        let chan = QueueChannel {
            inbox: Mutex::new(VecDeque::from(vec![(
                carrier,
                frame[HEADER_BYTES..].to_vec(),
            )])),
            outbox: Mutex::new(vec![]),
        };
        let mem = VecMemory::new(0);
        assert_eq!(run_target_loop(1, &registry, &mem, &chan), 2);
        let out = chan.outbox.lock();
        assert_eq!(out.len(), 1, "one result message for the whole batch");
        assert_eq!((out[0].0, out[0].1), (5, 11));
        let body = unframe_result(&out[0].2).unwrap();
        let parts: Vec<_> = batch::ResultPartIter::new(&body)
            .unwrap()
            .map(|p| p.unwrap())
            .collect();
        assert_eq!(parts.len(), 2);
        for (i, expect) in [(0usize, 101u64), (1, 102)] {
            let (seq, framed) = parts[i];
            assert_eq!(seq, 10 + i as u64);
            let bytes = unframe_result(framed).unwrap();
            assert_eq!(ham::codec::decode::<u64>(&bytes).unwrap(), expect);
        }
    }

    #[test]
    fn malformed_batch_is_rejected_wholesale() {
        let registry = RegistryBuilder::new().seal(0);
        let carrier = batch::carrier_header(3, 4, 0, 0);
        // Count claims one sub but no bytes follow.
        let chan = QueueChannel {
            inbox: Mutex::new(VecDeque::from(vec![(carrier, 1u32.to_le_bytes().to_vec())])),
            outbox: Mutex::new(vec![]),
        };
        let mem = VecMemory::new(0);
        assert_eq!(run_target_loop(1, &registry, &mem, &chan), 0);
        let out = chan.outbox.lock();
        assert_eq!(out.len(), 1);
        assert!(unframe_result(&out[0].2).is_err(), "error frame");
    }

    #[test]
    fn loop_survives_malformed_batch_and_keeps_serving() {
        let mut b = RegistryBuilder::new();
        b.register::<add>();
        let registry = b.seal(7);
        let key = registry.key_of::<add>().unwrap();
        // A lying envelope (count = 2, one truncated sub) followed by a
        // well-formed plain offload: the loop must answer the first with
        // an error frame and still serve the second.
        let mut hostile = 2u32.to_le_bytes().to_vec();
        hostile.extend_from_slice(&[0xAB; 7]);
        let payload = ham::codec::encode(&f2f!(add, 40, 2)).unwrap();
        let chan = QueueChannel {
            inbox: Mutex::new(VecDeque::from(vec![
                (batch::carrier_header(5, hostile.len(), 1, 0), hostile),
                (header(MsgKind::Offload, key, payload.len(), 2, 6), payload),
            ])),
            outbox: Mutex::new(vec![]),
        };
        let mem = VecMemory::new(0);
        assert_eq!(run_target_loop(1, &registry, &mem, &chan), 1);
        let out = chan.outbox.lock();
        assert_eq!(out.len(), 2);
        assert!(unframe_result(&out[0].2).is_err(), "hostile batch errors");
        let bytes = unframe_result(&out[1].2).unwrap();
        assert_eq!(ham::codec::decode::<u64>(&bytes).unwrap(), 42);
    }

    #[test]
    fn dedup_skips_resent_batches_atomically() {
        let mut b = RegistryBuilder::new();
        b.register::<add>();
        let registry = b.seal(7);
        let key = registry.key_of::<add>().unwrap();
        let mut frame = vec![0u8; ham::wire::HEADER_BYTES + batch::COUNT_BYTES];
        for seq in [0u64, 1] {
            let payload = ham::codec::encode(&f2f!(add, seq, 1)).unwrap();
            let sub = MsgHeader {
                handler_key: key,
                payload_len: payload.len() as u32,
                kind: MsgKind::Offload,
                reply_slot: 0,
                corr: 0,
                seq,
            };
            batch::append_sub(&mut frame, &sub, &payload);
        }
        let carrier = batch::carrier_header(1, frame.len() - ham::wire::HEADER_BYTES, 0, 0);
        batch::patch_envelope(&mut frame, &carrier, 2);
        let envelope = (carrier, frame[ham::wire::HEADER_BYTES..].to_vec());
        let chan = QueueChannel {
            inbox: Mutex::new(VecDeque::from(vec![envelope.clone(), envelope])),
            outbox: Mutex::new(vec![]),
        };
        let mem = VecMemory::new(0);
        let env = TargetEnv {
            node: 1,
            registry: &registry,
            mem: &mem,
            reverse: None,
            meter: None,
            dedup: true,
        };
        assert_eq!(run_target_loop_env(&env, &chan), 2, "duplicate skipped");
        assert_eq!(chan.outbox.lock().len(), 1);
    }

    #[test]
    fn empty_channel_ends_loop() {
        let chan = QueueChannel {
            inbox: Mutex::new(VecDeque::new()),
            outbox: Mutex::new(vec![]),
        };
        let registry = RegistryBuilder::new().seal(0);
        let mem = VecMemory::new(0);
        assert_eq!(run_target_loop(1, &registry, &mem, &chan), 0);
    }
}
