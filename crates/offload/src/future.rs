//! Lazy synchronisation on asynchronous offloads (Table II:
//! `future<T>`).
//!
//! HAM-Offload futures are *polling* futures: the host checks the
//! target's result flag when asked ([`Future::test`]) or spins on it
//! ([`Future::get`]). Nothing runs in the background on the host — the
//! paper's design keeps the host thread in control of when communication
//! happens.

use crate::backend::{CommBackend, SlotId};
use crate::types::NodeId;
use crate::OffloadError;
use aurora_sim_core::trace::{self, OffloadId};
use aurora_sim_core::SimTime;
use ham::HamError;
use std::sync::Arc;

/// Handle to the result of an [`crate::Offload::async_`] offload.
#[must_use = "futures do nothing unless polled with test() or get()"]
pub struct Future<T> {
    /// `None` for already-completed futures (e.g. `put_async`, whose
    /// underlying VEO transfer is synchronous).
    backend: Option<Arc<dyn CommBackend>>,
    target: NodeId,
    slot: SlotId,
    decode: fn(&[u8]) -> Result<T, HamError>,
    state: State<T>,
    /// Telemetry correlation id of the offload this future resolves.
    offload: OffloadId,
    /// Virtual post time, for the latency metric at completion.
    posted_at: SimTime,
}

enum State<T> {
    Pending,
    Ready(Result<T, OffloadError>),
    Taken,
}

impl<T> Future<T> {
    /// Construct (backends/runtime only).
    pub(crate) fn new(
        backend: Arc<dyn CommBackend>,
        target: NodeId,
        slot: SlotId,
        decode: fn(&[u8]) -> Result<T, HamError>,
        offload: OffloadId,
        posted_at: SimTime,
    ) -> Self {
        Self {
            backend: Some(backend),
            target,
            slot,
            decode,
            state: State::Pending,
            offload,
            posted_at,
        }
    }

    /// An already-completed future (Table II's `future<void>`-returning
    /// `put`/`get`: the simulated transports, like real `veo_write_mem`
    /// and `veo_read_mem`, complete synchronously, so the future exists
    /// for API compatibility and is immediately ready).
    pub(crate) fn ready(target: NodeId, value: Result<T, OffloadError>) -> Self {
        fn never<T>(_: &[u8]) -> Result<T, HamError> {
            unreachable!("ready futures never decode")
        }
        Self {
            backend: None,
            target,
            slot: SlotId(u64::MAX),
            decode: never::<T>,
            state: State::Ready(value),
            offload: OffloadId(0),
            posted_at: SimTime::ZERO,
        }
    }

    /// Non-blocking readiness check (Table II `test()`). Once this
    /// returns `true`, [`Future::get`] will not block.
    pub fn test(&mut self) -> bool {
        match &self.state {
            State::Pending => {
                let Some(backend) = &self.backend else {
                    return true;
                };
                // Polls run on the host thread but belong to the offload's
                // span tree.
                let _scope = trace::offload_scope(self.offload);
                let _node = trace::node_scope(crate::types::NodeId::HOST.0);
                match backend.try_result(self.target, self.slot) {
                    Ok(None) => {
                        backend.metrics().on_poll(false);
                        false
                    }
                    Ok(Some(bytes)) => {
                        Self::complete(backend, self.posted_at);
                        let decoded = (self.decode)(&bytes).map_err(OffloadError::from);
                        self.state = State::Ready(decoded);
                        true
                    }
                    Err(e) => {
                        Self::complete(backend, self.posted_at);
                        self.state = State::Ready(Err(e));
                        true
                    }
                }
            }
            State::Ready(_) => true,
            State::Taken => true,
        }
    }

    /// Blocking accessor (Table II `get()`): polls until the result
    /// message arrives, then decodes and returns it.
    pub fn get(mut self) -> Result<T, OffloadError> {
        loop {
            if self.test() {
                break;
            }
            // The real runtime busy-polls the flag; yield keeps the
            // simulation's host thread from starving the target thread.
            std::thread::yield_now();
        }
        match core::mem::replace(&mut self.state, State::Taken) {
            State::Ready(r) => r,
            _ => unreachable!("test() returned true"),
        }
    }

    /// The hit poll: count it, close the latency register. Errors also
    /// complete the offload — otherwise the inflight gauge would leak.
    fn complete(backend: &Arc<dyn CommBackend>, posted_at: SimTime) {
        backend.metrics().on_poll(true);
        let now = backend.host_clock().now();
        backend.metrics().on_complete(now.saturating_sub(posted_at));
    }

    /// The target this offload ran on.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Telemetry correlation id of this offload (0 for ready futures).
    pub fn offload_id(&self) -> OffloadId {
        self.offload
    }
}

impl<T> core::fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let state = match self.state {
            State::Pending => "pending",
            State::Ready(_) => "ready",
            State::Taken => "taken",
        };
        write!(f, "Future({} slot {:?}, {state})", self.target, self.slot.0)
    }
}
