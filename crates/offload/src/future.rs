//! Lazy synchronisation on asynchronous offloads (Table II:
//! `future<T>`).
//!
//! HAM-Offload futures are *polling* futures: the host checks the
//! target's result flag when asked ([`Future::test`]) or spins on it
//! ([`Future::get`]). Nothing runs in the background on the host — the
//! paper's design keeps the host thread in control of when communication
//! happens.

use crate::backend::{CommBackend, SlotId};
use crate::types::NodeId;
use crate::OffloadError;
use ham::HamError;
use std::sync::Arc;

/// Handle to the result of an [`crate::Offload::async_`] offload.
#[must_use = "futures do nothing unless polled with test() or get()"]
pub struct Future<T> {
    /// `None` for already-completed futures (e.g. `put_async`, whose
    /// underlying VEO transfer is synchronous).
    backend: Option<Arc<dyn CommBackend>>,
    target: NodeId,
    slot: SlotId,
    decode: fn(&[u8]) -> Result<T, HamError>,
    state: State<T>,
}

enum State<T> {
    Pending,
    Ready(Result<T, OffloadError>),
    Taken,
}

impl<T> Future<T> {
    /// Construct (backends/runtime only).
    pub(crate) fn new(
        backend: Arc<dyn CommBackend>,
        target: NodeId,
        slot: SlotId,
        decode: fn(&[u8]) -> Result<T, HamError>,
    ) -> Self {
        Self {
            backend: Some(backend),
            target,
            slot,
            decode,
            state: State::Pending,
        }
    }

    /// An already-completed future (Table II's `future<void>`-returning
    /// `put`/`get`: the simulated transports, like real `veo_write_mem`
    /// and `veo_read_mem`, complete synchronously, so the future exists
    /// for API compatibility and is immediately ready).
    pub(crate) fn ready(target: NodeId, value: Result<T, OffloadError>) -> Self {
        fn never<T>(_: &[u8]) -> Result<T, HamError> {
            unreachable!("ready futures never decode")
        }
        Self {
            backend: None,
            target,
            slot: SlotId(u64::MAX),
            decode: never::<T>,
            state: State::Ready(value),
        }
    }

    /// Non-blocking readiness check (Table II `test()`). Once this
    /// returns `true`, [`Future::get`] will not block.
    pub fn test(&mut self) -> bool {
        match &self.state {
            State::Pending => {
                let Some(backend) = &self.backend else {
                    return true;
                };
                match backend.try_result(self.target, self.slot) {
                    Ok(None) => false,
                    Ok(Some(bytes)) => {
                        let decoded = (self.decode)(&bytes).map_err(OffloadError::from);
                        self.state = State::Ready(decoded);
                        true
                    }
                    Err(e) => {
                        self.state = State::Ready(Err(e));
                        true
                    }
                }
            }
            State::Ready(_) => true,
            State::Taken => true,
        }
    }

    /// Blocking accessor (Table II `get()`): polls until the result
    /// message arrives, then decodes and returns it.
    pub fn get(mut self) -> Result<T, OffloadError> {
        loop {
            if self.test() {
                break;
            }
            // The real runtime busy-polls the flag; yield keeps the
            // simulation's host thread from starving the target thread.
            std::thread::yield_now();
        }
        match core::mem::replace(&mut self.state, State::Taken) {
            State::Ready(r) => r,
            _ => unreachable!("test() returned true"),
        }
    }

    /// The target this offload ran on.
    pub fn target(&self) -> NodeId {
        self.target
    }
}

impl<T> core::fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let state = match self.state {
            State::Pending => "pending",
            State::Ready(_) => "ready",
            State::Taken => "taken",
        };
        write!(f, "Future({} slot {:?}, {state})", self.target, self.slot.0)
    }
}
