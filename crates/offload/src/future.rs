//! Lazy synchronisation on asynchronous offloads (Table II:
//! `future<T>`).
//!
//! HAM-Offload futures are *polling* futures: the host checks the
//! target's result flag when asked ([`Future::test`]) or spins on it
//! ([`Future::get`]). Nothing runs in the background on the host — the
//! paper's design keeps the host thread in control of when communication
//! happens. Since the channel-core refactor a poll is a *drain*: one
//! flag sweep retires every ready completion on the channel into the
//! [`crate::chan::CompletionQueue`], so sibling futures settle from the
//! queue without touching the transport again.

use crate::backend::{CommBackend, SlotId};
use crate::chan::engine;
use crate::types::NodeId;
use crate::OffloadError;
use aurora_sim_core::trace::{self, OffloadId};
use aurora_sim_core::SimTime;
use ham::HamError;
use std::sync::Arc;

/// Handle to the result of an [`crate::Offload::async_`] offload.
#[must_use = "futures do nothing unless polled with test() or get()"]
pub struct Future<T> {
    /// `None` for already-completed futures (e.g. `put_async`, whose
    /// underlying VEO transfer is synchronous).
    backend: Option<Arc<dyn CommBackend>>,
    target: NodeId,
    slot: SlotId,
    decode: fn(&[u8]) -> Result<T, HamError>,
    state: State<T>,
    /// Telemetry correlation id of the offload this future resolves.
    offload: OffloadId,
    /// Virtual post time, for the latency metric at completion.
    posted_at: SimTime,
}

enum State<T> {
    Pending,
    Ready(Result<T, OffloadError>),
    Taken,
}

impl<T> Future<T> {
    /// Construct (backends/runtime only).
    pub(crate) fn new(
        backend: Arc<dyn CommBackend>,
        target: NodeId,
        slot: SlotId,
        decode: fn(&[u8]) -> Result<T, HamError>,
        offload: OffloadId,
        posted_at: SimTime,
    ) -> Self {
        Self {
            backend: Some(backend),
            target,
            slot,
            decode,
            state: State::Pending,
            offload,
            posted_at,
        }
    }

    /// An already-completed future (Table II's `future<void>`-returning
    /// `put`/`get`: the simulated transports, like real `veo_write_mem`
    /// and `veo_read_mem`, complete synchronously, so the future exists
    /// for API compatibility and is immediately ready).
    pub(crate) fn ready(target: NodeId, value: Result<T, OffloadError>) -> Self {
        fn never<T>(_: &[u8]) -> Result<T, HamError> {
            unreachable!("ready futures never decode")
        }
        Self {
            backend: None,
            target,
            slot: SlotId(u64::MAX),
            decode: never::<T>,
            state: State::Ready(value),
            offload: OffloadId(0),
            posted_at: SimTime::ZERO,
        }
    }

    /// Non-blocking readiness check (Table II `test()`). Once this
    /// returns `true`, [`Future::get`] will not block.
    ///
    /// A `test` sweeps the whole channel: every in-flight offload whose
    /// flag is set completes into the queue in this one pass, so with N
    /// offloads in flight the host does O(completions) work rather than
    /// one transport poll per future per round.
    pub fn test(&mut self) -> bool {
        match &self.state {
            State::Pending => {
                let Some(backend) = &self.backend else {
                    return true;
                };
                // Polls run on the host thread but belong to the offload's
                // span tree.
                let _scope = trace::offload_scope(self.offload);
                let _node = trace::node_scope(crate::types::NodeId::HOST.0);
                match engine::try_result(backend.as_ref(), self.target, self.slot.0) {
                    Ok(None) => {
                        backend.metrics().on_poll(false);
                        false
                    }
                    Ok(Some(frame)) => {
                        Self::complete(backend, self.target, self.posted_at);
                        // Decode straight out of the pooled result frame;
                        // dropping it returns the buffer to the channel.
                        let decoded = match crate::target_loop::unframe_result_ref(&frame) {
                            Ok(bytes) => (self.decode)(bytes).map_err(OffloadError::from),
                            Err(msg) => Err(OffloadError::Backend(msg)),
                        };
                        self.state = State::Ready(decoded);
                        true
                    }
                    Err(e) => {
                        Self::complete(backend, self.target, self.posted_at);
                        self.state = State::Ready(Err(e));
                        true
                    }
                }
            }
            State::Ready(_) => true,
            State::Taken => true,
        }
    }

    /// Blocking accessor (Table II `get()`): polls until the result
    /// message arrives, then decodes and returns it.
    pub fn get(mut self) -> Result<T, OffloadError> {
        let mut backoff = crate::chan::Backoff::new();
        loop {
            if self.test() {
                break;
            }
            // The real runtime busy-polls the flag; the backoff spins
            // briefly, then yields, then sleeps, so a long wait stops
            // starving the target thread (and the host core).
            backoff.snooze();
        }
        match core::mem::replace(&mut self.state, State::Taken) {
            State::Ready(r) => r,
            _ => unreachable!("test() returned true"),
        }
    }

    /// The hit poll: count it, close the latency register (attributed
    /// to `target` so the scheduler's per-node EWMA stays fed). Errors
    /// also complete the offload — otherwise the inflight gauge would
    /// leak.
    fn complete(backend: &Arc<dyn CommBackend>, target: NodeId, posted_at: SimTime) {
        backend.metrics().on_poll(true);
        let now = backend.host_clock().now();
        backend
            .metrics()
            .on_complete_on(target.0, now.saturating_sub(posted_at));
    }

    /// Still waiting on the transport?
    pub(crate) fn is_pending(&self) -> bool {
        matches!(self.state, State::Pending)
    }

    /// Result arrived (and not yet consumed)?
    pub(crate) fn is_ready(&self) -> bool {
        matches!(self.state, State::Ready(_))
    }

    /// Settle from the completion queue *without* a transport sweep —
    /// the cheap half of `wait_any`/`wait_all` rounds: after one drain
    /// of the channel, every sibling future settles from the queue.
    /// Returns `true` if this future became (or already was) ready.
    pub(crate) fn try_settle_completed(&mut self) -> bool {
        if !self.is_pending() {
            return true;
        }
        let Some(backend) = &self.backend else {
            return true;
        };
        let Ok(chan) = backend.channel(self.target) else {
            return false;
        };
        match chan.take_completed(self.slot.0) {
            None => false,
            Some(done) => {
                Self::complete(backend, self.target, self.posted_at);
                let decoded = match done {
                    Ok(frame) => match crate::target_loop::unframe_result_ref(&frame) {
                        Ok(bytes) => (self.decode)(bytes).map_err(OffloadError::from),
                        Err(msg) => Err(OffloadError::Backend(msg)),
                    },
                    Err(e) => Err(e),
                };
                self.state = State::Ready(decoded);
                true
            }
        }
    }

    /// Identity of the channel this future waits on (backend + target),
    /// for deduplicating sweeps across a future set. `None` once
    /// settled or for ready-constructed futures.
    pub(crate) fn channel_key(&self) -> Option<(usize, NodeId)> {
        if !self.is_pending() {
            return None;
        }
        self.backend
            .as_ref()
            .map(|b| (Arc::as_ptr(b) as *const () as usize, self.target))
    }

    /// One flag sweep of this future's channel (no-op for ready
    /// futures). Completions land in the queue for any sibling future.
    pub(crate) fn drain_channel(&self) {
        if let Some(backend) = &self.backend {
            let _node = trace::node_scope(crate::types::NodeId::HOST.0);
            let _ = engine::drain(backend.as_ref(), self.target);
        }
    }

    /// The target this offload ran on.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Channel sequence number of the offload (the scheduler matches it
    /// against the channel's unsent markers on failure).
    pub(crate) fn seq(&self) -> u64 {
        self.slot.0
    }

    /// Telemetry correlation id of this offload (0 for ready futures).
    pub fn offload_id(&self) -> OffloadId {
        self.offload
    }
}

impl<T> core::fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let state = match self.state {
            State::Pending => "pending",
            State::Ready(_) => "ready",
            State::Taken => "taken",
        };
        write!(f, "Future({} slot {:?}, {state})", self.target, self.slot.0)
    }
}
