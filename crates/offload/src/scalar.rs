//! Element types for explicit buffers.
//!
//! Buffers cross the host/target boundary as raw bytes; [`Scalar`] fixes
//! the wire representation (little-endian, native width) per element type
//! so `put`/`get` are portable between the heterogeneous "binaries".

/// A plain-old-data element type with a defined wire layout.
pub trait Scalar: Copy + Send + Sync + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// The additive identity — what freshly `allocate`d buffers read as
    /// before data lands in them.
    const ZERO: Self;

    /// Write `self` little-endian into `out` (`out.len() == SIZE`).
    fn write_le(&self, out: &mut [u8]);

    /// Read a value little-endian from `input` (`input.len() == SIZE`).
    fn read_le(input: &[u8]) -> Self;

    /// Encode a slice into a fresh byte vector.
    fn encode_slice(values: &[Self]) -> Vec<u8> {
        let mut out = vec![0u8; values.len() * Self::SIZE];
        for (v, chunk) in values.iter().zip(out.chunks_exact_mut(Self::SIZE)) {
            v.write_le(chunk);
        }
        out
    }

    /// Decode bytes into `out` (`bytes.len() == out.len() * SIZE`).
    fn decode_slice(bytes: &[u8], out: &mut [Self]) {
        assert_eq!(bytes.len(), out.len() * Self::SIZE, "length mismatch");
        for (chunk, v) in bytes.chunks_exact(Self::SIZE).zip(out.iter_mut()) {
            *v = Self::read_le(chunk);
        }
    }
}

macro_rules! scalar_impl {
    ($($ty:ty),*) => {
        $(
            impl Scalar for $ty {
                const SIZE: usize = core::mem::size_of::<$ty>();
                const ZERO: Self = 0 as $ty;
                fn write_le(&self, out: &mut [u8]) {
                    out.copy_from_slice(&self.to_le_bytes());
                }
                fn read_le(input: &[u8]) -> Self {
                    <$ty>::from_le_bytes(input.try_into().expect("size checked"))
                }
            }
        )*
    };
}

scalar_impl!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sizes() {
        assert_eq!(<u8 as Scalar>::SIZE, 1);
        assert_eq!(<f64 as Scalar>::SIZE, 8);
        assert_eq!(<i32 as Scalar>::SIZE, 4);
    }

    #[test]
    fn slice_round_trip() {
        let xs = [1.5f64, -2.25, 1e300, 0.0];
        let bytes = f64::encode_slice(&xs);
        assert_eq!(bytes.len(), 32);
        let mut out = [0.0f64; 4];
        f64::decode_slice(&bytes, &mut out);
        assert_eq!(out, xs);
    }

    #[test]
    fn endianness_is_fixed() {
        let bytes = u32::encode_slice(&[0x0102_0304]);
        assert_eq!(bytes, vec![4, 3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn decode_length_checked() {
        let mut out = [0u16; 2];
        u16::decode_slice(&[0u8; 3], &mut out);
    }

    proptest! {
        #[test]
        fn prop_round_trip_f64(xs: Vec<f64>) {
            let bytes = f64::encode_slice(&xs);
            let mut out = vec![0.0f64; xs.len()];
            f64::decode_slice(&bytes, &mut out);
            for (a, b) in xs.iter().zip(&out) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn prop_round_trip_i16(xs: Vec<i16>) {
            let bytes = i16::encode_slice(&xs);
            let mut out = vec![0i16; xs.len()];
            i16::decode_slice(&bytes, &mut out);
            prop_assert_eq!(xs, out);
        }
    }
}
