//! The shared target-side engine: one [`DeviceRuntime`] behind every
//! backend's `ham_main()`.
//!
//! The serial loop in [`crate::target_loop`] executed every message —
//! and every batch member — one after another, while the paper's VE is
//! an 8-core vector processor. This runtime models those cores as
//! **worker lanes**: each lane is a virtual-time cursor, work items
//! (batch members and independently pipelined offloads) are dealt
//! round-robin onto per-lane [`deque::StealDeque`]s, and an idle lane
//! steals from the most-loaded peer. Execution still happens on the
//! device-loop thread in a fixed order — the deterministic greedy
//! schedule below — so same-seed replays stay bit-identical; the
//! *parallelism* shows up on the virtual timeline the benches measure.
//!
//! ## The window
//!
//! Each cycle blocks for one message, then drains whatever the host has
//! already made available (bounded by [`DeviceConfig::window`]) into a
//! scheduling window. Everything in the window is independent in-flight
//! work by construction — the host only pipelines offloads that have no
//! ordering constraint between them — so its members may share the lane
//! schedule. All results of a window are published before the runtime
//! blocks again, so the host never waits on a result the device is
//! sitting on.
//!
//! ## In-order publication
//!
//! Result frames are published in **arrival order**, each one after
//! joining the device clock to that carrier's completion barrier (the
//! max finish time of its members across lanes). Arrival-order
//! publication is what keeps the dedup watermark and the recovery
//! protocol's "result still in the send slot" replay reasoning sound:
//! the watermark advances exactly as it would under the serial loop,
//! and a carrier's combined result exists before any later seq is
//! acknowledged. A batch carrier publishes one combined frame only
//! after *all* its members finished (per-carrier completion barrier),
//! so a re-sent carrier still dedups atomically.

pub mod deque;

use crate::chan::batch;
use crate::chan::pool::{FramePool, PooledFrame};
use crate::target_loop::{frame_result, Polled, TargetChannel, TargetEnv};
use aurora_sim_core::trace::{self, OffloadId};
use aurora_sim_core::{Clock, LaneStats, SimTime};
use deque::StealDeque;
use ham::message::ComputeMeter;
use ham::wire::{MsgHeader, MsgKind};
use ham::{ExecContext, HamError};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The paper's VE core count — the default worker-lane count.
pub const DEFAULT_LANES: usize = 8;

/// Default cap on messages drained into one scheduling window.
pub const DEFAULT_WINDOW: usize = 64;

/// Initial per-lane deque capacity; grown when a window outsizes it.
const LANE_DEQUE_CAP: usize = 64;

/// Configuration of one target's device runtime.
#[derive(Clone)]
pub struct DeviceConfig {
    /// Worker lanes (simulated VE cores). `0` is clamped to `1`; `1`
    /// reproduces the serial loop's timeline exactly.
    pub lanes: usize,
    /// Most messages one window drains before scheduling (`0` → default).
    pub window: usize,
    /// The device's virtual clock, joined to each carrier's completion
    /// barrier at publication. `None` (clock-less transports: local,
    /// TCP) publishes immediately — their kernels carry no meter, so
    /// every barrier is at the window base anyway.
    pub clock: Option<Clock>,
    /// Lane occupancy / steal registers to report into, usually
    /// [`aurora_sim_core::BackendMetrics::lane_stats`].
    pub stats: Option<Arc<LaneStats>>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceConfig {
    /// The default runtime: [`DEFAULT_LANES`] lanes, no clock, no stats.
    pub fn new() -> Self {
        Self {
            lanes: DEFAULT_LANES,
            window: DEFAULT_WINDOW,
            clock: None,
            stats: None,
        }
    }

    /// Builder: set the lane count.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Builder: attach the device clock.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Builder: attach lane registers.
    pub fn with_stats(mut self, stats: Arc<LaneStats>) -> Self {
        self.stats = Some(stats);
        self
    }
}

/// [`ComputeMeter`] shim placed in front of the backend's real meter
/// while a member executes on a lane: instead of advancing the device
/// clock, charged flops are priced via [`ComputeMeter::cost_ps`] and
/// accumulated against the lane's virtual cursor. Compute spans are
/// recorded at lane-local times, so a trace shows members overlapping.
struct LaneMeter<'a> {
    inner: Option<&'a dyn ComputeMeter>,
    /// Lane-local virtual start of the member now executing (ps).
    base_ps: AtomicU64,
    /// Cost accumulated by the member now executing (ps).
    charged_ps: AtomicU64,
}

impl<'a> LaneMeter<'a> {
    fn new(inner: Option<&'a dyn ComputeMeter>) -> Self {
        Self {
            inner,
            base_ps: AtomicU64::new(0),
            charged_ps: AtomicU64::new(0),
        }
    }

    /// Arm the shim for one member starting at lane time `base_ps`.
    fn begin(&self, base_ps: u64) {
        self.base_ps.store(base_ps, Ordering::Relaxed);
        self.charged_ps.store(0, Ordering::Relaxed);
    }

    /// Total cost the armed member charged.
    fn charged(&self) -> u64 {
        self.charged_ps.load(Ordering::Relaxed)
    }
}

impl ComputeMeter for LaneMeter<'_> {
    fn charge_flops(&self, flops: u64) {
        let Some(inner) = self.inner else { return };
        let d = inner.cost_ps(flops);
        let t0 = self.base_ps.load(Ordering::Relaxed) + self.charged_ps.load(Ordering::Relaxed);
        trace::record(
            "ve.compute",
            flops,
            SimTime::from_ps(t0),
            SimTime::from_ps(t0 + d),
        );
        self.charged_ps.fetch_add(d, Ordering::Relaxed);
    }

    fn cost_ps(&self, flops: u64) -> u64 {
        self.inner.map_or(0, |m| m.cost_ps(flops))
    }
}

/// One schedulable unit: a plain offload, or one member of a batch.
struct Item {
    /// Window index of the message owning the payload bytes.
    msg: usize,
    /// Index of the owning carrier in the window's carrier list.
    carrier: usize,
    header: MsgHeader,
    /// Byte range of the member payload inside its message body.
    payload: Range<usize>,
}

/// One received message and its publication plan.
struct Carrier {
    header: MsgHeader,
    /// This carrier's slice of the window's flat item list.
    items: Range<usize>,
    /// Dedup duplicate: publish nothing (the original result still sits
    /// in — or is on its way to — the send slot).
    skip: bool,
    /// Wire error: publish an error frame. The well-formed member
    /// prefix still executes first, mirroring the serial loop.
    reject: Option<String>,
    batch: bool,
    /// Watermark contribution once published (max executed member seq).
    wm: Option<u64>,
    /// Completion barrier: max virtual finish time of the members (ps).
    finish_ps: u64,
}

/// Why one [`DeviceRuntime::run_session`] call returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HaltReason {
    /// A `Control` frame arrived: orderly shutdown, do not resume.
    Control,
    /// The transport closed under the loop (disconnect). The session is
    /// resumable: keep the memory and the watermark, re-accept, and run
    /// another session with the carried watermark.
    Closed,
}

/// Where one session of the message loop ended.
#[derive(Clone, Copy, Debug)]
pub struct SessionEnd {
    /// Offloads served this session (batch members individually).
    pub served: u64,
    /// The dedup watermark as it stands after this session: the max
    /// executed seq, monotonic across resumed sessions. Announced to
    /// the host on reconnect so it replays only provably-unexecuted
    /// frames.
    pub watermark: Option<u64>,
    /// Why the loop stopped.
    pub reason: HaltReason,
}

/// Execute one member with the lane meter shim in place of the
/// backend's clock-advancing meter.
fn execute_member(
    env: &TargetEnv<'_>,
    meter: &LaneMeter<'_>,
    header: &MsgHeader,
    payload: &[u8],
) -> Vec<u8> {
    let mut ctx = ExecContext::new(env.node, env.mem);
    if let Some(r) = env.reverse {
        ctx = ctx.with_reverse_transport(env.registry, r);
    }
    if env.meter.is_some() {
        ctx = ctx.with_meter(meter);
    }
    frame_result(env.registry.execute(header.handler_key, payload, &mut ctx))
}

/// The shared target-side engine. Owns the lane scheduler and the
/// device-side frame pool that recv bodies recycle through.
pub struct DeviceRuntime {
    cfg: DeviceConfig,
    pool: Arc<FramePool>,
}

impl DeviceRuntime {
    /// A runtime with the given configuration.
    pub fn new(cfg: DeviceConfig) -> Self {
        Self {
            cfg,
            pool: FramePool::new(),
        }
    }

    /// Run the message loop for one target until a `Control` message or
    /// channel shutdown. Returns the number of offloads served (batch
    /// members count individually).
    pub fn run(&self, env: &TargetEnv<'_>, chan: &dyn TargetChannel) -> u64 {
        self.run_session(env, chan, None).served
    }

    /// Run one *session* of the message loop, seeding the dedup
    /// watermark from a previous session on the same target. Reports
    /// how the session ended so a reconnecting transport can tell an
    /// orderly `Control` shutdown ([`HaltReason::Control`]) from a
    /// dropped connection ([`HaltReason::Closed`]) and carry the
    /// watermark into the resume handshake.
    pub fn run_session(
        &self,
        env: &TargetEnv<'_>,
        chan: &dyn TargetChannel,
        initial_watermark: Option<u64>,
    ) -> SessionEnd {
        let _node = trace::node_scope(env.node);
        let lanes = self.cfg.lanes.max(1);
        let window_cap = if self.cfg.window == 0 {
            DEFAULT_WINDOW
        } else {
            self.cfg.window
        };
        let mut served: u64 = 0;
        let mut watermark: Option<u64> = initial_watermark;
        let mut reason = HaltReason::Closed;
        // Lane cursors persist across windows and only move forward.
        let mut avail = vec![0u64; lanes];
        let mut deques: Vec<StealDeque> = (0..lanes)
            .map(|_| StealDeque::with_capacity(LANE_DEQUE_CAP))
            .collect();
        // Window scratch, reused so the warm cycle allocates little
        // beyond the result buffers themselves.
        let mut window: Vec<(MsgHeader, PooledFrame)> = Vec::new();
        let mut items: Vec<Item> = Vec::new();
        let mut carriers: Vec<Carrier> = Vec::new();
        let mut parts: Vec<Vec<u8>> = Vec::new();
        let mut executed = vec![0u64; lanes];
        let meter = LaneMeter::new(env.meter);

        loop {
            // ---- Drain: one blocking recv, then whatever is ready ----
            window.clear();
            let mark = trace::mark();
            let Some((h, p)) = chan.recv(&self.pool) else {
                break;
            };
            if h.corr != 0 {
                trace::retag_since(&mark, OffloadId(h.corr));
            }
            let mut closed = false;
            let mut saw_control = h.kind == MsgKind::Control;
            window.push((h, p));
            while !saw_control && window.len() < window_cap {
                let mark = trace::mark();
                match chan.try_recv(&self.pool) {
                    Polled::Msg(h, p) => {
                        if h.corr != 0 {
                            trace::retag_since(&mark, OffloadId(h.corr));
                        }
                        saw_control = h.kind == MsgKind::Control;
                        window.push((h, p));
                    }
                    Polled::Empty => break,
                    Polled::Closed => {
                        closed = true;
                        break;
                    }
                }
            }

            // ---- Parse: carriers, members, dedup, hostile frames ----
            items.clear();
            carriers.clear();
            let mut halt = closed;
            // Skip decisions run against the watermark as it *will*
            // stand when each carrier publishes — identical to the
            // serial loop's per-message interleaving.
            let mut wm_window = watermark;
            for (mi, (h, payload)) in window.iter().enumerate() {
                let start = items.len();
                match h.kind {
                    MsgKind::Control => {
                        halt = true;
                        reason = HaltReason::Control;
                        break;
                    }
                    MsgKind::Result => {
                        // A result message arriving at a target is a
                        // protocol violation; surface it loudly.
                        panic!("target {} received a Result message", env.node);
                    }
                    MsgKind::Offload => {
                        let skip = env.dedup && wm_window.is_some_and(|w| h.seq <= w);
                        if !skip {
                            items.push(Item {
                                msg: mi,
                                carrier: carriers.len(),
                                header: *h,
                                payload: 0..payload.len(),
                            });
                            wm_window = Some(wm_window.map_or(h.seq, |w| w.max(h.seq)));
                        }
                        carriers.push(Carrier {
                            header: *h,
                            items: start..items.len(),
                            skip,
                            reject: None,
                            batch: false,
                            wm: (!skip).then_some(h.seq),
                            finish_ps: 0,
                        });
                    }
                    MsgKind::Batch => {
                        // The carrier's seq is its last member's, so the
                        // watermark dedups a re-sent batch atomically.
                        let skip = env.dedup && wm_window.is_some_and(|w| h.seq <= w);
                        let (reject, wm) = if skip {
                            (None, None)
                        } else {
                            match batch::member_ranges(payload) {
                                Err(e) => (Some(e), None),
                                Ok((members, err)) => {
                                    let mut wm = None;
                                    for (sh, range) in members {
                                        items.push(Item {
                                            msg: mi,
                                            carrier: carriers.len(),
                                            header: sh,
                                            payload: range,
                                        });
                                        wm = Some(wm.map_or(sh.seq, |w: u64| w.max(sh.seq)));
                                    }
                                    if let Some(w) = wm {
                                        wm_window = Some(wm_window.map_or(w, |c| c.max(w)));
                                    }
                                    (err, wm)
                                }
                            }
                        };
                        carriers.push(Carrier {
                            header: *h,
                            items: start..items.len(),
                            skip,
                            reject,
                            batch: true,
                            wm,
                            finish_ps: 0,
                        });
                    }
                }
            }

            // ---- Schedule: greedy deterministic lane simulation ----
            if !items.is_empty() {
                let need = items.len().div_ceil(lanes);
                if deques[0].capacity() < need {
                    deques = (0..lanes)
                        .map(|_| StealDeque::with_capacity(need.next_power_of_two()))
                        .collect();
                }
                for d in &deques {
                    d.reset();
                }
                for k in 0..items.len() {
                    let mut lane = k % lanes;
                    let mut pending = k as u64;
                    for _ in 0..lanes {
                        match deques[lane].push(pending) {
                            Ok(()) => break,
                            Err(v) => {
                                pending = v;
                                lane = (lane + 1) % lanes;
                            }
                        }
                    }
                }
                let base = self.cfg.clock.as_ref().map_or(0, |c| c.now().as_ps());
                for a in &mut avail {
                    *a = (*a).max(base);
                }
                executed.iter_mut().for_each(|e| *e = 0);
                parts.clear();
                parts.resize(items.len(), Vec::new());
                let mut remaining = items.len();
                while remaining > 0 {
                    // Next lane to run: earliest virtual cursor; ties
                    // rotate by work done this window, then lane id.
                    let lane = (0..lanes)
                        .min_by_key(|&l| (avail[l], executed[l], l))
                        .expect("at least one lane");
                    // Own deque first, else steal from the most loaded
                    // peer (ties to the lowest lane id).
                    let (idx, stolen) = match deques[lane].take() {
                        Some(i) => (i as usize, false),
                        None => {
                            let victim = (0..lanes)
                                .filter(|&v| v != lane && !deques[v].is_empty())
                                .max_by_key(|&v| (deques[v].len(), std::cmp::Reverse(v)))
                                .expect("remaining > 0 implies queued work");
                            match deques[victim].take() {
                                Some(i) => (i as usize, true),
                                None => continue,
                            }
                        }
                    };
                    let item = &items[idx];
                    // Execute now, in real time; the member's compute
                    // cost lands on this lane's virtual cursor.
                    meter.begin(avail[lane]);
                    let part = {
                        let _of = trace::offload_scope(OffloadId(item.header.corr));
                        let body = &window[item.msg].1[item.payload.clone()];
                        execute_member(env, &meter, &item.header, body)
                    };
                    let d = meter.charged();
                    avail[lane] += d;
                    executed[lane] += 1;
                    if let Some(stats) = &self.cfg.stats {
                        stats.on_task(lane, d);
                        if stolen {
                            stats.on_steal();
                        }
                    }
                    let c = &mut carriers[item.carrier];
                    c.finish_ps = c.finish_ps.max(avail[lane]);
                    parts[idx] = part;
                    remaining -= 1;
                }
            }

            // ---- Publish: arrival order, barrier-joined ----
            for c in &carriers {
                if c.skip {
                    continue;
                }
                // The publication's transport spans (result DMA, flag
                // store, target overhead) belong to the offload being
                // answered, same as under the serial loop.
                let _of =
                    (c.header.corr != 0).then(|| trace::offload_scope(OffloadId(c.header.corr)));
                let join_barrier = |c: &Carrier| {
                    if let Some(clock) = &self.cfg.clock {
                        clock.join(SimTime::from_ps(c.finish_ps));
                    }
                };
                if let Some(e) = &c.reject {
                    // Hostile envelope: any well-formed prefix executed
                    // (and counts), but the host errors every member
                    // uniformly via one error frame.
                    served += c.items.len() as u64;
                    if !c.items.is_empty() {
                        join_barrier(c);
                    }
                    chan.send_result(
                        c.header.reply_slot,
                        c.header.seq,
                        frame_result(Err(HamError::Wire(e.clone()))),
                    );
                } else if !c.batch {
                    join_barrier(c);
                    chan.send_result(
                        c.header.reply_slot,
                        c.header.seq,
                        std::mem::take(&mut parts[c.items.start]),
                    );
                    served += 1;
                } else {
                    // One combined result answers the whole batch:
                    // count ‖ per-member (seq ‖ len ‖ framed result),
                    // in member order.
                    let mut body = Vec::new();
                    batch::begin_result(&mut body, c.items.len() as u32);
                    for idx in c.items.clone() {
                        batch::append_result_part(&mut body, items[idx].header.seq, &parts[idx]);
                    }
                    join_barrier(c);
                    chan.send_result(c.header.reply_slot, c.header.seq, frame_result(Ok(body)));
                    served += c.items.len() as u64;
                }
                if let Some(w) = c.wm {
                    watermark = Some(watermark.map_or(w, |cur| cur.max(w)));
                }
            }

            if halt {
                break;
            }
        }
        SessionEnd {
            served,
            watermark,
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham::message::VecMemory;
    use ham::registry::HandlerKey;
    use ham::{f2f, ham_kernel, Registry, RegistryBuilder};
    use parking_lot::Mutex;
    use std::collections::VecDeque;

    ham_kernel! {
        pub fn burn(ctx, flops: u64) -> u64 { ctx.charge_flops(flops); flops }
    }

    /// 1 ps per flop; `charge_flops` is never called directly because
    /// the runtime always interposes its lane shim.
    struct PsPerFlop;
    impl ComputeMeter for PsPerFlop {
        fn charge_flops(&self, _flops: u64) {
            panic!("the device runtime must interpose the lane meter");
        }
        fn cost_ps(&self, flops: u64) -> u64 {
            flops
        }
    }

    /// What a channel's `send_result` recorded: (reply slot, seq, payload).
    type Outbox = Vec<(u16, u64, Vec<u8>)>;

    /// Queue-backed channel: `try_recv` drains eagerly, `Closed` once
    /// empty, so every queued message lands in a single window.
    struct QueueChannel {
        inbox: Mutex<VecDeque<(MsgHeader, Vec<u8>)>>,
        outbox: Mutex<Outbox>,
    }

    impl QueueChannel {
        fn new(msgs: Vec<(MsgHeader, Vec<u8>)>) -> Self {
            Self {
                inbox: Mutex::new(VecDeque::from(msgs)),
                outbox: Mutex::new(vec![]),
            }
        }
    }

    impl TargetChannel for QueueChannel {
        fn recv(&self, pool: &Arc<FramePool>) -> Option<(MsgHeader, PooledFrame)> {
            self.inbox
                .lock()
                .pop_front()
                .map(|(h, p)| (h, pool.adopt(p)))
        }
        fn try_recv(&self, pool: &Arc<FramePool>) -> Polled {
            match self.inbox.lock().pop_front() {
                Some((h, p)) => Polled::Msg(h, pool.adopt(p)),
                None => Polled::Closed,
            }
        }
        fn send_result(&self, reply_slot: u16, seq: u64, payload: Vec<u8>) {
            self.outbox.lock().push((reply_slot, seq, payload));
        }
    }

    fn registry() -> Registry {
        let mut b = RegistryBuilder::new();
        b.register::<burn>();
        b.seal(7)
    }

    fn offload(key: HandlerKey, payload: &[u8], slot: u16, seq: u64) -> (MsgHeader, Vec<u8>) {
        (
            MsgHeader {
                handler_key: key,
                payload_len: payload.len() as u32,
                kind: MsgKind::Offload,
                reply_slot: slot,
                corr: seq + 1,
                seq,
            },
            payload.to_vec(),
        )
    }

    fn run_with(
        lanes: usize,
        clock: &Clock,
        stats: Option<Arc<LaneStats>>,
        msgs: Vec<(MsgHeader, Vec<u8>)>,
    ) -> (u64, SimTime, Outbox) {
        let reg = registry();
        let mem = VecMemory::new(0);
        let meter = PsPerFlop;
        let env = TargetEnv {
            node: 1,
            registry: &reg,
            mem: &mem,
            reverse: None,
            meter: Some(&meter),
            dedup: false,
        };
        let mut cfg = DeviceConfig::new()
            .with_lanes(lanes)
            .with_clock(clock.clone());
        cfg.stats = stats;
        let chan = QueueChannel::new(msgs);
        let served = DeviceRuntime::new(cfg).run(&env, &chan);
        let out = std::mem::take(&mut *chan.outbox.lock());
        (served, clock.now(), out)
    }

    fn burn_msgs(costs: &[u64]) -> Vec<(MsgHeader, Vec<u8>)> {
        let reg = registry();
        let key = reg.key_of::<burn>().unwrap();
        costs
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let payload = ham::codec::encode(&f2f!(burn, c)).unwrap();
                offload(key, &payload, i as u16, i as u64)
            })
            .collect()
    }

    #[test]
    fn lanes_shrink_the_window_makespan() {
        // Eight equal members: serial = 8d, 4 lanes = 2d, 8 lanes = d.
        for (lanes, expect_ps) in [(1usize, 8_000u64), (4, 2_000), (8, 1_000)] {
            let clock = Clock::new();
            let (served, now, out) = run_with(lanes, &clock, None, burn_msgs(&[1_000; 8]));
            assert_eq!(served, 8);
            assert_eq!(out.len(), 8);
            assert_eq!(now.as_ps(), expect_ps, "lanes = {lanes}");
        }
    }

    #[test]
    fn single_offload_timing_is_lane_invariant() {
        // A lone message must cost exactly its compute time whatever
        // the lane count — the Fig. 9 calibration contract.
        for lanes in [1usize, 8] {
            let clock = Clock::new();
            let (_, now, _) = run_with(lanes, &clock, None, burn_msgs(&[4_321]));
            assert_eq!(now.as_ps(), 4_321);
        }
    }

    #[test]
    fn results_publish_in_arrival_order() {
        // Wildly unequal costs: item 0 finishes last on the lanes, yet
        // publication order is arrival order.
        let clock = Clock::new();
        let (_, now, out) = run_with(4, &clock, None, burn_msgs(&[9_000, 10, 10, 10]));
        let seqs: Vec<u64> = out.iter().map(|o| o.1).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(now.as_ps(), 9_000, "makespan is the long pole");
    }

    #[test]
    fn idle_lanes_steal_and_are_counted() {
        let stats = Arc::new(LaneStats::new());
        let clock = Clock::new();
        // Round-robin deal on two lanes: lane 0 holds {0: 8000, 2: 10,
        // 4: 10}, lane 1 holds {1: 10, 3: 10, 5: 10}. Lane 1 drains its
        // own queue while lane 0 chews the long item, then steals the
        // rest.
        let (served, now, _) = run_with(
            2,
            &clock,
            Some(Arc::clone(&stats)),
            burn_msgs(&[8_000, 10, 10, 10, 10, 10]),
        );
        assert_eq!(served, 6);
        assert_eq!(stats.steals(), 2, "items 2 and 4 migrate to lane 1");
        assert_eq!(stats.tasks(0), 1);
        assert_eq!(stats.tasks(1), 5);
        assert_eq!(now.as_ps(), 8_000, "steals hide behind the long pole");
    }

    #[test]
    fn batch_barrier_waits_for_the_slowest_member() {
        use ham::wire::HEADER_BYTES;
        let reg = registry();
        let key = reg.key_of::<burn>().unwrap();
        let mut frame = vec![0u8; HEADER_BYTES + batch::COUNT_BYTES];
        for (seq, cost) in [(0u64, 5_000u64), (1, 100)] {
            let payload = ham::codec::encode(&f2f!(burn, cost)).unwrap();
            let sub = MsgHeader {
                handler_key: key,
                payload_len: payload.len() as u32,
                kind: MsgKind::Offload,
                reply_slot: 0,
                corr: seq + 1,
                seq,
            };
            batch::append_sub(&mut frame, &sub, &payload);
        }
        let carrier = batch::carrier_header(1, frame.len() - HEADER_BYTES, 2, 9);
        batch::patch_envelope(&mut frame, &carrier, 2);
        let clock = Clock::new();
        let (served, now, out) = run_with(
            8,
            &clock,
            None,
            vec![(carrier, frame[HEADER_BYTES..].to_vec())],
        );
        assert_eq!(served, 2);
        assert_eq!(out.len(), 1, "one combined result for the batch");
        assert_eq!((out[0].0, out[0].1), (2, 1));
        // Barrier: published at the slow member's finish, not the sum.
        assert_eq!(now.as_ps(), 5_000);
        let body = crate::target_loop::unframe_result(&out[0].2).unwrap();
        let parts: Vec<_> = batch::ResultPartIter::new(&body)
            .unwrap()
            .map(|p| p.unwrap())
            .collect();
        assert_eq!(parts.len(), 2, "both members answered in member order");
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[1].0, 1);
    }

    #[test]
    fn sessions_carry_the_watermark_and_report_why_they_ended() {
        let reg = registry();
        let mem = VecMemory::new(0);
        let env = TargetEnv {
            node: 1,
            registry: &reg,
            mem: &mem,
            reverse: None,
            meter: None,
            dedup: true,
        };
        let rt = DeviceRuntime::new(DeviceConfig::new());
        // Session 1: serves seqs 0-2, then the link drops (Closed).
        let mut msgs = burn_msgs(&[1, 1, 1, 1]);
        let fresh = msgs.pop().unwrap();
        let replayed = msgs[2].clone();
        let chan = QueueChannel::new(msgs);
        let end = rt.run_session(&env, &chan, None);
        assert_eq!(
            (end.served, end.watermark, end.reason),
            (3, Some(2), HaltReason::Closed)
        );
        // Session 2 resumes with the carried watermark: a replayed
        // seq ≤ 2 is deduplicated, a fresh seq executes, and the
        // Control frame ends the session for good.
        let ctrl = (
            MsgHeader {
                handler_key: HandlerKey(0),
                payload_len: 0,
                kind: MsgKind::Control,
                reply_slot: 0,
                corr: 0,
                seq: u64::MAX,
            },
            vec![],
        );
        let chan = QueueChannel::new(vec![replayed, fresh, ctrl]);
        let end = rt.run_session(&env, &chan, end.watermark);
        assert_eq!(
            (end.served, end.watermark, end.reason),
            (1, Some(3), HaltReason::Control)
        );
        assert_eq!(
            chan.outbox.lock().len(),
            1,
            "the duplicate publishes nothing"
        );
    }

    #[test]
    fn same_input_schedules_identically() {
        let costs = [700u64, 20, 333, 4_000, 1, 52, 1_000, 9];
        let run = || {
            let stats = Arc::new(LaneStats::new());
            let clock = Clock::new();
            let (served, now, out) =
                run_with(4, &clock, Some(Arc::clone(&stats)), burn_msgs(&costs));
            let lanes: Vec<u64> = (0..4).map(|l| stats.tasks(l)).collect();
            (served, now, out, lanes, stats.steals())
        };
        assert_eq!(run(), run(), "bit-identical replay");
    }
}
