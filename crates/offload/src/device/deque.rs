//! A lock-free fixed-capacity work deque for the device runtime's
//! per-core lanes.
//!
//! One lane owns each deque: the owner pushes work-item indices at the
//! back, and any lane — owner or thief — takes from the front with a
//! CAS-claimed cursor. (The vendored crossbeam carries only `channel`,
//! so the steal structure lives here; unlike a Chase-Lev deque it is
//! written entirely in safe code: slots are `AtomicU64`s storing
//! `index + 1`, with `0` meaning empty, so no uninitialised memory is
//! ever read.)
//!
//! Inside [`super::DeviceRuntime`] the deques are driven from a single
//! thread — the virtual-time lane schedule is what's concurrent, not
//! the host OS threads — but the structure stays safe under real
//! cross-thread stealing, which the tests below exercise.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A bounded single-producer multi-consumer work queue of `u64` items.
#[derive(Debug)]
pub struct StealDeque {
    /// Ring of `item + 1` values; `0` marks an empty slot.
    slots: Vec<AtomicU64>,
    /// Next front position to take from (CAS-claimed by takers).
    head: AtomicUsize,
    /// Next back position to push at (owner-only).
    tail: AtomicUsize,
}

impl StealDeque {
    /// An empty deque holding at most `cap` items.
    pub fn with_capacity(cap: usize) -> Self {
        StealDeque {
            slots: (0..cap.max(1)).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Maximum number of items the deque can hold.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Items currently queued (approximate under concurrent takes).
    pub fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Acquire);
        let h = self.head.load(Ordering::Acquire);
        t.saturating_sub(h)
    }

    /// Whether the deque is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: queue `item` at the back. Returns `Err(item)` when
    /// the ring is full (or the slot to reuse is still being drained by
    /// a slow taker — conservatively treated as full so no item is ever
    /// overwritten).
    pub fn push(&self, item: u64) -> Result<(), u64> {
        let t = self.tail.load(Ordering::Relaxed);
        if t - self.head.load(Ordering::Acquire) >= self.slots.len() {
            return Err(item);
        }
        let slot = &self.slots[t % self.slots.len()];
        if slot.load(Ordering::Acquire) != 0 {
            return Err(item);
        }
        slot.store(item + 1, Ordering::Release);
        self.tail.store(t + 1, Ordering::Release);
        Ok(())
    }

    /// Take the front item — the owner's pop and the thief's steal are
    /// the same operation; what differs is who calls it.
    pub fn take(&self) -> Option<u64> {
        loop {
            let h = self.head.load(Ordering::Acquire);
            let t = self.tail.load(Ordering::Acquire);
            if h >= t {
                return None;
            }
            if self
                .head
                .compare_exchange_weak(h, h + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // The CAS gave this taker exclusive claim to position
                // `h`; the value was published before `tail` moved past
                // it, so the swap observes it immediately.
                let slot = &self.slots[h % self.slots.len()];
                loop {
                    let v = slot.swap(0, Ordering::AcqRel);
                    if v != 0 {
                        return Some(v - 1);
                    }
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Owner-only, and only when empty: rewind the cursors so ring
    /// positions are reused from the start of the next window.
    pub fn reset(&self) {
        debug_assert!(self.is_empty());
        self.head.store(0, Ordering::Relaxed);
        self.tail.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let d = StealDeque::with_capacity(4);
        assert!(d.is_empty());
        for i in 0..4 {
            d.push(i).unwrap();
        }
        assert_eq!(d.push(9), Err(9), "full");
        assert_eq!(d.len(), 4);
        for i in 0..4 {
            assert_eq!(d.take(), Some(i));
        }
        assert_eq!(d.take(), None);
        // Ring reuse across reset.
        d.reset();
        for round in 0..3 {
            d.push(round * 10).unwrap();
            assert_eq!(d.take(), Some(round * 10));
        }
    }

    #[test]
    fn concurrent_steals_neither_lose_nor_duplicate() {
        const N: u64 = 10_000;
        let d = Arc::new(StealDeque::with_capacity(N as usize));
        for i in 0..N {
            d.push(i).unwrap();
        }
        // All items are in before the thieves start, so a `None` take
        // means the deque is drained for good.
        let taken: Vec<std::thread::JoinHandle<Vec<u64>>> = (0..4)
            .map(|_| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = d.take() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<u64> = taken.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>());
    }
}
