//! Node addressing and description (Table II: `node_t`,
//! `node_descriptor`).

use serde::{Deserialize, Serialize};

/// Address of a process in the offload application (`node_t`).
///
/// Node 0 is the host; nodes `1..num_nodes` are offload targets.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The host process.
    pub const HOST: NodeId = NodeId(0);

    /// True for the host.
    pub fn is_host(self) -> bool {
        self.0 == 0
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "node {}", self.0)
    }
}

/// Kind of device a node runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceType {
    /// A host CPU.
    Host,
    /// An NEC Vector Engine.
    VectorEngine,
    /// A generic in-process target (reference backend).
    Generic,
}

/// Information about a node (`node_descriptor`, Table II).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeDescriptor {
    /// The node's address.
    pub node: NodeId,
    /// Human-readable name (e.g. "VE0 (NEC VE Type 10B)").
    pub name: String,
    /// Device kind.
    pub device_type: DeviceType,
    /// Device memory visible to `allocate`, in bytes.
    pub memory_bytes: u64,
    /// Core count.
    pub cores: u32,
}

impl core::fmt::Display for NodeDescriptor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} [{}]: {:?}, {} cores, {} MiB",
            self.node,
            self.name,
            self.device_type,
            self.cores,
            self.memory_bytes >> 20
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_is_node_zero() {
        assert!(NodeId::HOST.is_host());
        assert!(!NodeId(1).is_host());
    }

    #[test]
    fn descriptor_display() {
        let d = NodeDescriptor {
            node: NodeId(1),
            name: "VE0".into(),
            device_type: DeviceType::VectorEngine,
            memory_bytes: 48 << 30,
            cores: 8,
        };
        let s = format!("{d}");
        assert!(s.contains("node 1"));
        assert!(s.contains("VE0"));
        assert!(s.contains("8 cores"));
    }

    #[test]
    fn node_id_serde_round_trip() {
        let n = NodeId(3);
        let bytes = ham::codec::encode(&n).unwrap();
        assert_eq!(ham::codec::decode::<NodeId>(&bytes).unwrap(), n);
    }
}
