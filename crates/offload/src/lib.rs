//! # ham-offload
//!
//! The HAM-Offload programming model (paper Table II): a pure-library
//! offloading framework — no language extension, no special compiler.
//! Code to offload is written as [`ham::ham_kernel!`] kernels, bound to
//! arguments with [`ham::f2f!`], and shipped to a target with
//! [`Offload::sync`] / [`Offload::async_`]. Buffers on targets are
//! managed explicitly ([`Offload::allocate`], [`Offload::put`],
//! [`Offload::get`], [`Offload::copy`]) — the OpenCL-like split the paper
//! describes.
//!
//! The transport is pluggable via [`CommBackend`]. This crate ships a
//! reference in-process backend ([`local::LocalBackend`]); the
//! SX-Aurora backends live in `ham-backend-veo` (§III) and
//! `ham-backend-dma` (§IV).
//!
//! ```
//! use ham::{ham_kernel, f2f};
//! use ham_offload::{local::LocalBackend, NodeId, Offload};
//!
//! ham_kernel! {
//!     pub fn double_it(_ctx, x: u64) -> u64 { x * 2 }
//! }
//!
//! let offload = Offload::new(LocalBackend::spawn(1, |b| {
//!     b.register::<double_it>();
//! }));
//! let target = NodeId(1);
//! let r = offload.sync(target, f2f!(double_it, 21)).unwrap();
//! assert_eq!(r, 42);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod backend;
pub mod buffer;
pub mod chan;
pub mod device;
pub mod future;
pub mod local;
pub mod runtime;
pub mod scalar;
pub mod sched;
pub mod target_loop;
pub mod types;

pub use backend::{CommBackend, RawBuffer, SlotId};
pub use buffer::BufferPtr;
pub use chan::{ChannelCore, ProtocolConfig, SLOT_META};
pub use future::Future;
pub use runtime::Offload;
pub use scalar::Scalar;
pub use sched::{PoolFuture, SchedPolicy, TargetPool};
pub use types::{DeviceType, NodeDescriptor, NodeId};

use ham::HamError;

/// Errors surfaced by the offloading API.
#[derive(Clone, Debug, PartialEq)]
pub enum OffloadError {
    /// Messaging-layer failure.
    Ham(HamError),
    /// Transport/backend failure.
    Backend(String),
    /// Target memory management failure.
    Mem(String),
    /// Node id out of range or the host where a target was expected.
    BadNode(NodeId),
    /// The target has shut down.
    Shutdown,
    /// The offload's completion flag never arrived and bounded retries
    /// were exhausted (recovery policy deadline).
    Timeout,
    /// The target died (process crash, link failure, peer disconnect);
    /// its channel is evicted, failing in-flight and future offloads.
    TargetLost(NodeId),
    /// The offload was pulled out of a slow target's staged accumulator
    /// before ever reaching the wire, so it can be resubmitted to an
    /// idle peer. Internal to the scheduler's rebalance path — the pool
    /// reposts these; user code only sees it if it bypasses the pool.
    Migrated,
}

impl From<HamError> for OffloadError {
    fn from(e: HamError) -> Self {
        OffloadError::Ham(e)
    }
}

impl core::fmt::Display for OffloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OffloadError::Ham(e) => write!(f, "{e}"),
            OffloadError::Backend(m) => write!(f, "backend error: {m}"),
            OffloadError::Mem(m) => write!(f, "target memory error: {m}"),
            OffloadError::BadNode(n) => write!(f, "bad node {}", n.0),
            OffloadError::Shutdown => write!(f, "target has shut down"),
            OffloadError::Timeout => {
                write!(f, "offload timed out: completion flag never arrived")
            }
            OffloadError::TargetLost(n) => write!(f, "target {} lost", n.0),
            OffloadError::Migrated => {
                write!(
                    f,
                    "offload migrated off its target before reaching the wire"
                )
            }
        }
    }
}

impl std::error::Error for OffloadError {}
