//! The multi-message batch envelope (`MsgKind::Batch`).
//!
//! Deep pipelines used to pay one slot reservation, one `send_frame`,
//! one transport transaction and one flag poll *per message*. Batching
//! coalesces consecutive `post()`s to the same target into one wire
//! frame:
//!
//! ```text
//! carrier header (32 B, kind = Batch, seq = last member's seq)
//! u32 count
//! count × [ sub-header (32 B, kind = Offload, own seq/corr/key) ‖ payload ]
//! ```
//!
//! The target executes the sub-messages in order and answers with **one**
//! result message whose payload (inside the usual `frame_result`
//! success wrapper) is:
//!
//! ```text
//! u32 count
//! count × [ u64 seq ‖ u32 len ‖ len × framed per-sub result ]
//! ```
//!
//! Each per-sub part is itself a `frame_result` output, so a claimed
//! batch member completion is indistinguishable from a singleton one.
//! The carrier's `seq` is the *last* member's, which keeps the dedup
//! watermark sound: serving a batch advances the watermark past every
//! member, and a retried carrier frame compares against it atomically.

use crate::chan::config::ProtocolConfig;
use ham::wire::{MsgHeader, MsgKind, HEADER_BYTES};

/// Length of the `u32 count` field that follows the carrier header.
pub const COUNT_BYTES: usize = 4;

/// Batching watermarks, configured per channel via
/// [`ProtocolConfig::batch`] (slot transports) or the backends'
/// `spawn_batched` constructors (push transports). Disabled by default:
/// `max_msgs == 1` posts every message as its own frame, byte-identical
/// to the pre-batching wire traffic.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Flush once this many messages are staged. `1` disables batching.
    pub max_msgs: usize,
    /// Flush before the staged envelope payload would exceed this many
    /// bytes. `0` means "whatever fits the transport's message slots".
    pub max_bytes: usize,
    /// Latency SLO: hard bound on how long (virtual µs) a staged
    /// message may sit in the accumulator. Staging past the bound trips
    /// an immediate flush, and the engine's flag sweep force-flushes any
    /// envelope older than it, so a lone small probe never waits behind
    /// a filling batch. `0` (the default) disables the bound and keeps
    /// the wire traffic byte-identical to the static config.
    pub slo_micros: u64,
    /// Arm the adaptive watermark controller ([`crate::chan::adaptive`]):
    /// the effective `max_msgs`/byte watermarks are tuned per channel
    /// between 1 and the configured values from the observed flush
    /// latency histogram — deep pipelines widen, latency-sensitive
    /// traffic narrows. Off by default; the static watermarks then
    /// apply verbatim.
    pub adaptive: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_msgs: 1,
            max_bytes: 0,
            slo_micros: 0,
            adaptive: false,
        }
    }
}

impl BatchConfig {
    /// A config that coalesces up to `max_msgs` messages per frame.
    pub fn up_to(max_msgs: usize) -> Self {
        Self {
            max_msgs: max_msgs.max(1),
            ..Self::default()
        }
    }

    /// Builder: bound time-in-accumulator to `slo_micros` of virtual
    /// time (0 removes the bound).
    pub fn with_slo_micros(mut self, slo_micros: u64) -> Self {
        self.slo_micros = slo_micros;
        self
    }

    /// Builder: arm the adaptive watermark controller. The configured
    /// `max_msgs`/`max_bytes` become the controller's *ceiling*.
    pub fn self_tuning(mut self) -> Self {
        self.adaptive = true;
        self
    }

    /// The full adaptive configuration in one call: coalesce up to
    /// `max_msgs`, bound staged age to `slo_micros`, controller armed.
    pub fn adaptive_up_to(max_msgs: usize, slo_micros: u64) -> Self {
        Self::up_to(max_msgs)
            .with_slo_micros(slo_micros)
            .self_tuning()
    }

    /// Whether batching is on at all.
    pub fn enabled(&self) -> bool {
        self.max_msgs > 1
    }

    /// The byte budget of one envelope payload (count field + subs),
    /// clamped so the envelope always fits the transport's slots.
    pub fn effective_bytes(&self, msg_bytes: usize) -> usize {
        if self.max_bytes == 0 {
            msg_bytes
        } else {
            self.max_bytes.min(msg_bytes)
        }
    }
}

/// Re-export home: the protocol config carries one of these.
impl ProtocolConfig {
    /// Builder helper: same config with batching watermarks set.
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }
}

/// Append one sub-message (header ‖ payload) to a staged envelope frame.
pub fn append_sub(frame: &mut Vec<u8>, header: &MsgHeader, payload: &[u8]) {
    frame.extend_from_slice(&header.encode());
    frame.extend_from_slice(payload);
}

/// Split a little-endian `u32` off the front of wire bytes — fully
/// bounds-checked: hostile or truncated frames must surface decode
/// errors, never panic the host or target loop.
fn read_u32(bytes: &[u8]) -> Option<(u32, &[u8])> {
    let head = bytes.get(..4)?;
    let rest = bytes.get(4..)?;
    let mut arr = [0u8; 4];
    arr.copy_from_slice(head);
    Some((u32::from_le_bytes(arr), rest))
}

/// [`read_u32`] for a little-endian `u64`.
fn read_u64(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let head = bytes.get(..8)?;
    let rest = bytes.get(8..)?;
    let mut arr = [0u8; 8];
    arr.copy_from_slice(head);
    Some((u64::from_le_bytes(arr), rest))
}

/// Patch the carrier header and count into a finished envelope frame
/// (laid out as 32 zero bytes ‖ 4 zero bytes ‖ subs by the stager).
pub fn patch_envelope(frame: &mut [u8], carrier: &MsgHeader, count: u32) {
    frame[..HEADER_BYTES].copy_from_slice(&carrier.encode());
    frame[HEADER_BYTES..HEADER_BYTES + COUNT_BYTES].copy_from_slice(&count.to_le_bytes());
}

/// Iterate the sub-messages of a batch envelope *payload* (the bytes
/// after the carrier header). Yields `(sub_header, sub_payload)`;
/// malformed envelopes yield one `Err`.
pub struct BatchIter<'a> {
    rest: &'a [u8],
    remaining: u32,
    poisoned: bool,
}

impl<'a> BatchIter<'a> {
    /// Parse the count prefix; `payload` is the carrier's payload.
    pub fn new(payload: &'a [u8]) -> Result<Self, String> {
        let Some((count, rest)) = read_u32(payload) else {
            return Err("batch payload shorter than its count field".into());
        };
        Ok(Self {
            rest,
            remaining: count,
            poisoned: false,
        })
    }

    /// Sub-messages announced by the count prefix. (Named to avoid
    /// shadowing the consuming `Iterator::count`.)
    pub fn announced(&self) -> u32 {
        self.remaining
    }
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = Result<(MsgHeader, &'a [u8]), String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let header = match MsgHeader::decode(self.rest) {
            Ok(h) => h,
            Err(e) => {
                self.poisoned = true;
                return Some(Err(format!("malformed batch sub-header: {e}")));
            }
        };
        // payload_len is wire-controlled: checked add + checked slicing,
        // or the frame is rejected.
        let end = HEADER_BYTES.checked_add(header.payload_len as usize);
        let split = end.and_then(|e| Some((self.rest.get(HEADER_BYTES..e)?, self.rest.get(e..)?)));
        let Some((payload, rest)) = split else {
            self.poisoned = true;
            return Some(Err("batch sub-payload truncated".into()));
        };
        self.rest = rest;
        Some(Ok((header, payload)))
    }
}

/// Parse a batch envelope payload into `(sub_header, payload_range)`
/// pairs whose ranges index into `payload` — the borrow-free
/// counterpart of [`BatchIter`] for runtimes that schedule members out
/// of line and need offsets rather than slices.
///
/// Returns the well-formed prefix plus the wire error that stopped
/// parsing, if any; a top-level `Err` means even the count field was
/// missing. Error strings match [`BatchIter`]'s so hostile envelopes
/// produce identical error frames whichever parser a runtime uses.
#[allow(clippy::type_complexity)]
pub fn member_ranges(
    payload: &[u8],
) -> Result<(Vec<(MsgHeader, core::ops::Range<usize>)>, Option<String>), String> {
    let Some((count, _)) = read_u32(payload) else {
        return Err("batch payload shorter than its count field".into());
    };
    let mut pos = COUNT_BYTES;
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let rest = &payload[pos..];
        let header = match MsgHeader::decode(rest) {
            Ok(h) => h,
            Err(e) => return Ok((out, Some(format!("malformed batch sub-header: {e}")))),
        };
        let end = HEADER_BYTES.checked_add(header.payload_len as usize);
        let valid = end.and_then(|e| {
            rest.get(HEADER_BYTES..e)?;
            Some(e)
        });
        let Some(end) = valid else {
            return Ok((out, Some("batch sub-payload truncated".into())));
        };
        out.push((header, pos + HEADER_BYTES..pos + end));
        pos += end;
    }
    Ok((out, None))
}

/// Truncate a *staged* envelope frame (32 zeroed header bytes ‖ 4 zeroed
/// count bytes ‖ subs) down to its first `keep` sub-messages, dropping
/// the tail — the splitting half of staged-member migration. Staged
/// frames are host-built, so a malformed walk is a logic error.
pub fn truncate_members(frame: &mut Vec<u8>, keep: usize) -> Result<(), String> {
    let mut pos = HEADER_BYTES + COUNT_BYTES;
    for i in 0..keep {
        let rest = frame
            .get(pos..)
            .ok_or_else(|| format!("staged envelope ends before member {i}"))?;
        let h = MsgHeader::decode(rest).map_err(|e| format!("staged member {i}: {e}"))?;
        pos += HEADER_BYTES + h.payload_len as usize;
    }
    if pos > frame.len() {
        return Err(format!("staged envelope ends inside member {}", keep - 1));
    }
    frame.truncate(pos);
    Ok(())
}

/// Start a batch *result* body: the count prefix.
pub fn begin_result(out: &mut Vec<u8>, count: u32) {
    out.extend_from_slice(&count.to_le_bytes());
}

/// Append one sub-result (`seq` ‖ length-prefixed framed result bytes)
/// to a batch result body.
pub fn append_result_part(out: &mut Vec<u8>, seq: u64, part: &[u8]) {
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(part.len() as u32).to_le_bytes());
    out.extend_from_slice(part);
}

/// Iterate the `(seq, framed result bytes)` parts of a batch result
/// body. Allocation-free; malformed bodies yield one `Err`.
pub struct ResultPartIter<'a> {
    rest: &'a [u8],
    remaining: u32,
    poisoned: bool,
}

impl<'a> ResultPartIter<'a> {
    /// Parse the count prefix of a result body.
    pub fn new(body: &'a [u8]) -> Result<Self, String> {
        let Some((count, rest)) = read_u32(body) else {
            return Err("batch result shorter than its count field".into());
        };
        Ok(Self {
            rest,
            remaining: count,
            poisoned: false,
        })
    }
}

impl<'a> Iterator for ResultPartIter<'a> {
    type Item = Result<(u64, &'a [u8]), String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let Some((seq, (len, after_len))) =
            read_u64(self.rest).and_then(|(seq, r)| Some((seq, read_u32(r)?)))
        else {
            self.poisoned = true;
            return Some(Err("batch result part truncated".into()));
        };
        let len = len as usize;
        let (Some(part), Some(rest)) = (after_len.get(..len), after_len.get(len..)) else {
            self.poisoned = true;
            return Some(Err("batch result bytes truncated".into()));
        };
        self.rest = rest;
        Some(Ok((seq, part)))
    }
}

/// The carrier header of a finished envelope.
pub fn carrier_header(seq: u64, payload_len: usize, reply_slot: u16, corr: u64) -> MsgHeader {
    MsgHeader {
        handler_key: ham::registry::HandlerKey(0),
        payload_len: payload_len as u32,
        kind: MsgKind::Batch,
        reply_slot,
        corr,
        seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham::registry::HandlerKey;

    fn sub(seq: u64, payload: &[u8]) -> MsgHeader {
        MsgHeader {
            handler_key: HandlerKey(40 + seq),
            payload_len: payload.len() as u32,
            kind: MsgKind::Offload,
            reply_slot: 0,
            corr: 7,
            seq,
        }
    }

    #[test]
    fn envelope_round_trip() {
        let mut frame = vec![0u8; HEADER_BYTES + COUNT_BYTES];
        append_sub(&mut frame, &sub(0, b"aa"), b"aa");
        append_sub(&mut frame, &sub(1, b"bbbb"), b"bbbb");
        let carrier = carrier_header(1, frame.len() - HEADER_BYTES, 3, 7);
        patch_envelope(&mut frame, &carrier, 2);
        let decoded = MsgHeader::decode(&frame).unwrap();
        assert_eq!(decoded, carrier);
        assert_eq!(decoded.kind, MsgKind::Batch);
        let subs: Vec<_> = BatchIter::new(&frame[HEADER_BYTES..])
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].0.seq, 0);
        assert_eq!(subs[0].1, b"aa");
        assert_eq!(subs[1].0.seq, 1);
        assert_eq!(subs[1].1, b"bbbb");
    }

    #[test]
    fn truncated_envelope_is_an_error() {
        assert!(BatchIter::new(&[1, 0]).is_err());
        // Count says one message but no bytes follow.
        let payload = 1u32.to_le_bytes();
        let mut it = BatchIter::new(&payload).unwrap();
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "poisoned iterators stop");
    }

    #[test]
    fn result_body_round_trip() {
        let mut body = Vec::new();
        begin_result(&mut body, 2);
        append_result_part(&mut body, 4, &[0, 9]);
        append_result_part(&mut body, 5, &[1, b'x']);
        let parts: Vec<_> = ResultPartIter::new(&body)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(parts, vec![(4, &[0u8, 9][..]), (5, &[1u8, b'x'][..])]);
    }

    #[test]
    fn truncated_result_is_an_error() {
        assert!(ResultPartIter::new(&[2]).is_err());
        let mut body = Vec::new();
        begin_result(&mut body, 1);
        body.extend_from_slice(&7u64.to_le_bytes());
        body.extend_from_slice(&100u32.to_le_bytes()); // claims 100 bytes
        let mut it = ResultPartIter::new(&body).unwrap();
        assert!(it.next().unwrap().is_err());
    }

    #[test]
    fn hostile_frames_error_instead_of_panicking() {
        // Sub-header lies about its payload length.
        let mut frame = vec![0u8; HEADER_BYTES + COUNT_BYTES];
        let lying = MsgHeader {
            payload_len: 1_000_000,
            ..sub(0, b"aa")
        };
        frame.extend_from_slice(&lying.encode());
        frame.extend_from_slice(b"aa");
        let carrier = carrier_header(0, frame.len() - HEADER_BYTES, 0, 7);
        patch_envelope(&mut frame, &carrier, 1);
        let mut it = BatchIter::new(&frame[HEADER_BYTES..]).unwrap();
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
        // Count field claims more messages than bytes provide.
        let mut short = vec![0u8; HEADER_BYTES + COUNT_BYTES];
        append_sub(&mut short, &sub(0, b"aa"), b"aa");
        let short_carrier = carrier_header(0, short.len() - HEADER_BYTES, 0, 7);
        patch_envelope(&mut short, &short_carrier, 9);
        let results: Vec<_> = BatchIter::new(&short[HEADER_BYTES..]).unwrap().collect();
        assert_eq!(results.len(), 2, "one good sub, then the error");
        assert!(results[0].is_ok() && results[1].is_err());
        // Result part whose u32 length would overflow the slice math.
        let mut body = Vec::new();
        begin_result(&mut body, 1);
        body.extend_from_slice(&3u64.to_le_bytes());
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut it = ResultPartIter::new(&body).unwrap();
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none(), "poisoned after the error");
        // Pure garbage shorter than any field.
        assert!(BatchIter::new(&[7]).is_err());
        assert!(ResultPartIter::new(&[]).is_err());
        let mut it = ResultPartIter::new(&[1, 0, 0, 0, 5]).unwrap();
        assert!(it.next().unwrap().is_err());
    }

    #[test]
    fn member_ranges_mirror_batch_iter() {
        let mut frame = vec![0u8; HEADER_BYTES + COUNT_BYTES];
        append_sub(&mut frame, &sub(0, b"aa"), b"aa");
        append_sub(&mut frame, &sub(1, b"bbbb"), b"bbbb");
        let carrier = carrier_header(1, frame.len() - HEADER_BYTES, 3, 7);
        patch_envelope(&mut frame, &carrier, 2);
        let payload = &frame[HEADER_BYTES..];
        let (members, err) = member_ranges(payload).unwrap();
        assert!(err.is_none());
        let via_iter: Vec<_> = BatchIter::new(payload)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(members.len(), via_iter.len());
        for ((h, range), (ih, ip)) in members.iter().zip(&via_iter) {
            assert_eq!(h, ih);
            assert_eq!(&payload[range.clone()], *ip);
        }
        // Hostile: count claims more than the bytes provide → valid
        // prefix plus the same error string BatchIter produces.
        let mut short = vec![0u8; HEADER_BYTES + COUNT_BYTES];
        append_sub(&mut short, &sub(0, b"aa"), b"aa");
        let short_carrier = carrier_header(0, short.len() - HEADER_BYTES, 0, 7);
        patch_envelope(&mut short, &short_carrier, 9);
        let (prefix, err) = member_ranges(&short[HEADER_BYTES..]).unwrap();
        assert_eq!(prefix.len(), 1);
        let iter_err = BatchIter::new(&short[HEADER_BYTES..])
            .unwrap()
            .find_map(|r| r.err())
            .unwrap();
        assert_eq!(err.unwrap(), iter_err);
        // No count field at all.
        assert!(member_ranges(&[1, 0]).is_err());
    }

    #[test]
    fn truncate_members_splits_staged_envelopes() {
        let mut frame = vec![0u8; HEADER_BYTES + COUNT_BYTES];
        let payloads: [&[u8]; 3] = [b"aa", b"bbbb", b"c"];
        for (seq, p) in payloads.iter().enumerate() {
            append_sub(&mut frame, &sub(seq as u64, p), p);
        }
        let mut head = frame.clone();
        truncate_members(&mut head, 2).unwrap();
        // The kept prefix still parses as exactly two members once
        // patched into a real envelope.
        let carrier = carrier_header(1, head.len() - HEADER_BYTES, 0, 0);
        patch_envelope(&mut head, &carrier, 2);
        let subs: Vec<_> = BatchIter::new(&head[HEADER_BYTES..])
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[1].1, b"bbbb");
        // keep == 0 leaves just the placeholder prefix.
        let mut empty = frame.clone();
        truncate_members(&mut empty, 0).unwrap();
        assert_eq!(empty.len(), HEADER_BYTES + COUNT_BYTES);
        // Walking past the staged content is a logic error, not a panic.
        assert!(truncate_members(&mut frame.clone(), 9).is_err());
    }

    #[test]
    fn config_watermarks() {
        let off = BatchConfig::default();
        assert!(!off.enabled());
        let on = BatchConfig::up_to(16);
        assert!(on.enabled());
        assert_eq!(on.effective_bytes(4096), 4096);
        let capped = BatchConfig {
            max_msgs: 16,
            max_bytes: 512,
            ..BatchConfig::default()
        };
        assert_eq!(capped.effective_bytes(4096), 512);
        assert_eq!(capped.effective_bytes(256), 256);
    }
}
