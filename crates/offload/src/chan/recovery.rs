//! Timeout/retry policy for in-flight offloads.
//!
//! Completion flags normally arrive; under fault injection (or on real
//! flaky hardware) a frame can vanish in transit and the flag stays cold
//! forever. When a [`RecoveryPolicy`] is armed on a
//! [`super::ChannelCore`], the engine's flag sweeps count *misses* per
//! in-flight offload and act on deadlines:
//!
//! * after `retry_after_misses` fruitless sweeps the stored frame is
//!   re-sent into the same slots (safe: sequence numbers already
//!   deduplicate on the target, and a frame that was genuinely lost was
//!   never consumed, so its receive slot still holds no message);
//! * each retry doubles the deadline (binary exponential backoff);
//! * after `max_retries` re-sends the next deadline fails the offload
//!   with [`crate::OffloadError::Timeout`] — and the engine then
//!   *evicts* the target: a frame that is definitively lost leaves a
//!   hole in the slot ring that the target's in-order cursor can never
//!   step over, so the channel is unreachable from that point on.
//!
//! Deadlines are counted in *sweeps*, not virtual time: a genuinely lost
//! frame makes no virtual-time progress (failed flag peeks are free in
//! the simulation), so a virtual deadline would never fire. Sweep counts
//! are deterministic for serial traffic — the host performs exactly
//! `retry_after_misses` sweeps between send and retry.

use super::pool::PooledFrame;
use ham::wire::MsgHeader;
use std::collections::HashMap;

/// Deadline/retry configuration, armed per channel via
/// [`super::ChannelCore::with_recovery`].
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Fruitless flag sweeps before the first re-send; doubles per retry.
    pub retry_after_misses: u32,
    /// Re-sends before the offload is failed with `Timeout`.
    pub max_retries: u32,
}

impl Default for RecoveryPolicy {
    /// Retry after 256 cold sweeps, give up after 3 re-sends. High
    /// enough that a healthy-but-slow target finishes long before a
    /// spurious retry; a retried frame is deduplicated anyway.
    fn default() -> Self {
        RecoveryPolicy {
            retry_after_misses: 256,
            max_retries: 3,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that stores frames for connection-resume replay but
    /// never re-sends on sweep misses. Push transports (TCP) need this:
    /// their completions arrive by deposit, so a cold sweep says nothing
    /// about frame loss — and their targets run without the dedup
    /// watermark, so a spurious re-send would double-execute.
    /// `max_retries` bounds the *reconnect* budget instead: how many
    /// re-establishment attempts the transport makes before the channel
    /// is evicted.
    pub fn replay_only(max_retries: u32) -> Self {
        RecoveryPolicy {
            retry_after_misses: u32::MAX,
            max_retries,
        }
    }

    /// Whether sweep misses may ever trigger a re-send (false for
    /// [`RecoveryPolicy::replay_only`] policies).
    pub fn retries_on_miss(&self) -> bool {
        self.retry_after_misses != u32::MAX
    }
}

/// A re-sendable copy of one posted frame plus its deadline counters.
#[derive(Debug)]
pub struct StoredFrame {
    /// The wire header as originally sent (seq, slots, kind unchanged).
    pub header: MsgHeader,
    /// The full wire bytes (header ‖ payload) — the engine hands its
    /// pooled send buffer here instead of copying, so the hot path is
    /// allocation-free; the buffer returns to the pool on `forget`.
    pub frame: PooledFrame,
    /// Fruitless sweeps since the last send of this frame.
    pub misses: u32,
    /// Re-sends performed so far.
    pub retries: u32,
}

/// What a flag-sweep miss means for one in-flight offload.
#[derive(Debug)]
pub enum MissVerdict {
    /// Below the deadline (or no recovery armed): keep waiting.
    Keep,
    /// Deadline passed with retry budget left: re-send this frame.
    Retry {
        /// Header to re-send (identical to the original).
        header: MsgHeader,
        /// Full wire bytes to re-send (cloned: re-sends are cold).
        frame: Vec<u8>,
        /// Which attempt this is (1 = first re-send).
        attempt: u32,
    },
    /// Deadline passed with no budget left: fail the offload.
    TimedOut,
}

/// Per-channel recovery state: the armed policy plus stored frames of
/// every retryable in-flight offload. Lives inside the channel lock.
#[derive(Debug)]
pub struct RecoveryState {
    policy: RecoveryPolicy,
    frames: HashMap<u64, StoredFrame>,
}

impl RecoveryState {
    /// Fresh state for `policy`.
    pub fn new(policy: RecoveryPolicy) -> Self {
        RecoveryState {
            policy,
            frames: HashMap::new(),
        }
    }

    /// Stash a just-sent frame (full wire bytes) for possible re-sends.
    pub fn store(&mut self, seq: u64, header: MsgHeader, frame: PooledFrame) {
        self.frames.insert(
            seq,
            StoredFrame {
                header,
                frame,
                misses: 0,
                retries: 0,
            },
        );
    }

    /// Forget a frame (completed, cancelled, or evicted).
    pub fn forget(&mut self, seq: u64) {
        self.frames.remove(&seq);
    }

    /// The stored frame for `seq`, if any (resume replay reads the wire
    /// bytes back out without consuming them).
    pub fn stored(&self, seq: u64) -> Option<&StoredFrame> {
        self.frames.get(&seq)
    }

    /// The armed policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Claim a stored frame for connection-resume replay: bumps the
    /// attempt counter, resets the miss clock, and hands back a cloned
    /// wire image. The frame stays stored — a second disconnect can
    /// replay it again.
    pub fn note_replay(&mut self, seq: u64) -> Option<(MsgHeader, Vec<u8>, u32)> {
        let f = self.frames.get_mut(&seq)?;
        f.retries += 1;
        f.misses = 0;
        Some((f.header, f.frame.to_vec(), f.retries))
    }

    /// Drop every stored frame (target evicted).
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// Count one fruitless sweep against `seq` and apply the deadline.
    pub fn miss(&mut self, seq: u64) -> MissVerdict {
        if !self.policy.retries_on_miss() {
            // Replay-only: frames are stored for resume, not re-sent on
            // deadline — a miss carries no information on a push
            // transport.
            return MissVerdict::Keep;
        }
        let Some(f) = self.frames.get_mut(&seq) else {
            // Control frames and anything posted before arming are not
            // retryable; they never time out either.
            return MissVerdict::Keep;
        };
        f.misses += 1;
        let deadline = self
            .policy
            .retry_after_misses
            .saturating_mul(1u32.checked_shl(f.retries).unwrap_or(u32::MAX));
        if f.misses < deadline.max(1) {
            return MissVerdict::Keep;
        }
        if f.retries < self.policy.max_retries {
            f.retries += 1;
            f.misses = 0;
            MissVerdict::Retry {
                header: f.header,
                frame: f.frame.to_vec(),
                attempt: f.retries,
            }
        } else {
            self.frames.remove(&seq);
            MissVerdict::TimedOut
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ham::registry::HandlerKey;
    use ham::wire::{MsgHeader, MsgKind};

    fn header(seq: u64) -> MsgHeader {
        MsgHeader {
            handler_key: HandlerKey(1),
            payload_len: 2,
            kind: MsgKind::Offload,
            reply_slot: 0,
            corr: 0,
            seq,
        }
    }

    #[test]
    fn deadline_retries_then_times_out_with_backoff() {
        let mut st = RecoveryState::new(RecoveryPolicy {
            retry_after_misses: 4,
            max_retries: 2,
        });
        st.store(0, header(0), PooledFrame::detached(b"hi".to_vec()));
        // 3 misses: keep; 4th crosses the deadline → retry 1.
        for _ in 0..3 {
            assert!(matches!(st.miss(0), MissVerdict::Keep));
        }
        let MissVerdict::Retry { attempt, frame, .. } = st.miss(0) else {
            panic!("expected retry");
        };
        assert_eq!((attempt, frame.as_slice()), (1, b"hi".as_slice()));
        // Backoff doubles: 8 misses to the next deadline → retry 2.
        for _ in 0..7 {
            assert!(matches!(st.miss(0), MissVerdict::Keep));
        }
        assert!(matches!(st.miss(0), MissVerdict::Retry { attempt: 2, .. }));
        // Budget exhausted: 16 misses then timeout.
        for _ in 0..15 {
            assert!(matches!(st.miss(0), MissVerdict::Keep));
        }
        assert!(matches!(st.miss(0), MissVerdict::TimedOut));
        // The frame is gone; further misses are inert.
        assert!(matches!(st.miss(0), MissVerdict::Keep));
    }

    #[test]
    fn unstored_seqs_never_time_out() {
        let mut st = RecoveryState::new(RecoveryPolicy {
            retry_after_misses: 1,
            max_retries: 0,
        });
        for _ in 0..100 {
            assert!(matches!(st.miss(9), MissVerdict::Keep));
        }
    }

    #[test]
    fn replay_only_policies_never_retry_on_misses() {
        let mut st = RecoveryState::new(RecoveryPolicy::replay_only(2));
        st.store(0, header(0), PooledFrame::detached(b"hi".to_vec()));
        for _ in 0..10_000 {
            assert!(matches!(st.miss(0), MissVerdict::Keep));
        }
        // The frame is still stored, available for resume replay.
        assert_eq!(st.stored(0).unwrap().frame.as_slice(), b"hi");
        assert!(!RecoveryPolicy::replay_only(2).retries_on_miss());
        assert!(RecoveryPolicy::default().retries_on_miss());
    }

    #[test]
    fn forget_cancels_the_deadline() {
        let mut st = RecoveryState::new(RecoveryPolicy {
            retry_after_misses: 1,
            max_retries: 0,
        });
        st.store(5, header(5), PooledFrame::detached(b"x".to_vec()));
        st.forget(5);
        assert!(matches!(st.miss(5), MissVerdict::Keep));
    }
}
