//! Completion buffering: finished result frames parked until the owning
//! future claims them.

use super::pool::PooledFrame;
use crate::OffloadError;
use std::collections::HashMap;

/// Completed-but-unclaimed results of one channel.
///
/// A flag sweep ([`crate::chan::engine::drain`]) moves *every* ready
/// offload from the pending table into this queue, keyed by sequence
/// number; each future then claims its own entry without touching the
/// transport. Transport errors are parked the same way, so a dead
/// target errors every outstanding future instead of hanging them.
/// Result frames are pooled: claiming and dropping one returns its
/// buffer to the channel's [`super::pool::FramePool`].
#[derive(Debug, Default)]
pub struct CompletionQueue {
    done: HashMap<u64, Result<PooledFrame, OffloadError>>,
}

impl CompletionQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park a finished offload's result frame (or transport error).
    pub fn push(&mut self, seq: u64, result: Result<PooledFrame, OffloadError>) {
        self.done.insert(seq, result);
    }

    /// Claim a completion, if it has arrived.
    pub fn take(&mut self, seq: u64) -> Option<Result<PooledFrame, OffloadError>> {
        self.done.remove(&seq)
    }

    /// Number of unclaimed completions.
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// True when no completion is waiting.
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }
}
