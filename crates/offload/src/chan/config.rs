//! Slot-layout constants shared by every slot-array transport.
//!
//! These used to live in `ham-backend-veo`, which forced `ham-backend-dma`
//! to depend on a sibling backend for geometry it shares. Both Aurora
//! protocols (and the reverse-message extension) now read them from here.

/// Tunables of both messaging protocols.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolConfig {
    /// Receive slots per target (VH → VE messages in flight).
    pub recv_slots: usize,
    /// Send slots per target (VE → VH results in flight).
    pub send_slots: usize,
    /// Maximum message payload (header excluded) in bytes.
    pub msg_bytes: usize,
    /// Enable reverse active messages (VHcall over the DMA protocol);
    /// only honoured by `ham-backend-dma`.
    pub reverse: bool,
    /// Small-message batching watermarks (disabled by default, which
    /// keeps the wire traffic byte-identical to the unbatched protocol).
    pub batch: super::batch::BatchConfig,
    /// Scheduler admission limit per target (in-flight messages a
    /// [`crate::sched::TargetPool`] tolerates before placing elsewhere).
    /// `0` (the default) derives it from the slot rings — see
    /// [`super::ChannelCore::credit_limit`].
    pub credits: usize,
    /// Device-side worker lanes (simulated VE cores) the target's
    /// [`crate::device::DeviceRuntime`] schedules across. Defaults to
    /// [`crate::device::DEFAULT_LANES`] (the SX-Aurora core count);
    /// `1` reproduces the pre-lane serial execution timeline.
    pub lanes: usize,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        Self {
            recv_slots: 8,
            send_slots: 8,
            msg_bytes: 4096,
            reverse: false,
            batch: super::batch::BatchConfig::default(),
            credits: 0,
            lanes: crate::device::DEFAULT_LANES,
        }
    }
}

/// Per-slot metadata: one flag word + one timestamp word.
pub const SLOT_META: u64 = 16;

impl ProtocolConfig {
    /// Smallest permitted `msg_bytes`: error frames (and their headers)
    /// must always fit a slot.
    pub const MIN_MSG_BYTES: usize = 256;

    /// Panics unless the configuration is usable (called at spawn).
    pub fn validate(&self) {
        assert!(self.recv_slots >= 1, "at least one recv slot");
        assert!(self.send_slots >= 1, "at least one send slot");
        assert!(
            self.msg_bytes >= Self::MIN_MSG_BYTES,
            "msg_bytes must be >= {} so error frames fit a slot",
            Self::MIN_MSG_BYTES
        );
    }

    /// Byte stride of one communication slot.
    pub fn slot_stride(&self) -> u64 {
        SLOT_META + ham::wire::HEADER_BYTES as u64 + self.msg_bytes as u64
    }

    /// Total bytes of one slot array.
    pub fn array_bytes(&self, slots: usize) -> u64 {
        self.slot_stride() * slots as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_geometry() {
        let cfg = ProtocolConfig::default();
        assert_eq!(cfg.slot_stride(), 16 + 32 + 4096);
        assert_eq!(cfg.array_bytes(8), 8 * cfg.slot_stride());
    }

    #[test]
    #[should_panic(expected = "msg_bytes")]
    fn tiny_messages_rejected() {
        ProtocolConfig {
            msg_bytes: 8,
            ..Default::default()
        }
        .validate();
    }
}
