//! Spin-then-sleep backoff for host-side wait loops.
//!
//! The engine's `Reserve::Full` loop and the runtime's
//! `wait_any`/`wait_all` rounds used to call `std::thread::yield_now()`
//! unconditionally — a bare busy loop that burns a core while a target
//! thread (or a deep pipeline's completions) makes progress. This helper
//! keeps the first rounds cheap (spin hints resolve the common
//! "completion is nanoseconds away" case with minimal latency), then
//! yields, then sleeps with exponentially growing, capped pauses.
//!
//! Only *wall-clock* scheduling changes; virtual time and recovery
//! deadlines are untouched — deadlines are counted in flag sweeps, and
//! the caller sweeps exactly once per `snooze`.

use std::time::Duration;

/// Spin rounds before the first yield.
const SPIN_ROUNDS: u32 = 6;
/// Yield rounds before the first sleep.
const YIELD_ROUNDS: u32 = 10;
/// Longest single pause; keeps worst-case added latency small.
const MAX_SLEEP_US: u64 = 50;

/// One wait-loop's backoff state. Create per wait, call
/// [`Backoff::snooze`] once per fruitless round.
#[derive(Debug, Default)]
pub struct Backoff {
    round: u32,
}

impl Backoff {
    /// Fresh state (starts in the spin phase).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pause appropriately for how long this wait has been fruitless:
    /// spin hints → `yield_now` → exponentially longer sleeps capped at
    /// 50 µs.
    pub fn snooze(&mut self) {
        if self.round < SPIN_ROUNDS {
            for _ in 0..(1u32 << self.round) {
                core::hint::spin_loop();
            }
        } else if self.round < YIELD_ROUNDS {
            std::thread::yield_now();
        } else {
            let exp = (self.round - YIELD_ROUNDS).min(6);
            let us = (1u64 << exp).min(MAX_SLEEP_US);
            std::thread::sleep(Duration::from_micros(us));
        }
        self.round = self.round.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snooze_escalates_without_panicking() {
        let mut b = Backoff::new();
        // Enough rounds to walk through every phase, including the
        // saturated tail.
        for _ in 0..64 {
            b.snooze();
        }
        assert!(b.round >= 64);
    }
}
