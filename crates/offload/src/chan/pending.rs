//! In-flight offload bookkeeping: sequence number → slots, post time,
//! telemetry id.

use aurora_sim_core::SimTime;
use std::collections::HashMap;

/// Everything the channel remembers about one in-flight offload.
#[derive(Clone, Copy, Debug)]
pub struct PendingEntry {
    /// Receive slot (VH → VE message) the offload occupies.
    pub recv_slot: usize,
    /// Send slot (VE → VH result) reserved for its reply.
    pub send_slot: usize,
    /// Telemetry correlation id ([`aurora_sim_core::trace::OffloadId`])
    /// — completions harvested on another future's poll are still
    /// attributed to *their* span tree.
    pub offload: u64,
    /// Virtual post time, for the completion-latency metric.
    pub posted_at: SimTime,
    /// Wire bytes the offload occupies (header + payload; the whole
    /// frame for a batch carrier) — feeds the channel's bytes-in-flight
    /// gauge the scheduler's weighted policy reads.
    pub bytes: u64,
}

/// The in-flight table of one channel (seq → [`PendingEntry`]).
#[derive(Debug, Default)]
pub struct PendingTable {
    entries: HashMap<u64, PendingEntry>,
    /// Running total of the entries' `bytes`, maintained on
    /// insert/remove so reading it is O(1) and allocation-free.
    bytes: u64,
}

impl PendingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an in-flight offload.
    pub fn insert(&mut self, seq: u64, entry: PendingEntry) {
        self.bytes += entry.bytes;
        if let Some(old) = self.entries.insert(seq, entry) {
            self.bytes -= old.bytes;
        }
    }

    /// Remove and return an in-flight offload (idempotent: the second
    /// caller racing on the same completion gets `None`).
    pub fn remove(&mut self, seq: u64) -> Option<PendingEntry> {
        let removed = self.entries.remove(&seq);
        if let Some(e) = &removed {
            self.bytes -= e.bytes;
        }
        removed
    }

    /// Total wire bytes of every in-flight entry.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// All in-flight offloads, ordered by sequence number so flag
    /// sweeps visit slots deterministically.
    pub fn snapshot(&self) -> Vec<(u64, PendingEntry)> {
        let mut v = Vec::new();
        self.snapshot_into(&mut v);
        v
    }

    /// [`Self::snapshot`] into a caller-provided scratch vector (cleared
    /// first, capacity reused) — the engine's flag sweep runs every
    /// blocking-wait round and must not allocate per round.
    pub fn snapshot_into(&self, out: &mut Vec<(u64, PendingEntry)>) {
        out.clear();
        out.extend(self.entries.iter().map(|(s, e)| (*s, *e)));
        out.sort_unstable_by_key(|(s, _)| *s);
    }

    /// Number of in-flight offloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
