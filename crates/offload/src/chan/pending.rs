//! In-flight offload bookkeeping: sequence number → slots, post time,
//! telemetry id.

use aurora_sim_core::SimTime;
use std::collections::HashMap;

/// Everything the channel remembers about one in-flight offload.
#[derive(Clone, Copy, Debug)]
pub struct PendingEntry {
    /// Receive slot (VH → VE message) the offload occupies.
    pub recv_slot: usize,
    /// Send slot (VE → VH result) reserved for its reply.
    pub send_slot: usize,
    /// Telemetry correlation id ([`aurora_sim_core::trace::OffloadId`])
    /// — completions harvested on another future's poll are still
    /// attributed to *their* span tree.
    pub offload: u64,
    /// Virtual post time, for the completion-latency metric.
    pub posted_at: SimTime,
}

/// The in-flight table of one channel (seq → [`PendingEntry`]).
#[derive(Debug, Default)]
pub struct PendingTable {
    entries: HashMap<u64, PendingEntry>,
}

impl PendingTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an in-flight offload.
    pub fn insert(&mut self, seq: u64, entry: PendingEntry) {
        self.entries.insert(seq, entry);
    }

    /// Remove and return an in-flight offload (idempotent: the second
    /// caller racing on the same completion gets `None`).
    pub fn remove(&mut self, seq: u64) -> Option<PendingEntry> {
        self.entries.remove(&seq)
    }

    /// All in-flight offloads, ordered by sequence number so flag
    /// sweeps visit slots deterministically.
    pub fn snapshot(&self) -> Vec<(u64, PendingEntry)> {
        let mut v = Vec::new();
        self.snapshot_into(&mut v);
        v
    }

    /// [`Self::snapshot`] into a caller-provided scratch vector (cleared
    /// first, capacity reused) — the engine's flag sweep runs every
    /// blocking-wait round and must not allocate per round.
    pub fn snapshot_into(&self, out: &mut Vec<(u64, PendingEntry)>) {
        out.clear();
        out.extend(self.entries.iter().map(|(s, e)| (*s, *e)));
        out.sort_unstable_by_key(|(s, _)| *s);
    }

    /// Number of in-flight offloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}
